"""Table I — which detector catches which attack class during SCUE's
counter-summing recovery.

Paper: roll-forward -> leaf HMACs; roll-back/replay -> Recovery_root;
combined roll-forward + roll-back -> leaf HMACs.  A clean crash must
recover with no (false) attack report.
"""

from repro.bench.figures import table1_attack_detection
from repro.bench.reporting import format_simple_table


def test_table1_attack_detection(benchmark):
    result = benchmark.pedantic(
        lambda: table1_attack_detection(data_capacity=8 * 1024 * 1024,
                                        operations=400),
        rounds=1, iterations=1)
    rows = [[attack, outcome["detected"], outcome["by"]]
            for attack, outcome in result.outcomes.items()]
    print()
    print(format_simple_table("Table I: attack detection",
                              ["attack", "detected", "detected by"], rows))
    assert result.all_detected()
    assert result.control_clean()
    assert result.outcomes["roll_forward"]["by"] == "leaf_hmac"
    assert result.outcomes["replay_roll_back"]["by"] == "root"
    assert result.outcomes["forward_plus_back"]["by"] == "leaf_hmac"
