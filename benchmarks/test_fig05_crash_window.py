"""Fig 5 / §III-B — the root crash inconsistency problem, demonstrated:
crash immediately after a persist (inside the crash window) and attempt
recovery under every scheme.

Paper claim: lazy and eager misreport attacks after an ordinary crash;
SCUE (and the crash-consistent baselines) recover every time.
"""

from repro.bench.figures import fig5_crash_window
from repro.bench.reporting import format_simple_table


def test_fig5_crash_window(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_crash_window(trials=8, operations=400),
        rounds=1, iterations=1)
    rows = [[scheme, f"{rate:.0%}"]
            for scheme, rate in result.success_rate.items()]
    print()
    print(format_simple_table(
        f"Fig 5: recovery success after mid-burst crashes "
        f"({result.trials} trials)",
        ["scheme", "recovery success"], rows))
    assert result.success_rate["scue"] == 1.0
    assert result.success_rate["plp"] == 1.0
    assert result.success_rate["bmf-ideal"] == 1.0
    assert result.success_rate["lazy"] == 0.0
    assert result.success_rate["eager"] == 0.0
