"""Fig 13 — recovery time when using STAR / AGIT fast-recovery tracking
with SCUE, as the metadata cache (hence the worst-case stale set) grows.

Paper: ~0.05 s (SCUE-STAR) and ~0.17 s (SCUE-AGIT) at a 4 MB metadata
cache, linear in cache size, 100 ns per metadata fetch.
"""

import os

from repro.bench.figures import fig13_recovery_time
from repro.bench.reporting import format_simple_table

FULL_SIZES = (256 * 1024, 512 * 1024, 1024 * 1024, 2 * 1024 * 1024,
              4 * 1024 * 1024)
QUICK_SIZES = (128 * 1024, 256 * 1024, 512 * 1024)


def test_fig13_recovery_time(benchmark):
    sizes = QUICK_SIZES if os.environ.get("REPRO_BENCH_SCALE") == "quick" \
        else FULL_SIZES
    fig = benchmark.pedantic(lambda: fig13_recovery_time(sizes),
                             rounds=1, iterations=1)
    rows = []
    for size in sizes:
        rows.append([
            f"{size >> 10}KB",
            fig.stale_nodes["star"][size],
            f"{fig.table['star'][size] * 1000:.2f}ms",
            f"{fig.table['agit'][size] * 1000:.2f}ms",
        ])
    print()
    print(format_simple_table(
        "Fig 13: SCUE recovery time (100ns per metadata fetch)",
        ["cache", "stale nodes", "SCUE-STAR", "SCUE-AGIT"], rows))
    print(f"paper at 4MB: STAR {fig.paper_4mb['star']}s, "
          f"AGIT {fig.paper_4mb['agit']}s")
    print(f"functional targeted rebuild (write-through config): "
          f"star={fig.functional_reads.get('star', '-')} reads, "
          f"agit={fig.functional_reads.get('agit', '-')} reads")
    # The mechanism actually recovers, touching far less than a full
    # leaf scan would (16MB data -> 4096 counter blocks).
    for tracker in ("star", "agit"):
        assert 0 < fig.functional_reads[tracker] < 4096
    # Shape: AGIT > STAR everywhere; both grow ~linearly with cache size.
    for size in sizes:
        assert fig.table["agit"][size] > fig.table["star"][size]
    first, last = sizes[0], sizes[-1]
    growth = fig.table["star"][last] / fig.table["star"][first]
    size_ratio = last / first
    assert growth > size_ratio * 0.4, "recovery time tracks cache size"
    if last == 4 * 1024 * 1024:
        # Within 2x of the paper's absolute numbers.
        assert 0.02 < fig.table["star"][last] < 0.10
        assert 0.08 < fig.table["agit"][last] < 0.34
