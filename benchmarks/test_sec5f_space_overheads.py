"""§V-F — on-chip space and hardware overheads at the paper's 16 GB
geometry.

Paper: SCUE two 64 B registers (128 B); PLP PTT 616 B + ETT 48 b;
BMF-ideal a capacity-proportional nvMC (quoted at 256 MB for 16 GB —
see EXPERIMENTS.md for the per-8-blocks vs per-block discrepancy).
"""

from repro.bench.overheads import PAPER_NVM_BYTES, sec5f_space_overheads
from repro.bench.reporting import format_simple_table, human_bytes


def test_sec5f_space_overheads(benchmark):
    rows = benchmark.pedantic(
        lambda: sec5f_space_overheads(PAPER_NVM_BYTES),
        rounds=1, iterations=1)
    table = [[r.scheme, human_bytes(r.measured_bytes),
              human_bytes(r.paper_bytes)] for r in rows]
    print()
    print(format_simple_table(
        "Sec V-F: on-chip non-volatile overheads (16GB NVM)",
        ["scheme", "measured", "paper"], table))
    by_scheme = {r.scheme: r.measured_bytes for r in rows}
    assert by_scheme["scue"] == 128
    assert by_scheme["plp"] == 64 + 616 + 6
    assert by_scheme["baseline"] == 0
    assert by_scheme["lazy"] == by_scheme["eager"] == 64
    # BMF's nvMC is 5-6 orders of magnitude bigger than SCUE's registers.
    assert by_scheme["bmf-ideal"] > 10**5 * by_scheme["scue"]
