"""Ablations on the design points DESIGN.md calls out.

1. **Metadata cache size** — the lazy scheme's costs come from flush-time
   ancestor reads, which scale with cache pressure; SCUE's shortcut is
   insensitive by construction.  Sweeping the cache shows the gap opening
   as pressure rises.

2. **Metadata WPQ depth** — PLP pushes a whole branch through the
   metadata partition per persist.  The sweep shows a finding worth
   keeping: at sustained persist rates the queue is *drain-limited*, so
   deepening it barely moves PLP's latency — the branch traffic itself is
   the problem, which is why SCUE attacks the traffic, not the queue.
"""

from repro.bench.harness import geomean
from repro.bench.reporting import format_simple_table
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import make_workload

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 600


def run_one(scheme: str, **overrides):
    config = SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                          tree_levels=9, **overrides)
    system = System(config)
    system.run(make_workload("hash", CAPACITY, OPERATIONS, seed=17).trace())
    return system.result("hash")


def test_ablation_metadata_cache_size(benchmark):
    sizes = (4 * 1024, 16 * 1024, 64 * 1024)

    def sweep():
        return {
            size: {scheme: run_one(scheme, metadata_cache_size=size)
                   for scheme in ("lazy", "scue")}
            for size in sizes
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    gaps = {}
    for size, results in table.items():
        gap = results["lazy"].cycles / results["scue"].cycles
        gaps[size] = gap
        rows.append([f"{size >> 10}KB",
                     f"{results['lazy'].cycles:,}",
                     f"{results['scue'].cycles:,}",
                     f"{gap:.3f}x"])
    print()
    print(format_simple_table(
        "Ablation: metadata cache size (hash workload)",
        ["cache", "lazy cycles", "scue cycles", "lazy/scue"], rows))
    # Lazy never beats SCUE, and pressure widens (or holds) the gap.
    assert all(gap >= 0.99 for gap in gaps.values())
    assert gaps[min(gaps)] >= gaps[max(gaps)] - 0.05


def test_ablation_wpq_depth(benchmark):
    depths = (4, 10, 32)

    def sweep():
        return {
            depth: {scheme: run_one(scheme, wpq_metadata_entries=depth)
                    for scheme in ("plp", "scue")}
            for depth in depths
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for depth, results in table.items():
        rows.append([depth,
                     f"{results['plp'].avg_write_latency:.0f}cy",
                     f"{results['scue'].avg_write_latency:.0f}cy"])
    print()
    print(format_simple_table(
        "Ablation: metadata WPQ depth (hash workload)",
        ["entries", "plp write latency", "scue write latency"], rows))
    plp = {d: r["plp"].avg_write_latency for d, r in table.items()}
    scue = {d: r["scue"].avg_write_latency for d, r in table.items()}
    # Steady-state persists are drain-limited: depth barely moves either
    # scheme (no >15% swing across an 8x depth range)...
    assert abs(plp[4] - plp[32]) / plp[10] < 0.15
    assert abs(scue[4] - scue[32]) / scue[10] < 0.15
    # ...so PLP's branch traffic keeps it expensive at every depth.
    assert geomean(plp.values()) > 1.5 * geomean(scue.values())
