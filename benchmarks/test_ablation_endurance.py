"""Ablation: metadata write endurance (paper §II-D3 motivation).

PCM cells endure 10^7-10^12 writes.  PLP persists the *whole branch* on
every data persist, so the tree's upper nodes — shared by every write in
their subtree — become extreme hotspots; SCUE writes intermediate nodes
only on cache eviction.  This ablation measures per-line write
distributions in the metadata region and projects hottest-line lifetime
consumption, then shows Start-Gap wear levelling smearing a synthetic
hotspot as a mitigation.
"""

from repro.bench.reporting import format_simple_table
from repro.mem.wear import StartGap
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import make_workload

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 600


def run_scheme(scheme: str):
    config = SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                          tree_levels=9, metadata_cache_size=16 * 1024,
                          track_wear=True)
    system = System(config)
    system.run(make_workload("array", CAPACITY, OPERATIONS,
                             seed=29).trace())
    amap = system.controller.amap
    wear = system.controller.nvm.wear
    return wear.report(lo=amap.counter_base, region=f"{scheme}/metadata")


def test_ablation_metadata_endurance(benchmark):
    reports = benchmark.pedantic(
        lambda: {scheme: run_scheme(scheme)
                 for scheme in ("baseline", "lazy", "plp", "scue")},
        rounds=1, iterations=1)
    rows = []
    for scheme, report in reports.items():
        rows.append([
            scheme,
            report.total_writes,
            report.max_writes,
            f"{report.imbalance:.1f}x",
            f"{report.lifetime_fraction(1e8) * 100:.5f}%",
        ])
    print()
    print(format_simple_table(
        "Ablation: metadata-region wear (array, 600 persists)",
        ["scheme", "meta writes", "hottest line", "imbalance",
         "lifetime used (1e8)"], rows))
    # PLP's branch persists hammer shared upper nodes far harder than
    # SCUE's eviction-driven metadata writes.
    assert reports["plp"].max_writes > 5 * reports["scue"].max_writes
    assert reports["plp"].total_writes > reports["lazy"].total_writes

    # Start-Gap mitigation: a synthetic hotspot with PLP's per-line write
    # count spreads across physical slots.
    hotspot_writes = reports["plp"].max_writes
    sg = StartGap(lines=64, gap_interval=8)
    touched = sg.physical_spread(logical=0, writes=max(hotspot_writes,
                                                       64 * 8 * 64))
    print(f"\nStart-Gap: a {hotspot_writes}-write hotspot spreads over "
          f"{len(touched)} physical slots "
          f"(+{sg.extra_writes} levelling copies)")
    assert len(touched) >= 32
