"""Fig 9 — write latencies on different workloads, normalised to the
insecure Baseline.

Paper averages: PLP 2.74x, Lazy 1.29x, BMF-ideal 1.21x, SCUE 1.12x.
Reproduction target: the ordering (PLP >> Lazy > SCUE ~ BMF-ideal > 1)
and rough factors; see EXPERIMENTS.md for the committed comparison.
"""

from repro.bench.figures import ComparisonFigure, PAPER_FIG9
from repro.bench.harness import EVAL_SCHEMES
from repro.bench.reporting import format_ratio_table

from benchmarks.conftest import shared_matrix


def test_fig9_write_latency(benchmark):
    matrix = benchmark.pedantic(shared_matrix, rounds=1, iterations=1)
    fig = ComparisonFigure(
        "write_latency",
        matrix.ratio_table("write_latency", EVAL_SCHEMES),
        PAPER_FIG9, matrix)
    print()
    print(format_ratio_table("Fig 9: write latency", fig.table,
                             fig.paper_average))
    avg = fig.measured_average
    # Shape assertions (the paper's qualitative claims).
    assert avg["plp"] > 2.0, "PLP must pay for whole-branch persistence"
    assert avg["plp"] > avg["lazy"] > 1.0
    assert avg["scue"] <= avg["lazy"], "SCUE beats lazy on writes"
    assert 1.0 < avg["scue"] < 1.3, "SCUE stays near baseline (paper: 1.12)"
