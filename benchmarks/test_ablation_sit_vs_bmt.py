"""Ablation: SIT vs BMT hashing structure (paper §II-D4).

The paper's case for SIT over BMT: once counters are bumped, SIT's branch
HMACs are independent and compute in one parallel burst, while a BMT must
chain digests level by level.  This sweep runs eager-SIT and eager-BMT
(same substrate, same 9-level geometry, same root-consistency courtesy)
across the Table II hash latencies; BMT's write cost grows ~height-fold
faster.
"""

from repro.bench.reporting import format_simple_table
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import make_workload

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 400
HASH_SWEEP = (20, 40, 80, 160)


def run_tree(scheme: str, hash_latency: int) -> float:
    config = SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                          tree_levels=9, hash_latency=hash_latency,
                          metadata_cache_size=64 * 1024)
    system = System(config)
    system.run(make_workload("array", CAPACITY, OPERATIONS,
                             seed=23).trace())
    return system.result("array").avg_write_latency


def test_ablation_sit_vs_bmt(benchmark):
    table = benchmark.pedantic(
        lambda: {lat: {s: run_tree(s, lat) for s in ("eager", "bmt-eager")}
                 for lat in HASH_SWEEP},
        rounds=1, iterations=1)
    rows = [[lat,
             f"{table[lat]['eager']:.0f}cy",
             f"{table[lat]['bmt-eager']:.0f}cy",
             f"{table[lat]['bmt-eager'] / table[lat]['eager']:.2f}x"]
            for lat in HASH_SWEEP]
    print()
    print(format_simple_table(
        "Ablation: eager SIT (parallel burst) vs eager BMT (chain), "
        "9 levels",
        ["hash cycles", "SIT write lat", "BMT write lat", "BMT/SIT"],
        rows))
    # BMT is never cheaper, and the gap widens with hash latency.
    gaps = [table[lat]["bmt-eager"] / table[lat]["eager"]
            for lat in HASH_SWEEP]
    assert all(g >= 1.0 for g in gaps)
    assert gaps[-1] > gaps[0], "the chain penalty grows with hash cost"
    # At 160 cycles the 9-level chain dominates visibly.
    assert gaps[-1] > 1.5
