"""Ablation: integrity-tree fan-out (VAULT/MorphCtr-style wide nodes,
§VII).

The paper argues SIT (8-ary, 56-bit counters) wins on storage and height,
and cites VAULT/MorphCtr as ways to widen nodes further.  With SCUE's
write path touching only the leaf and a register, the arity shouldn't
change write latency — but it shortens the tree, shrinking metadata
storage and full-reconstruction read counts, at the cost of counters that
wrap sooner (28/14-bit).  This ablation measures all three.
"""

from repro.bench.reporting import format_simple_table
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import make_workload

CAPACITY = 32 * 1024 * 1024
OPERATIONS = 600


def run_arity(arity: int):
    config = SystemConfig(scheme="scue", data_capacity=CAPACITY,
                          tree_arity=arity,
                          metadata_cache_size=32 * 1024)
    system = System(config)
    system.run(make_workload("array", CAPACITY, OPERATIONS,
                             seed=21).trace())
    result = system.result("array")
    system.crash()
    report = system.recover()
    amap = system.controller.amap
    return {
        "levels": amap.tree_levels,
        "tree_nodes": amap.num_tree_nodes,
        "counter_bits": amap.counter_bits,
        "write_latency": result.avg_write_latency,
        "recovery_reads": report.metadata_reads,
        "recovered": report.success,
    }


def test_ablation_tree_arity(benchmark):
    outcomes = benchmark.pedantic(
        lambda: {arity: run_arity(arity) for arity in (8, 16, 32)},
        rounds=1, iterations=1)
    rows = [[arity, o["levels"], o["tree_nodes"],
             f"{o['counter_bits']}b",
             f"{o['write_latency']:.0f}cy",
             o["recovery_reads"],
             "yes" if o["recovered"] else "NO"]
            for arity, o in outcomes.items()]
    print()
    print(format_simple_table(
        "Ablation: tree arity under SCUE (32MB NVM, array)",
        ["arity", "levels", "tree nodes", "ctr width", "write latency",
         "recovery reads", "recovers"], rows))
    # Wider nodes => shorter trees and less metadata storage.
    assert outcomes[32]["levels"] < outcomes[8]["levels"]
    assert outcomes[32]["tree_nodes"] < outcomes[8]["tree_nodes"]
    # SCUE's write path is height-independent: latency within 5%.
    base = outcomes[8]["write_latency"]
    for arity in (16, 32):
        assert abs(outcomes[arity]["write_latency"] - base) / base < 0.05
    # Recovery works at every arity.
    assert all(o["recovered"] for o in outcomes.values())
