"""Ablation: multi-programmed contention (Table II's 8 cores, one secure
memory controller).

Co-running programs share the metadata cache and the write pending queue.
A scheme with heavy metadata traffic (PLP) clogs the shared WPQ and
evicts everyone else's metadata, keeping its co-run makespan several
times SCUE's at every degree of sharing (the *relative* gap narrows
slightly as the shared drain bandwidth saturates for both schemes — the
absolute gap keeps growing).
"""

from repro.bench.reporting import format_simple_table
from repro.sim.config import SystemConfig
from repro.sim.multicore import MultiProgramSystem, partitioned_workloads

CAPACITY = 32 * 1024 * 1024
OPERATIONS = 200


def corun(scheme: str, programs: list[str]) -> int:
    config = SystemConfig(scheme=scheme, data_capacity=CAPACITY,
                          tree_levels=9, metadata_cache_size=16 * 1024)
    system = MultiProgramSystem(config, cores=max(len(programs), 1))
    system.run(partitioned_workloads(config, programs, OPERATIONS,
                                     seed=37))
    return system.makespan


def test_ablation_multiprogram_contention(benchmark):
    mixes = {
        1: ["array"],
        2: ["array", "hash"],
        4: ["array", "hash", "queue", "rbtree"],
        8: ["array", "hash", "queue", "rbtree",
            "array", "hash", "queue", "rbtree"],
    }

    def sweep():
        return {
            cores: {scheme: corun(scheme, programs)
                    for scheme in ("scue", "plp")}
            for cores, programs in mixes.items()
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for cores, r in table.items():
        rows.append([cores, f"{r['scue']:,}", f"{r['plp']:,}",
                     f"{r['plp'] / r['scue']:.2f}x"])
    print()
    print(format_simple_table(
        "Ablation: co-run makespan, shared controller "
        f"({OPERATIONS} ops/program)",
        ["programs", "scue makespan", "plp makespan", "plp/scue"], rows))
    # PLP stays several times slower at every degree of sharing, and the
    # absolute cycles it costs the machine keep growing with co-runners.
    gaps = {cores: r["plp"] / r["scue"] for cores, r in table.items()}
    assert all(g > 2.0 for g in gaps.values())
    absolute = {cores: r["plp"] - r["scue"] for cores, r in table.items()}
    assert absolute[8] > absolute[1]
