"""§V-E — security-metadata memory accesses, normalised to the Lazy
scheme.

Paper: PLP ~7.04x Lazy (whole-branch reads + shadow persists on a 9-level
SIT); BMF-ideal ~8.7% below Lazy (no ancestor traffic at all); SCUE about
equal to Lazy (the same reads happen, just off the critical path).
"""

from repro.bench.figures import sec5e_memory_accesses
from repro.bench.reporting import format_ratio_table

from benchmarks.conftest import shared_matrix


def test_sec5e_memory_accesses(benchmark):
    matrix = shared_matrix()
    result = benchmark.pedantic(
        lambda: sec5e_memory_accesses(matrix=matrix), rounds=1, iterations=1)
    print()
    print(format_ratio_table("Sec V-E: metadata NVM accesses",
                             result.table, result.paper_average,
                             baseline_note="normalized to Lazy"))
    avg = result.measured_average
    assert avg["plp"] > 3.0, "PLP metadata traffic several x Lazy"
    assert avg["bmf-ideal"] < 1.0, "BMF-ideal strictly below Lazy"
    assert 0.6 < avg["scue"] < 1.4, "SCUE ~ Lazy (paper: equal)"
