"""Benchmark configuration.

``REPRO_BENCH_SCALE`` selects the experiment scale:

* ``quick``   — minutes-scale smoke numbers,
* ``default`` — the scale the committed EXPERIMENTS.md numbers use
  (the default),
* ``paper``   — largest trace-scale runs (slow).

``REPRO_BENCH_JOBS`` (default 1) shards the matrix across that many
worker processes, and ``REPRO_BENCH_CAMPAIGN_DIR`` points the campaign
engine at a result cache + manifest so an interrupted suite resumes
instead of recomputing (docs/benchmarks.md).

The Fig 9/10/§V-E experiments share one workload x scheme matrix; it is
computed once per session and cached here so the suite doesn't re-run a
multi-minute sweep three times.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import BenchScale
from repro.bench.harness import run_matrix

_SCALES = {
    "quick": BenchScale.quick,
    "default": BenchScale.default,
    "paper": BenchScale.paper,
}


def bench_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    try:
        return _SCALES[name]()
    except KeyError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE={name!r}: choose from {sorted(_SCALES)}")


_MATRIX_CACHE: dict[str, object] = {}


def _campaign_opts() -> dict:
    opts: dict = {"jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1"))}
    campaign_dir = os.environ.get("REPRO_BENCH_CAMPAIGN_DIR")
    if campaign_dir:
        base = Path(campaign_dir)
        opts["cache"] = base / "cache"
        opts["manifest_path"] = base / "manifest.json"
    return opts


def shared_matrix():
    """The Fig 9/10/§V-E matrix, computed once per session."""
    key = os.environ.get("REPRO_BENCH_SCALE", "default")
    if key not in _MATRIX_CACHE:
        _MATRIX_CACHE[key] = run_matrix(bench_scale(), **_campaign_opts())
    return _MATRIX_CACHE[key]


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return bench_scale()
