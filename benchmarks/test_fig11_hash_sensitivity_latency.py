"""Fig 11 — SCUE write latency at 20/40/80/160-cycle hash latencies,
normalised to the 20-cycle configuration.

Paper: raising the latency 20 -> 160 cycles costs on average 1.20x
(up to 1.36x) write latency — small, because SCUE's write path contains
exactly one hash.
"""

import os

from repro.bench.figures import fig11_hash_sweep_write_latency, HASH_SWEEP
from repro.bench.reporting import format_simple_table

from benchmarks.conftest import bench_scale

#: The sweep is 4x the matrix cost; trim workloads below the full set.
SWEEP_WORKLOADS = ("array", "hash", "queue", "rbtree", "mcf", "lbm",
                   "gcc", "bwaves")


def test_fig11_hash_sweep_write_latency(benchmark):
    scale = bench_scale()
    fig = benchmark.pedantic(
        lambda: fig11_hash_sweep_write_latency(scale, SWEEP_WORKLOADS),
        rounds=1, iterations=1)
    rows = [[lat] + [f"{fig.table[lat][w]:.3f}" for w in SWEEP_WORKLOADS]
            + [f"{fig.average(lat):.3f}"]
            for lat in HASH_SWEEP]
    print()
    print(format_simple_table(
        "Fig 11: SCUE write latency vs hash latency (vs 20-cycle)",
        ["cycles", *SWEEP_WORKLOADS, "geomean"], rows))
    print(f"paper average at 160 cycles: {fig.paper_average_160:.2f}x")
    # Monotone growth, modest slope.
    averages = [fig.average(lat) for lat in HASH_SWEEP]
    assert averages[0] == 1.0
    assert all(b >= a - 1e-6 for a, b in zip(averages, averages[1:]))
    assert 1.0 < averages[-1] < 1.6, \
        "one hash on the path => mild sensitivity (paper: 1.20x)"
