"""Fig 12 — SCUE execution time at 20/40/80/160-cycle hash latencies,
normalised to the 20-cycle configuration.

Paper: 1.14x at 160 cycles — execution time is even less sensitive than
write latency because reads and compute dilute the single write-path hash.
"""

from repro.bench.figures import fig12_hash_sweep_execution_time, HASH_SWEEP
from repro.bench.reporting import format_simple_table

from benchmarks.conftest import bench_scale
from benchmarks.test_fig11_hash_sensitivity_latency import SWEEP_WORKLOADS


def test_fig12_hash_sweep_execution_time(benchmark):
    scale = bench_scale()
    fig = benchmark.pedantic(
        lambda: fig12_hash_sweep_execution_time(scale, SWEEP_WORKLOADS),
        rounds=1, iterations=1)
    rows = [[lat] + [f"{fig.table[lat][w]:.3f}" for w in SWEEP_WORKLOADS]
            + [f"{fig.average(lat):.3f}"]
            for lat in HASH_SWEEP]
    print()
    print(format_simple_table(
        "Fig 12: SCUE execution time vs hash latency (vs 20-cycle)",
        ["cycles", *SWEEP_WORKLOADS, "geomean"], rows))
    print(f"paper average at 160 cycles: {fig.paper_average_160:.2f}x")
    averages = [fig.average(lat) for lat in HASH_SWEEP]
    assert averages[0] == 1.0
    assert all(b >= a - 1e-6 for a, b in zip(averages, averages[1:]))
    assert averages[-1] < 1.35, \
        "execution time barely moves (paper: 1.14x at 160 cycles)"
