"""Ablation: fast-recovery tracker trade-offs (§V-D's argument, priced).

Anubis's original ASIT journals metadata *contents* into the shadow table
(cheapest recovery — one read per stale node — but an ST write on every
metadata update).  SCUE's counter-summing lets AGIT journal addresses only
(one ST write per first-dirty), and STAR piggy-backs staleness bits in
MAC fields (zero runtime writes), both recovering via child reads.  One
workload, three trackers, both sides of the bill.
"""

from repro.bench.reporting import format_simple_table
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import make_workload

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 600


def run_tracker(tracker: str):
    config = SystemConfig(scheme="scue", data_capacity=CAPACITY,
                          tree_levels=9, metadata_cache_size=32 * 1024,
                          recovery_tracker=tracker)
    system = System(config)
    system.run(make_workload("array", CAPACITY, OPERATIONS,
                             seed=41).trace())
    runtime_writes = system.controller.tracker.runtime_write_overhead
    stale = system.controller.tracker.stale_nodes
    model_reads = system.controller.tracker.recovery_reads()
    system.crash()
    report = system.recover()
    return {
        "runtime_st_writes": runtime_writes,
        "stale": stale,
        "model_reads": model_reads,
        "functional_reads": report.metadata_reads,
        "recovered": report.success,
    }


def test_ablation_tracker_tradeoff(benchmark):
    outcomes = benchmark.pedantic(
        lambda: {t: run_tracker(t) for t in ("star", "agit", "asit")},
        rounds=1, iterations=1)
    rows = [[t, o["runtime_st_writes"], o["stale"], o["model_reads"],
             o["functional_reads"], "yes" if o["recovered"] else "NO"]
            for t, o in outcomes.items()]
    print()
    print(format_simple_table(
        "Ablation: recovery trackers (array, 600 persists)",
        ["tracker", "runtime ST writes", "stale nodes",
         "model recovery reads", "functional reads", "recovers"], rows))
    star, agit, asit = (outcomes[t] for t in ("star", "agit", "asit"))
    # Runtime cost ordering: STAR free, AGIT per-transition, ASIT
    # per-update (the "2x" Anubis overhead the paper cites).
    assert star["runtime_st_writes"] == 0
    assert 0 < agit["runtime_st_writes"] < asit["runtime_st_writes"]
    # Recovery cost ordering (model): ASIT cheapest, AGIT dearest.
    assert asit["model_reads"] < star["model_reads"] \
        < agit["model_reads"]
    # Every tracker drives a genuine, successful targeted recovery.
    assert all(o["recovered"] for o in outcomes.values())
