"""Fig 10 — execution time on different workloads, normalised to the
insecure Baseline.

Paper averages: PLP 1.96x, Lazy 1.17x, BMF-ideal 1.11x, SCUE 1.07x.
"""

from repro.bench.figures import fig10_execution_time
from repro.bench.reporting import format_ratio_table

from benchmarks.conftest import shared_matrix


def test_fig10_execution_time(benchmark):
    matrix = shared_matrix()
    fig = benchmark.pedantic(
        lambda: fig10_execution_time(matrix=matrix), rounds=1, iterations=1)
    print()
    print(format_ratio_table("Fig 10: execution time", fig.table,
                             fig.paper_average))
    avg = fig.measured_average
    assert avg["plp"] > avg["lazy"], "PLP slowest (paper: 1.96x)"
    assert avg["lazy"] >= avg["scue"] * 0.98, "SCUE at worst matches lazy"
    assert avg["scue"] < 1.45, "SCUE near baseline (paper: 1.07x)"
    assert abs(avg["bmf-ideal"] - avg["scue"]) < 0.25, \
        "BMF-ideal and SCUE are the two near-baseline schemes"
