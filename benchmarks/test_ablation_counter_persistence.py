"""Ablation: counter-block persistence policy under SCUE (§VII).

The main configuration persists the counter block with every data persist
(SuperMem-style write-through) — the simplest way to honour SCUE's
"consistent leaf nodes" premise.  The paper claims Osiris-style relaxed
persistence composes with SCUE instead; this ablation measures the trade:
metadata write traffic and write latency vs the write-back limit, with
recovery success checked at every point.
"""

from repro.bench.reporting import format_simple_table
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.persistent import ArrayWorkload

CAPACITY = 16 * 1024 * 1024
OPERATIONS = 800


def run_policy(osiris_limit: int | None):
    """osiris_limit=None means write-through; N>0 is the Osiris
    discipline (forced write-back every N bumps)."""
    config = SystemConfig(
        scheme="scue", data_capacity=CAPACITY, tree_levels=9,
        metadata_cache_size=64 * 1024,
        leaf_write_through=osiris_limit is None,
        osiris_limit=osiris_limit or 0)
    system = System(config)
    # A hot working set (~80 counter blocks) so leaves accumulate enough
    # bumps that the write-back limit actually differentiates.
    workload = ArrayWorkload(CAPACITY, OPERATIONS, seed=13,
                             working_set_fraction=0.02)
    system.run(workload.trace())
    result = system.result("array-hot")
    system.crash()
    report = system.recover()
    return result, report


def test_ablation_counter_persistence(benchmark):
    def sweep():
        return {
            "write-through": run_policy(None),
            "osiris-4": run_policy(4),
            "osiris-8": run_policy(8),
            "osiris-16": run_policy(16),
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for policy, (result, report) in outcomes.items():
        rows.append([
            policy,
            result.nvm_meta_writes,
            f"{result.avg_write_latency:.0f}cy",
            "recovers" if report.success else "FAILS",
        ])
    print()
    print(format_simple_table(
        "Ablation: SCUE counter persistence (array, 800 ops)",
        ["policy", "meta writes", "avg write latency", "after crash"],
        rows))
    through = outcomes["write-through"][0].nvm_meta_writes
    relaxed = outcomes["osiris-8"][0].nvm_meta_writes
    # The point of relaxing: materially less metadata write traffic...
    assert relaxed < through * 0.7
    # ...without giving up recovery (the paper's §VII orthogonality).
    for policy, (_, report) in outcomes.items():
        assert report.success, policy
    # And tighter limits persist strictly more than looser ones.
    assert outcomes["osiris-4"][0].nvm_meta_writes \
        > outcomes["osiris-16"][0].nvm_meta_writes
