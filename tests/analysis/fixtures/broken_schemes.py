# reprolint-fixture-path: secure/broken_schemes.py
"""Seeded-bug schemes caught by BOTH halves of the tooling: the static
protocol rules (RPL007/RPL002, proven on all paths without running a
single cycle) and the PR-1 runtime sanitizer (which needs a workload to
drive the broken path).  ``tests/analysis/test_broken_schemes.py``
asserts the cross-validation in both directions.

The module is genuinely runnable — both schemes construct and execute
writes — so the dynamic half of the test is honest."""

from repro.obs import events as ev
from repro.secure.eager import EagerController
from repro.secure.scue import SCUEController


class BrokenEagerScheme(EagerController):
    """Persists the freshly-bumped PARENT before the leaf — across a
    call boundary, so the flat (single-function) lint cannot see it.
    This inverts the eager family's bottom-up obligation (Fig 6a/6b):
    a crash between the two persists leaves a durable ancestor whose
    counter sum no longer matches its still-volatile leaf."""

    name = "eager"

    def _on_leaf_persist(self, leaf, leaf_index, dummy_delta, cycle):
        plevel, pindex = self.amap.parent_coords(0, leaf_index)
        parent, fetch_latency = self.fetch_node(plevel, pindex,
                                                charge=True)
        slot = self.amap.parent_slot(leaf_index)
        parent.bump_counter(slot, dummy_delta)
        leaf.seal(self.mac, self.store.node_addr(0, leaf_index),
                  parent.counter(slot))
        wpq_stall = self._persist_top_down(parent, leaf, cycle)
        return fetch_latency + wpq_stall

    def _persist_top_down(self, parent, leaf, cycle):
        stall = self._persist_node(parent, cycle)  # ancestor first: bug
        stall += self._persist_node(leaf, cycle)
        if self.obs.enabled:
            self.obs.instant(ev.EV_LEAF_PERSIST, ev.TRACK_CTL,
                             scheme=self.name, cycles=stall)
        return stall


class DroppedVerifyScheme(SCUEController):
    """Routes the chain verification through a helper and then drops
    the helper's boolean — the check can never fail, so a tampered node
    is silently accepted.  Invisible to the flat RPL002 (no direct
    ``.verify`` discard in sight); the interprocedural half follows the
    call edge and flags the discard."""

    def _node_ok(self, node, line, parent_counter):
        return node.verify(self.mac, line, parent_counter)

    def _fetch_chain(self, level, index):
        line = self.store.node_addr(level, index)
        hit = self.meta_cache.lookup(line)
        if hit is not None:
            return hit.payload, 0, 0
        parent_counter, latency, fetched = \
            self._parent_counter_chain(level, index)
        latency = max(latency, self.nvm.read_latency(line))
        node = self.store.load(level, index)
        self._meta_reads.add()
        self._node_ok(node, line, parent_counter)  # result dropped: bug
        self._install(line, node, dirty=False)
        return node, latency, fetched + 1
