# reprolint-fixture-path: secure/unexplored_scheme.py
"""RPL010 fixture: a scheme that persists metadata where the crash
explorer cannot see it — a runtime ``poke_line`` (bypasses the
``write_line`` seam) and a shadow root register the recorder neither
snapshots nor replays.  The clean variant routes everything through
registered seams and must not be flagged."""

from repro.secure.roots import RootRegister
from repro.secure.scue import SCUEController


class ShadowRootScheme(SCUEController):
    """Holds root state in an unregistered register (RPL010 x1) and
    sneaks node images to media through poke_line (RPL010 x1)."""

    def __init__(self, config):
        super().__init__(config)
        self.shadow_root = RootRegister("shadow_root", self.amap.arity,
                                        self.amap.counter_bits)

    def _on_leaf_persist(self, leaf, leaf_index, dummy_delta, cycle):
        slot = self._root_slot_of_leaf(leaf_index)
        self.shadow_root.add(slot, dummy_delta)
        addr = self.amap.counter_block_addr(leaf_index)
        self.nvm.poke_line(addr, leaf.to_bytes())  # invisible persist
        return super()._on_leaf_persist(leaf, leaf_index, dummy_delta,
                                        cycle)


class SeamRespectingScheme(SCUEController):
    """Control group: persists only through registered seams."""

    def _on_leaf_persist(self, leaf, leaf_index, dummy_delta, cycle):
        return super()._on_leaf_persist(leaf, leaf_index, dummy_delta,
                                        cycle)
