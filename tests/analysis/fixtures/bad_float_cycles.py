# reprolint-fixture-path: sim/bad_float_cycles.py
"""Known-bad lint fixture: RPL003 (float-cycle-arith) fires exactly
once — true division lands in a cycle counter without int()."""


def schedule(ns, period_ns):
    cycles = ns / period_ns
    return cycles
