# reprolint-fixture-path: secure/bad_stat_counter.py
"""Known-bad lint fixture: RPL005 (stat-counter-discipline) fires
exactly once — the counter is created-or-fetched at increment time."""


def count_event(stats):
    stats.counter("events").add()
