# reprolint-fixture-path: secure/good_clean.py
"""Known-good lint fixture: near-miss versions of every bad pattern.

Each function below is the *compliant* twin of one known-bad fixture;
every rule must stay quiet on this file."""

from repro.errors import IntegrityError


def persist_with_adr(controller, addr, data, cycle):
    stall = controller.wpq.enqueue(addr, cycle, metadata=True)
    controller.nvm.write_line(addr, data)
    return stall


def fetch_and_check(leaf, mac, addr, counter):
    if not leaf.verify(mac, addr, counter):
        raise IntegrityError("leaf HMAC mismatch")
    return leaf


def ns_to_cycles(ns, ghz):
    cycles = int(-(-ns * ghz // 1))
    return cycles


def validate(cycle):
    if cycle < 0:
        raise IntegrityError("negative cycle")
    return cycle


class Counted:
    def __init__(self, stats):
        self._events = stats.counter("events")

    def record(self):
        self._events.add()


class AttributedScheme:
    def _flush_node(self, node, cycle):
        stall = self._persist_node(node, cycle)
        if self.obs.enabled:
            self.obs.instant("meta_flush", "controller", cycles=stall)
        return stall
