# reprolint-fixture-path: sim/bad_attribution_escape.py
"""Known-bad lint fixture: RPL008 (exception-unsafe-attribution) fires
exactly once — the decode helper may raise between the ledger charge
and the obs emit it funds, leaving charged-but-unobserved cycles."""


class TraceExecutor:
    def _decode(self, record):
        if record is None:
            raise ValueError("empty trace record")
        return record

    def step(self, record):
        attr = self.attribution.cycles
        attr["cpu"] += 1
        decoded = self._decode(record)
        self.obs.instant("step", payload=decoded)
