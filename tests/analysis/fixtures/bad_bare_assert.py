# reprolint-fixture-path: sim/bad_bare_assert.py
"""Known-bad lint fixture: RPL004 (bare-assert) fires exactly once."""


def advance(cycle):
    assert cycle >= 0
    return cycle + 1
