# reprolint-fixture-path: secure/bad_unchecked_verify.py
"""Known-bad lint fixture: RPL002 (unchecked-verify) fires exactly
once — the verification result is computed and thrown away."""


def fetch_and_trust(leaf, mac, addr, counter):
    leaf.verify(mac, addr, counter)
    return leaf
