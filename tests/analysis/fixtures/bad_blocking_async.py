# reprolint-fixture-path: serve/blocking.py
"""RPL014 fixture: a poll loop that calls ``time.sleep`` inside an
``async def`` — the whole event loop (every connection, every stream)
freezes for the duration.  The offloaded twin passes the callable to
``asyncio.to_thread`` (no call edge, the loop keeps running) and must
stay clean, as must the genuinely-async shape using
``asyncio.sleep``."""

import asyncio
import time


async def lazy_poll(interval: float) -> None:
    time.sleep(interval)                # RPL014: stalls the loop


async def offloaded_poll(interval: float) -> None:
    await asyncio.to_thread(time.sleep, interval)


async def async_poll(interval: float) -> None:
    await asyncio.sleep(interval)
