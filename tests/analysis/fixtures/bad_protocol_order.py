# reprolint-fixture-path: secure/bad_protocol_order.py
"""Known-bad lint fixture: RPL007 (persist-protocol) fires exactly
once — an eager-family scheme persists a fetched parent before the
leaf, violating the bottom-up obligation (Fig 6a/6b)."""


class ParentFirstScheme:
    name = "eager"

    def _on_leaf_persist(self, leaf, leaf_index, dummy_delta, cycle):
        parent, latency = self.fetch_node(1, leaf_index // 8)
        stall = self._persist_node(parent, cycle)
        stall += self._persist_node(leaf, cycle)
        if self.obs.enabled:
            self.obs.instant("leaf_persist", cycles=stall)
        return latency + stall
