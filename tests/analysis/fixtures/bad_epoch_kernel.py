# reprolint-fixture-path: secure/vector.py
"""Known-bad lint fixture: RPL015 (scalar-path-in-epoch-kernel) fires
exactly once — a declared vectorized kernel that degraded into a
per-element Python loop."""


def apply_bumps(minors, rows, slots):
    for row, slot in zip(rows, slots):
        minors[row][slot] += 1
    return minors


def batch_keyed_hash8(key, messages):
    # Boundary helper outside HOT_KERNELS: the per-row hash loop is the
    # irreducible residue and must stay unflagged.
    return [hash((key, bytes(message))) for message in messages]
