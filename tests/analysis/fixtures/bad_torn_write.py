# reprolint-fixture-path: campaign/torn_manifest.py
"""RPL013 fixture: a manifest writer that opens the final path in
write mode and streams JSON straight into it — a crash mid-dump leaves
a torn manifest that a concurrent reader (or the post-crash resume)
parses as garbage.  The atomic twin below stages to a temp file in the
same directory, fsyncs, and publishes with one ``os.replace``; it must
stay clean."""

import json
import os
import tempfile


def save_manifest_torn(path, payload):
    with open(path, "w") as handle:     # RPL013: truncates in place
        json.dump(payload, handle)


def save_manifest_atomic(path, payload):
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
