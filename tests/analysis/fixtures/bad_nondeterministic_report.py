# reprolint-fixture-path: viz/bad_report.py
"""RPL011 fixture: report code drawing entropy the golden-bundle diff
would catch — module-level random, argless Random constructors, wall-
clock reads.  The seeded twins at the bottom are the sanctioned shape
and must stay clean."""

import datetime
import random
import time
from random import Random


def shuffled_workloads(workloads):
    order = list(workloads)
    random.shuffle(order)                       # RPL011: global RNG
    return order


def jittered_resamples(base):
    rng = random.Random()                       # RPL011: OS-seeded
    return base + rng.randrange(100)


def stamp_bundle(manifest):
    manifest["generated_at"] = time.time()      # RPL011: wall clock
    manifest["date"] = datetime.datetime.now()  # RPL011: wall clock
    return manifest


def anonymous_rng():
    return Random()                             # RPL011: OS-seeded


def seeded_bootstrap(values, seed):
    """Control group: explicitly seeded draws are the sanctioned shape."""
    rng = random.Random(seed)
    alt = Random(seed + 1)
    return rng.choice(values), alt.choice(values)
