# reprolint-fixture-path: secure/bad_nvm_store.py
"""Known-bad lint fixture: RPL001 (nvm-direct-store) fires exactly
once — the store below has no preceding WPQ enqueue in its scope."""


def persist_without_adr(controller, addr, data):
    controller.nvm.write_line(addr, data)
