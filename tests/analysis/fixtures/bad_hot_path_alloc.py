# reprolint-fixture-path: secure/bad_hot_path_alloc.py
"""Known-bad lint fixture: RPL009 (hot-path-allocation) fires exactly
once — a list display built inside a per-access hot-path method."""


class LeakyScheme:
    def _fetch_chain(self, block_index):
        coords = [(0, block_index)]
        return coords

    def cold_setup(self, block_index):
        # Same construction outside the hot-function list: not flagged.
        return [(0, block_index)]
