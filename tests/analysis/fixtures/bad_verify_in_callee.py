# reprolint-fixture-path: secure/bad_verify_in_callee.py
"""Known-bad lint fixture: RPL002 (unchecked-verify) fires exactly
once, interprocedurally — the helper returns a verification result and
the caller throws it away.  No direct ``.verify`` discard exists, so
the flat half of the rule sees nothing."""


class CheckedFetch:
    def _node_ok(self, node, mac, addr, counter):
        return node.verify(mac, addr, counter)

    def fetch(self, node, mac, addr, counter):
        self._node_ok(node, mac, addr, counter)
        return node
