# reprolint-fixture-path: secure/bad_obs_unattributed.py
"""Known-bad lint fixture: RPL006 (obs-unattributed-cycles) fires
exactly once — the scheme method charges hash latency and persists a
node without ever emitting an observability event."""


class SilentScheme:
    def _on_leaf_persist(self, leaf, cycle):
        latency = self.hash_engine.charge(1)
        stall = self._persist_node(leaf, cycle)
        return latency + stall
