# reprolint-fixture-path: serve/broken_scheduler.py
"""RPL012 fixture: a scheduler whose completion counter is read on one
side of an await and written back on the other — the canonical lost-
update race.  Two tasks that both ``note_done`` around the same yield
point each read the same starting count and the second write clobbers
the first (the dynamic twin test in test_atomicity_dynamic.py
demonstrates the corruption with a deterministic two-task gather).

The locked and loop-synchronous twins at the bottom are the sanctioned
shapes and must stay clean."""

import asyncio


class BrokenScheduler:
    """Counts completed cells — incorrectly, across an await."""

    def __init__(self) -> None:
        self.completed = 0
        self._lock = asyncio.Lock()

    async def note_done(self, n: int) -> None:
        count = self.completed
        await asyncio.sleep(0)          # another task runs here
        self.completed = count + n      # RPL012: clobbers its update


class LockedScheduler:
    """The same read-modify-write, atomic under one asyncio.Lock."""

    def __init__(self) -> None:
        self.completed = 0
        self._lock = asyncio.Lock()

    async def note_done(self, n: int) -> None:
        async with self._lock:
            count = self.completed
            await asyncio.sleep(0)      # safe: lock spans the RMW
            self.completed = count + n


class SynchronousScheduler:
    """The loop-synchronous shape: the whole RMW on one side of the
    await, so no task can interleave inside it."""

    def __init__(self) -> None:
        self.completed = 0

    async def note_done(self, n: int) -> None:
        await asyncio.sleep(0)
        self.completed = self.completed + n
