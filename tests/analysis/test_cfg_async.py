"""Async CFG corners: exact edge lists (mirroring test_cfg.py) for
``await`` in conditionals, loops and try/finally, ``async with``
acquiring-then-raising, nested ``async def`` and ``asyncio.gather``
fan-out — plus the *interference-point* marks RPL012 is built on: a
statement interferes when executing it may suspend the coroutine, and
an ``async with`` body's last statement interferes *after* (the
``__aexit__`` await)."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg


def cfg_of(source):
    source = textwrap.dedent(source)
    func = ast.parse(source).body[0]
    return build_cfg(func), source.splitlines()


def edges(source):
    cfg, lines = cfg_of(source)
    return cfg.edge_list(lines)


def marks(source):
    """(interferes-during, interferes-after) as stripped source lines."""
    cfg, lines = cfg_of(source)
    during = [lines[n.lineno - 1].strip()
              for _, _, n in cfg.nodes() if cfg.interferes(n)]
    after = [lines[n.lineno - 1].strip()
             for _, _, n in cfg.nodes() if cfg.interferes_after(n)]
    return during, after


class TestAwaitEdges:
    def test_await_in_conditional(self):
        got = edges("""
        async def f(x):
            if x:
                await a()
            else:
                b()
            c()
        """)
        assert got == [
            ("await a()", "c()", "fall"),
            ("b()", "c()", "fall"),
            ("c()", "<exit>", "fall"),
            ("if x:", "await a()", "true"),
            ("if x:", "b()", "false"),
        ]

    def test_await_in_while_loop(self):
        got = edges("""
        async def f(x):
            while cond():
                await step()
            done()
        """)
        assert got == [
            ("<entry>", "while cond():", "fall"),
            ("await step()", "while cond():", "loop"),
            ("done()", "<exit>", "fall"),
            ("while cond():", "await step()", "true"),
            ("while cond():", "done()", "false"),
        ]

    def test_await_in_try_finally(self):
        got = edges("""
        async def f():
            try:
                await risky()
            finally:
                await cleanup()
            after()
        """)
        assert got == [
            # The raise path into the finally leaves from BEFORE the
            # try (the await may never have run)...
            ("<entry>", "await cleanup()", "except"),
            ("<entry>", "await risky()", "fall"),
            ("after()", "<exit>", "fall"),
            # ...and the finally fans out to the pending raise and the
            # normal continuation.
            ("await cleanup()", "<raise>", "raise"),
            ("await cleanup()", "after()", "finally"),
            ("await risky()", "await cleanup()", "fall"),
        ]

    def test_gather_fanout_is_one_interference_point(self):
        # gather's concurrency happens inside one awaited expression:
        # a straight-line CFG, but the statement is an interference
        # point (every fanned-out task runs while we're suspended).
        source = """
        async def f(xs):
            await asyncio.gather(*(work(x) for x in xs))
            tally()
        """
        assert edges(source) == [
            ("await asyncio.gather(*(work(x) for x in xs))",
             "<exit>", "fall"),
        ]
        during, after = marks(source)
        assert during == \
            ["await asyncio.gather(*(work(x) for x in xs))"]
        assert after == []


class TestAsyncWith:
    def test_acquire_then_raise(self):
        # __aenter__ awaits (the acquire interferes); the raise
        # terminates the body, so the statement after the block is
        # orphaned but keeps its exit edge.
        source = """
        async def f(lock):
            async with lock:
                step()
                raise Boom()
            after()
        """
        assert edges(source) == [
            ("after()", "<exit>", "fall"),
            ("async with lock:", "<raise>", "raise"),
        ]
        during, _after = marks(source)
        assert during == ["async with lock:"]

    def test_body_exit_awaits_aexit(self):
        during, after = marks("""
        async def f(lock):
            async with lock:
                a()
                b()
            after()
        """)
        assert during == ["async with lock:"]     # the acquire
        assert after == ["b()"]                   # the release

    def test_async_for_header_interferes(self):
        # Every iteration awaits __anext__: the header is the
        # interference point, the body statements are not.
        during, after = marks("""
        async def f(it):
            async for item in it:
                use(item)
            done()
        """)
        assert during == ["async for item in it:"]
        assert after == []


class TestNestedAsyncDef:
    def test_inner_awaits_do_not_leak_into_outer(self):
        # The nested coroutine's body is opaque to the outer CFG —
        # defining it suspends nothing.
        source = """
        async def outer():
            async def inner():
                await a()
            b()
        """
        assert edges(source) == [("b()", "<exit>", "fall")]
        during, after = marks(source)
        assert during == []
        assert after == []

    def test_inner_cfg_still_sees_its_own_await(self):
        source = textwrap.dedent("""
        async def outer():
            async def inner():
                await a()
            b()
        """)
        outer = ast.parse(source).body[0]
        inner = outer.body[0]
        cfg = build_cfg(inner)
        assert cfg.is_async
        assert len(cfg.interference_points()) == 1


class TestIsAsync:
    def test_async_def_is_async(self):
        cfg, _ = cfg_of("""
        async def f():
            pass
        """)
        assert cfg.is_async

    def test_sync_def_is_not(self):
        cfg, _ = cfg_of("""
        def f():
            pass
        """)
        assert not cfg.is_async
        assert cfg.interference_points() == []
