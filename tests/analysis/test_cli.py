"""``python -m repro.analysis`` exit-code gating and output formats."""

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "bad_bare_assert.py")
GOOD = str(FIXTURES / "good_clean.py")


class TestExitCodes:
    def test_known_bad_fixture_fails(self, capsys):
        assert main([BAD, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPL004" in out
        assert "bare-assert" in out

    def test_known_good_fixture_passes(self, capsys):
        assert main([GOOD, "--no-baseline"]) == 0

    def test_select_unrelated_rule_passes(self, capsys):
        assert main([BAD, "--no-baseline",
                     "--select", "unchecked-verify"]) == 0

    def test_select_by_id_still_fails(self, capsys):
        assert main([BAD, "--no-baseline", "--select", "RPL004"]) == 1


class TestJsonOutput:
    def test_machine_readable_shape(self, capsys):
        main([BAD, "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["by_rule"] == {"bare-assert": 1}
        (violation,) = payload["violations"]
        assert violation["id"] == "RPL004"
        assert violation["path"] == "sim/bad_bare_assert.py"
        assert violation["fingerprint"]


class TestBaselineFlow:
    def test_write_then_gate_then_stale(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        assert main([BAD, "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert baseline.is_file()
        # Baselined finding no longer gates...
        assert main([BAD, "--baseline", str(baseline)]) == 0
        # ...a stale baseline passes lax mode but fails --strict.
        assert main([GOOD, "--baseline", str(baseline)]) == 0
        assert main([GOOD, "--baseline", str(baseline),
                     "--strict"]) == 1


class TestListRules:
    def test_every_rule_described(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004",
                        "RPL005"):
            assert rule_id in out


class TestRepoGate:
    def test_package_is_strict_clean(self, capsys):
        """The acceptance criterion: the shipped tree (plus its
        committed baseline) passes ``--strict`` with exit 0."""
        assert main(["--strict"]) == 0
