"""``python -m repro.analysis`` exit-code gating and output formats."""

import json
import subprocess
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "bad_bare_assert.py")
GOOD = str(FIXTURES / "good_clean.py")


class TestExitCodes:
    def test_known_bad_fixture_fails(self, capsys):
        assert main([BAD, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPL004" in out
        assert "bare-assert" in out

    def test_known_good_fixture_passes(self, capsys):
        assert main([GOOD, "--no-baseline"]) == 0

    def test_select_unrelated_rule_passes(self, capsys):
        assert main([BAD, "--no-baseline",
                     "--select", "unchecked-verify"]) == 0

    def test_select_by_id_still_fails(self, capsys):
        assert main([BAD, "--no-baseline", "--select", "RPL004"]) == 1


class TestJsonOutput:
    def test_machine_readable_shape(self, capsys):
        main([BAD, "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["by_rule"] == {"bare-assert": 1}
        (violation,) = payload["violations"]
        assert violation["id"] == "RPL004"
        assert violation["path"] == "sim/bad_bare_assert.py"
        assert violation["fingerprint"]


class TestBaselineFlow:
    def test_write_then_gate_then_stale(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        assert main([BAD, "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert baseline.is_file()
        # Baselined finding no longer gates...
        assert main([BAD, "--baseline", str(baseline)]) == 0
        # ...a stale baseline passes lax mode but fails --strict.
        assert main([GOOD, "--baseline", str(baseline)]) == 0
        assert main([GOOD, "--baseline", str(baseline),
                     "--strict"]) == 1


class TestListRules:
    def test_every_rule_described(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004",
                        "RPL005"):
            assert rule_id in out


class TestRepoGate:
    def test_package_is_strict_clean(self, capsys):
        """The acceptance criterion: the shipped tree (plus its
        committed baseline) passes ``--strict`` with exit 0."""
        assert main(["--strict"]) == 0


class TestChangedOnly:
    """``--changed-only`` filters the report to files differing from
    ``--base`` — the whole-tree analysis still runs, but an unrelated
    pre-existing finding cannot block a commit."""

    @staticmethod
    def _git(repo, *argv):
        subprocess.run(
            ["git", "-c", "user.email=t@example.invalid",
             "-c", "user.name=t", *argv],
            cwd=repo, check=True, capture_output=True)

    def _repo(self, tmp_path):
        repo = tmp_path / "checkout"
        pkg = repo / "pkg"
        pkg.mkdir(parents=True)
        (repo / "pyproject.toml").write_text("[project]\n")
        (pkg / "old.py").write_text(
            "def f(x):\n    assert x\n")
        self._git(repo, "init", "-q")
        self._git(repo, "add", "-A")
        self._git(repo, "commit", "-qm", "seed")
        return repo, pkg

    def test_untracked_finding_gates_committed_one_does_not(
            self, tmp_path, capsys):
        repo, pkg = self._repo(tmp_path)
        (pkg / "new.py").write_text(
            "def g(x):\n    assert x\n")
        # Plain run sees both findings...
        assert main([str(pkg), "--no-baseline"]) == 1
        assert "old.py" in capsys.readouterr().out
        # ...changed-only reports only the untracked file.
        assert main([str(pkg), "--no-baseline", "--changed-only"]) == 1
        out = capsys.readouterr().out
        assert "new.py" in out
        assert "old.py" not in out

    def test_clean_diff_passes_despite_old_findings(self, tmp_path,
                                                    capsys):
        repo, pkg = self._repo(tmp_path)
        assert main([str(pkg), "--no-baseline"]) == 1
        capsys.readouterr()
        assert main([str(pkg), "--no-baseline", "--changed-only"]) == 0

    def test_base_ref_widens_the_window(self, tmp_path, capsys):
        repo, pkg = self._repo(tmp_path)
        (pkg / "new.py").write_text(
            "def g(x):\n    assert x\n")
        self._git(repo, "add", "-A")
        self._git(repo, "commit", "-qm", "second")
        # vs HEAD nothing changed; vs HEAD~1 the new file did.
        assert main([str(pkg), "--no-baseline", "--changed-only"]) == 0
        capsys.readouterr()
        assert main([str(pkg), "--no-baseline", "--changed-only",
                     "--base", "HEAD~1"]) == 1
        assert "new.py" in capsys.readouterr().out

    def test_unknown_ref_errors(self, tmp_path, capsys):
        repo, pkg = self._repo(tmp_path)
        assert main([str(pkg), "--no-baseline", "--changed-only",
                     "--base", "no-such-ref"]) == 2
        assert "failed" in capsys.readouterr().err
