"""Seeded-bug cross-validation: the static protocol rules and the PR-1
runtime sanitizer must each catch the SAME two bugs — RPL007's
parent-before-leaf inversion is also caught live by the bottom-up
ordering rule, and RPL002's dropped verify result shows up dynamically
as a tampered node sailing through a scheme that a clean controller
rejects."""

import random
from pathlib import Path

import pytest

from repro.analysis import Linter, attach_sanitizer
from repro.errors import IntegrityError, PersistOrderingError
from repro.secure.scue import SCUEController

from tests.analysis.fixtures.broken_schemes import (
    BrokenEagerScheme,
    DroppedVerifyScheme,
)
from tests.conftest import small_config

FIXTURE = Path(__file__).parent / "fixtures" / "broken_schemes.py"


def marker_line(marker):
    for lineno, text in enumerate(FIXTURE.read_text().splitlines(), 1):
        if marker in text:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in fixture")


def run_writes(controller, n=40, seed=11):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


def force_refetch(controller):
    for _ in range(64):
        dirty = controller.meta_cache.dirty_lines()
        if not dirty:
            break
        for line in dirty:
            if line.dirty:
                line.dirty = False
                controller._flush_node(line.payload, 10**7)
    controller.meta_cache.drop_all()


def tamper_counter_block(controller):
    addr = controller.amap.counter_block_addr(0)
    image = bytearray(controller.nvm.peek_line(addr))
    image[4] ^= 0x40
    controller.nvm.poke_line(addr, bytes(image))


class TestStaticHalf:
    """The lint proves both bugs on all static paths — no workload."""

    def test_exactly_the_two_seeded_rules_fire(self):
        violations = Linter(FIXTURE).run()
        assert sorted(v.rule.name for v in violations) == [
            "persist-protocol", "unchecked-verify"]

    def test_rpl007_lands_on_the_cross_call_parent_persist(self):
        (v,) = [v for v in Linter(FIXTURE).run()
                if v.rule.name == "persist-protocol"]
        # The inversion lives in a HELPER the anchor calls — the line
        # flat per-function scanning could never attribute.
        assert v.line == marker_line("# ancestor first: bug")

    def test_rpl002_lands_on_the_discarded_helper_result(self):
        (v,) = [v for v in Linter(FIXTURE).run()
                if v.rule.name == "unchecked-verify"]
        assert v.line == marker_line("# result dropped: bug")


class TestDynamicHalf:
    """The PR-1 sanitizer and the integrity machinery catch the same
    bugs at runtime, validating the static verdicts."""

    def test_parent_first_persist_trips_the_bottom_up_rule(self):
        controller = BrokenEagerScheme(small_config("eager"))
        attach_sanitizer(controller)
        with pytest.raises(PersistOrderingError, match="bottom-up"):
            run_writes(controller, n=1)

    def test_clean_eager_parent_of_the_fixture_stays_quiet(self):
        # Same config, unbroken base class: the sanitizer is silent, so
        # the dynamic signal above is the seeded bug, not the harness.
        controller = BrokenEagerScheme.__mro__[1](small_config("eager"))
        sanitizer = attach_sanitizer(controller, collect=True)
        run_writes(controller, n=10)
        assert sanitizer.violations == []

    def test_dropped_verify_accepts_a_tampered_node(self):
        controller = DroppedVerifyScheme(
            small_config("scue", metadata_cache_size=1024))
        run_writes(controller, n=60)
        tamper_counter_block(controller)
        force_refetch(controller)
        # The broken scheme computes the verdict and throws it away:
        # the tampered counter block is silently accepted.
        controller.fetch_node(0, 0)

    def test_clean_scue_rejects_the_same_tamper(self):
        controller = SCUEController(
            small_config("scue", metadata_cache_size=1024))
        run_writes(controller, n=60)
        tamper_counter_block(controller)
        force_refetch(controller)
        with pytest.raises(IntegrityError):
            controller.fetch_node(0, 0)
