"""Runtime persist-ordering sanitizer: clean schemes run and crash
without a peep; seeded ordering bugs fail loudly with the offending
write pair."""

import random

import pytest

from repro.analysis import attach_sanitizer
from repro.errors import PersistOrderingError
from repro.secure.eager import EagerController
from repro.secure.scue import SCUEController

from tests.conftest import small_config


def run_writes(controller, n=40, seed=11):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


class BrokenSCUE(SCUEController):
    """Seeded ordering bug: the leaf persists BEFORE the shortcut
    Recovery_root update — the exact §IV-A2 inversion that would leave
    the root lagging the persisted leaves across a crash."""

    def _on_leaf_persist(self, leaf, leaf_index, dummy_delta, cycle):
        dummy = leaf.dummy_counter(self.amap.counter_bits)
        addr = self.amap.counter_block_addr(leaf_index)
        leaf.seal(self.mac, addr, dummy)
        hash_latency = self.hash_engine.charge(1)
        wpq_stall = self._persist_node(leaf, cycle)        # too early
        self.recovery_root.add(self._root_slot_of_leaf(leaf_index),
                               dummy_delta)                # too late
        self._update_parent_counter(0, leaf_index, set_to=dummy,
                                    bump_by=None, cycle=cycle,
                                    charge=False)
        return hash_latency + wpq_stall


class TestCleanRuns:
    def test_scue_history_and_crash_are_quiet(self):
        controller = SCUEController(small_config("scue"))
        sanitizer = attach_sanitizer(controller, collect=True)
        run_writes(controller)
        controller.crash()
        assert sanitizer.violations == []

    def test_eager_history_is_quiet(self):
        controller = EagerController(small_config("eager"))
        sanitizer = attach_sanitizer(controller, collect=True)
        run_writes(controller)
        controller.crash()
        assert sanitizer.violations == []


class TestShortcutRootRule:
    def test_seeded_inversion_caught_on_first_write(self):
        controller = BrokenSCUE(small_config("scue"))
        attach_sanitizer(controller)
        with pytest.raises(PersistOrderingError,
                           match="shortcut-root-before-leaf"):
            run_writes(controller, n=1)

    def test_collect_mode_names_the_rule_and_register(self):
        controller = BrokenSCUE(small_config("scue"))
        sanitizer = attach_sanitizer(controller, collect=True)
        run_writes(controller, n=3)
        assert sanitizer.violations
        assert "Recovery_root" in sanitizer.violations[0]
        assert "scue" in sanitizer.violations[0]


class TestAttributablePersistRule:
    def test_unattributed_store_caught(self):
        controller = SCUEController(small_config("scue"))
        attach_sanitizer(controller)
        with pytest.raises(PersistOrderingError,
                           match="without a[\\s\\S]*preceding WPQ enqueue"):
            controller.nvm.write_line(0, b"\0" * 64)

    def test_enqueued_store_passes(self):
        controller = SCUEController(small_config("scue"))
        attach_sanitizer(controller)
        controller.wpq.enqueue(0, 0)
        controller.nvm.write_line(0, b"\0" * 64)


class TestLeafBeforeParentRule:
    def make(self):
        controller = EagerController(small_config("eager"))
        return controller, attach_sanitizer(controller)

    def test_ancestor_before_leaf_same_cycle_caught(self):
        controller, _ = self.make()
        amap = controller.amap
        controller.wpq.enqueue(amap.tree_node_addr(1, 0), 100,
                               metadata=True)
        with pytest.raises(PersistOrderingError,
                           match="bottom-up"):
            controller.wpq.enqueue(amap.counter_block_addr(0), 100,
                                   metadata=True)

    def test_leaf_first_is_fine(self):
        controller, _ = self.make()
        amap = controller.amap
        controller.wpq.enqueue(amap.counter_block_addr(0), 100,
                               metadata=True)
        controller.wpq.enqueue(amap.tree_node_addr(1, 0), 100,
                               metadata=True)

    def test_different_cycles_are_independent_operations(self):
        controller, _ = self.make()
        amap = controller.amap
        controller.wpq.enqueue(amap.tree_node_addr(1, 0), 100,
                               metadata=True)
        controller.wpq.enqueue(amap.counter_block_addr(0), 200,
                               metadata=True)

    def test_eviction_flush_is_exempt(self):
        controller, sanitizer = self.make()
        amap = controller.amap
        sanitizer._flush_depth = 1  # simulate a victim writeback
        controller.wpq.enqueue(amap.tree_node_addr(1, 0), 100,
                               metadata=True)
        controller.wpq.enqueue(amap.counter_block_addr(0), 100,
                               metadata=True)


class TestRecoveryRootSumRule:
    def test_poisoned_register_caught_at_the_crash_point(self):
        controller = SCUEController(small_config("scue"))
        attach_sanitizer(controller)
        run_writes(controller)
        controller.recovery_root.add(0, 1)  # drift the register
        with pytest.raises(PersistOrderingError,
                           match="counter-summing"):
            controller.crash()


class TestLifecycle:
    def test_dormant_after_crash(self):
        controller = SCUEController(small_config("scue"))
        attach_sanitizer(controller)
        run_writes(controller)
        controller.crash()
        # Recovery-regime traffic is uninstrumented by design.
        controller.nvm.write_line(0, b"\0" * 64)

    def test_detach_restores_the_originals(self):
        controller = SCUEController(small_config("scue"))
        sanitizer = attach_sanitizer(controller)
        sanitizer.detach()
        controller.nvm.write_line(0, b"\0" * 64)
        run_writes(controller, n=5)
