"""The RPL012 fixture race, demonstrated dynamically: the exact module
the static rule flags (``bad_await_race.py``) is imported and driven by
a deterministic two-task gather.  ``BrokenScheduler`` loses an update
— two completions count as one — while the locked and loop-synchronous
twins (which reprolint accepts) count correctly.  Static finding and
runtime corruption point at the same line."""

import asyncio
import importlib.util
from pathlib import Path

FIXTURE = Path(__file__).parent / "fixtures" / "bad_await_race.py"


def _load_fixture():
    spec = importlib.util.spec_from_file_location("bad_await_race",
                                                  FIXTURE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _drive(scheduler_cls) -> int:
    """Two tasks each report one completed cell; returns the count the
    scheduler ends up with.  Deterministic: both coroutines reach their
    single ``await asyncio.sleep(0)`` yield point in submission order,
    so the interleaving read-read-write-write is forced, not timing-
    dependent."""
    async def main() -> int:
        scheduler = scheduler_cls()
        await asyncio.gather(scheduler.note_done(1),
                             scheduler.note_done(1))
        return scheduler.completed

    return asyncio.run(main())


class TestAwaitRaceDynamically:
    def test_broken_scheduler_loses_an_update(self):
        fixture = _load_fixture()
        # Both tasks read completed == 0 before either writes: the
        # second write clobbers the first and one completion vanishes.
        assert _drive(fixture.BrokenScheduler) == 1

    def test_locked_scheduler_counts_both(self):
        fixture = _load_fixture()
        assert _drive(fixture.LockedScheduler) == 2

    def test_synchronous_scheduler_counts_both(self):
        fixture = _load_fixture()
        assert _drive(fixture.SynchronousScheduler) == 2
