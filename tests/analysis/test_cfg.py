"""CFG builder hard corners: hand-written expected edge lists for the
shapes that break naive builders — try/finally with a return inside the
try, while/else, nested with, match, and generator functions."""

import ast
import textwrap

from repro.analysis.cfg import EDGE_KINDS, build_cfg


def cfg_of(source):
    source = textwrap.dedent(source)
    func = ast.parse(source).body[0]
    return build_cfg(func), source.splitlines()


def edges(source):
    cfg, lines = cfg_of(source)
    return cfg.edge_list(lines)


class TestTryFinally:
    def test_return_inside_try_routes_through_finally(self):
        got = edges("""
        def f(x):
            try:
                a()
                return 1
            finally:
                b()
            c()
        """)
        assert got == [
            # Normal entry into the try body, and the uncaught-raise
            # path that still runs the finally.
            ("<entry>", "a()", "fall"),
            ("<entry>", "b()", "except"),
            # The return routes through the finally chain...
            ("a()", "b()", "return"),
            # ...and the finally fans out to every continuation: the
            # pending return, the pending raise, and (conservatively)
            # the fall-through to the statement after the try.
            ("b()", "<exit>", "finally"),
            ("b()", "<raise>", "raise"),
            ("b()", "c()", "finally"),
            ("c()", "<exit>", "fall"),
        ]

    def test_except_handler_sees_pre_try_facts(self):
        got = edges("""
        def f():
            try:
                risky()
            except ValueError:
                handle()
            after()
        """)
        # The handler edge leaves from the block BEFORE the try: the
        # handler must not inherit facts established inside the body.
        assert got == [
            ("<entry>", "handle()", "except"),
            ("<entry>", "risky()", "fall"),
            ("after()", "<exit>", "fall"),
            ("handle()", "after()", "fall"),
            ("risky()", "after()", "fall"),
        ]


class TestWhile:
    def test_while_else_runs_only_on_normal_exhaustion(self):
        got = edges("""
        def f(xs):
            while cond():
                body()
            else:
                tail()
            after()
        """)
        assert got == [
            ("<entry>", "while cond():", "fall"),
            ("after()", "<exit>", "fall"),
            ("body()", "while cond():", "loop"),
            # else only via the false edge — never straight to after().
            ("tail()", "after()", "fall"),
            ("while cond():", "body()", "true"),
            ("while cond():", "tail()", "false"),
        ]

    def test_while_true_has_no_false_edge(self):
        got = edges("""
        def f():
            while True:
                if done():
                    break
                step()
            after()
        """)
        assert got == [
            ("<entry>", "while True:", "fall"),
            ("after()", "<exit>", "fall"),
            ("if done():", "after()", "true"),   # the break edge
            ("if done():", "step()", "false"),
            ("step()", "while True:", "loop"),
            ("while True:", "if done():", "true"),
        ]
        # Constant-test pruning: nothing leaves the header on "false".
        assert not any(kind == "false" and src == "while True:"
                       for src, _, kind in got)


class TestWith:
    def test_nested_with_is_straight_line(self):
        cfg, lines = cfg_of("""
        def f(p):
            with open(p) as fh:
                with lock:
                    work(fh)
            done()
        """)
        assert cfg.edge_list(lines) == [
            ("with open(p) as fh:", "<exit>", "fall"),
        ]
        # Context expressions and optional vars are leaf statements of
        # the single block, in execution order.
        texts = [ast.dump(node) for _, _, node in cfg.nodes()]
        assert len(texts) == 5  # open(p), fh, lock, work(fh), done()


class TestMatch:
    def test_wildcard_case_removes_the_no_match_edge(self):
        got = edges("""
        def f(v):
            match v:
                case 1:
                    one()
                case _:
                    other()
            after()
        """)
        assert got == [
            ("after()", "<exit>", "fall"),
            ("match v:", "one()", "case"),
            ("match v:", "other()", "case"),
            ("one()", "after()", "fall"),
            ("other()", "after()", "fall"),
        ]

    def test_without_wildcard_the_subject_may_fall_through(self):
        got = edges("""
        def f(v):
            match v:
                case 1:
                    one()
            after()
        """)
        assert ("match v:", "after()", "no-match") in got


class TestGenerators:
    def test_yield_is_an_ordinary_expression(self):
        got = edges("""
        def f(xs):
            for x in xs:
                yield x
            done()
        """)
        assert got == [
            ("done()", "<exit>", "fall"),
            ("for x in xs:", "done()", "exhausted"),
            # iter-expr block and loop-target block share the line.
            ("for x in xs:", "for x in xs:", "fall"),
            ("for x in xs:", "yield x", "iter"),
            ("yield x", "for x in xs:", "loop"),
        ]


class TestScoping:
    def test_nested_defs_contribute_no_statements(self):
        cfg, _ = cfg_of("""
        def f():
            a()
            def inner():
                hidden()
            b()
        """)
        dumped = " ".join(ast.dump(node) for _, _, node in cfg.nodes())
        assert "hidden" not in dumped
        assert "'a'" in dumped and "'b'" in dumped

    def test_every_edge_kind_is_registered(self):
        sources = """
        def f(x, xs):
            for i in xs:
                if i:
                    continue
                break
            else:
                pass
            while x:
                pass
            try:
                return 1
            except ValueError:
                raise
            finally:
                pass
            match x:
                case 1:
                    pass
        """
        cfg, lines = cfg_of(sources)
        for _, _, kind in cfg.edge_list(lines):
            assert kind in EDGE_KINDS
