"""Interprocedural RPL001/RPL002: caller-side enqueues credit callees,
branch-sensitive paths are proven on the CFG (not by line order), guard
falsification prunes impossible edges, and verify results are tracked
across call boundaries.  A replica of the old flat rule shows the
upgrade strictly reduces the suppressions it would have demanded."""

import ast
import textwrap

from repro.analysis import Linter

PIN = "# reprolint-fixture-path: tree/mod.py\n"
PIN_SECURE = "# reprolint-fixture-path: secure/mod.py\n"


def lint(tmp_path, source, select, pin=PIN):
    path = tmp_path / "mod.py"
    path.write_text(pin + textwrap.dedent(source))
    return Linter(path, select=select).run()


def line_of(tmp_path, needle):
    text = (tmp_path / "mod.py").read_text()
    for lineno, line in enumerate(text.splitlines(), 1):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not in fixture")


CALLER_CREDITS = """
class Store:
    def save(self, node):
        self.nvm.write_line(node.addr, node.raw)

class Controller:
    def __init__(self, nvm):
        self.store = Store(nvm)

    def persist(self, node, cycle):
        self.wpq.enqueue(node.addr, cycle, metadata=True)
        return self.store.save(node)
"""


class TestCallerCredit:
    def test_enqueue_in_the_caller_satisfies_the_callee_store(
            self, tmp_path):
        assert lint(tmp_path, CALLER_CREDITS,
                    ["nvm-direct-store"]) == []

    def test_without_the_caller_enqueue_the_store_is_flagged(
            self, tmp_path):
        source = CALLER_CREDITS.replace(
            "        self.wpq.enqueue(node.addr, cycle, metadata=True)\n",
            "")
        (v,) = lint(tmp_path, source, ["nvm-direct-store"])
        assert v.line == line_of(tmp_path, "write_line")
        assert "callers" in v.message

    def test_transitive_caller_chain_carries_the_credit(self, tmp_path):
        source = """
        class Store:
            def save(self, node):
                self.nvm.write_line(node.addr, node.raw)

        class Controller:
            def __init__(self, nvm):
                self.store = Store(nvm)

            def _flush(self, node):
                return self.store.save(node)

            def persist(self, node, cycle):
                self.wpq.enqueue(node.addr, cycle, metadata=True)
                return self._flush(node)
        """
        assert lint(tmp_path, source, ["nvm-direct-store"]) == []


class TestBranchSensitivity:
    SKIPPING = """
    class Controller:
        def persist(self, node, cycle, urgent):
            if urgent:
                self.wpq.enqueue(node.addr, cycle, metadata=True)
            self.nvm.write_line(node.addr, node.raw)
    """

    def test_an_enqueue_on_one_branch_does_not_cover_the_store(
            self, tmp_path):
        (v,) = lint(tmp_path, self.SKIPPING, ["nvm-direct-store"])
        assert v.line == line_of(tmp_path, "write_line")

    def test_the_old_line_order_rule_would_have_passed_it(self, tmp_path):
        # The pre-CFG rule accepted any enqueue at an earlier line in
        # the same scope: this path was invisible before the upgrade.
        assert flat_rpl001(textwrap.dedent(self.SKIPPING)) == 0

    def test_enqueue_on_both_branches_covers_the_store(self, tmp_path):
        source = """
        class Controller:
            def persist(self, node, cycle, urgent):
                if urgent:
                    self.wpq.enqueue(node.addr, cycle, metadata=True)
                else:
                    self.wpq.enqueue(node.addr, cycle)
                self.nvm.write_line(node.addr, node.raw)
        """
        assert lint(tmp_path, source, ["nvm-direct-store"]) == []


GUARDED = """
class Store:
    def save(self, node, counted=True):
        if counted:
            self.nvm.write_line(node.addr, node.raw)

class Injector:
    def __init__(self, nvm):
        self.store = Store(nvm)

    def poke(self, node):
        self.store.save(node, counted=False)
"""


class TestGuardFalsification:
    def test_a_site_falsifying_the_guard_is_exempt(self, tmp_path):
        assert lint(tmp_path, GUARDED, ["nvm-direct-store"]) == []

    def test_positional_false_also_falsifies(self, tmp_path):
        source = GUARDED.replace("save(node, counted=False)",
                                 "save(node, False)")
        assert lint(tmp_path, source, ["nvm-direct-store"]) == []

    def test_a_true_site_without_an_enqueue_still_flags(self, tmp_path):
        source = GUARDED.replace("counted=False", "counted=True")
        (v,) = lint(tmp_path, source, ["nvm-direct-store"])
        assert v.line == line_of(tmp_path, "write_line")


class TestFlatFallbackScopes:
    def test_module_level_store_without_enqueue_flags(self, tmp_path):
        source = """
        nvm.write_line(0, b"x")
        """
        (v,) = lint(tmp_path, source, ["nvm-direct-store"])
        assert "no preceding wpq.enqueue" in v.message

    def test_module_level_store_after_enqueue_passes(self, tmp_path):
        source = """
        wpq.enqueue(0, 0)
        nvm.write_line(0, b"x")
        """
        assert lint(tmp_path, source, ["nvm-direct-store"]) == []

    def test_nested_function_store_keeps_the_flat_check(self, tmp_path):
        source = """
        def outer(nvm, wpq):
            wpq.enqueue(0, 0)
            def flush():
                nvm.write_line(0, b"x")
            return flush
        """
        # The nested def is its own scope: the outer enqueue does not
        # cover it, and nested defs are outside the indexed call graph.
        (v,) = lint(tmp_path, source, ["nvm-direct-store"])
        assert v.line == line_of(tmp_path, "write_line")


class TestVerifyAcrossCalls:
    def test_discarding_a_verify_returning_helper_flags(self, tmp_path):
        source = """
        class Chain:
            def _ok(self, node, mac, addr, counter):
                return node.verify(mac, addr, counter)

            def fetch(self, node, mac, addr, counter):
                self._ok(node, mac, addr, counter)
                return node
        """
        (v,) = lint(tmp_path, source, ["unchecked-verify"],
                    pin=PIN_SECURE)
        assert v.line == line_of(tmp_path, "self._ok(node")
        assert "_ok" in v.message and "call boundary" in v.message

    def test_transitive_verify_return_is_followed(self, tmp_path):
        source = """
        class Chain:
            def _ok(self, node, mac, addr, counter):
                return node.verify(mac, addr, counter)

            def _ok2(self, node, mac, addr, counter):
                return self._ok(node, mac, addr, counter)

            def fetch(self, node, mac, addr, counter):
                self._ok2(node, mac, addr, counter)
                return node
        """
        (v,) = lint(tmp_path, source, ["unchecked-verify"],
                    pin=PIN_SECURE)
        assert "_ok2" in v.message

    def test_consumed_helper_result_passes(self, tmp_path):
        source = """
        class Chain:
            def _ok(self, node, mac, addr, counter):
                return node.verify(mac, addr, counter)

            def fetch(self, node, mac, addr, counter):
                if not self._ok(node, mac, addr, counter):
                    raise ValueError("tampered")
                return node
        """
        assert lint(tmp_path, source, ["unchecked-verify"],
                    pin=PIN_SECURE) == []


class TestUnconsumedResults:
    def test_result_consulted_on_only_one_path_flags(self, tmp_path):
        source = """
        class Chain:
            def fetch(self, node, mac, addr, counter, strict):
                ok = node.verify(mac, addr, counter)
                if strict:
                    if not ok:
                        raise ValueError("tampered")
                return node
        """
        (v,) = lint(tmp_path, source, ["unchecked-verify"],
                    pin=PIN_SECURE)
        assert v.line == line_of(tmp_path, "ok = node.verify")
        assert "never consulted on some path" in v.message

    def test_result_consulted_on_every_path_passes(self, tmp_path):
        source = """
        class Chain:
            def fetch(self, node, mac, addr, counter):
                ok = node.verify(mac, addr, counter)
                if not ok:
                    raise ValueError("tampered")
                return node
        """
        assert lint(tmp_path, source, ["unchecked-verify"],
                    pin=PIN_SECURE) == []

    def test_assigned_helper_result_never_read_flags(self, tmp_path):
        source = """
        class Chain:
            def _ok(self, node, mac, addr, counter):
                return node.verify(mac, addr, counter)

            def fetch(self, node, mac, addr, counter):
                got = self._ok(node, mac, addr, counter)
                return node
        """
        (v,) = lint(tmp_path, source, ["unchecked-verify"],
                    pin=PIN_SECURE)
        assert "'got'" in v.message


def flat_rpl001(source):
    """Replica of the pre-upgrade RPL001: flag a ``write_line`` unless
    an ``enqueue`` appears at an earlier line in the same function."""
    count = 0
    for fn in [n for n in ast.walk(ast.parse(source))
               if isinstance(n, ast.FunctionDef)]:
        enq = [n.lineno for n in ast.walk(fn)
               if isinstance(n, ast.Call)
               and isinstance(n.func, ast.Attribute)
               and n.func.attr == "enqueue"]
        first = min(enq) if enq else None
        for n in ast.walk(fn):
            if isinstance(n, ast.Call) and \
                    isinstance(n.func, ast.Attribute) and \
                    n.func.attr == "write_line" and \
                    (first is None or n.lineno < first):
                count += 1
    return count


class TestStrictlyFewerSuppressions:
    def test_caller_credit_shrinks_the_flat_suppression_set(
            self, tmp_path):
        # The flat rule demands a suppression for Store.save (no local
        # enqueue in sight); the interprocedural rule proves the caller
        # covers it and demands none.
        assert flat_rpl001(textwrap.dedent(CALLER_CREDITS)) == 1
        assert lint(tmp_path, CALLER_CREDITS,
                    ["nvm-direct-store"]) == []

    def test_guard_falsification_shrinks_it_too(self, tmp_path):
        assert flat_rpl001(textwrap.dedent(GUARDED)) == 1
        assert lint(tmp_path, GUARDED, ["nvm-direct-store"]) == []
