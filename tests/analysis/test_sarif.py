"""SARIF 2.1.0 exporter: structural conformance checks that run
offline (CI additionally validates against the official schema) plus
the --sarif CLI end-to-end path."""

import json
from pathlib import Path

from repro.analysis import Linter
from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.report import LintReport
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import (
    FINGERPRINT_KEY,
    SARIF_VERSION,
    to_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures"


def report_for(fixture, baselined=False):
    violations = Linter(FIXTURES / fixture).run()
    report = LintReport(files_checked=1)
    if baselined:
        _, report.baselined, _ = \
            Baseline.from_violations(violations).split(violations)
    else:
        report.violations = violations
    return report


class TestLogShape:
    def test_version_and_schema(self):
        log = to_sarif(report_for("bad_bare_assert.py"))
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1

    def test_driver_describes_every_registered_rule(self):
        (run,) = to_sarif(report_for("bad_bare_assert.py"))["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == [r.id for r in ALL_RULES]
        for descriptor in rules:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["fullDescription"]["text"]
            assert descriptor["defaultConfiguration"] == {
                "level": "error"}

    def test_rule_index_points_at_the_right_descriptor(self):
        (run,) = to_sarif(report_for("bad_bare_assert.py"))["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_result_location_region_and_fingerprint(self):
        report = report_for("bad_bare_assert.py")
        (violation,) = report.violations
        (run,) = to_sarif(report, uri_prefix="src/repro")["runs"]
        (result,) = run["results"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == \
            f"src/repro/{violation.path}"
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
        region = location["region"]
        assert region["startLine"] == violation.line
        assert region["startColumn"] == violation.column
        assert region["snippet"]["text"] == violation.snippet
        assert result["partialFingerprints"][FINGERPRINT_KEY] == \
            violation.fingerprint
        assert "SRCROOT" in run["originalUriBaseIds"]

    def test_empty_prefix_leaves_paths_bare(self):
        report = report_for("bad_bare_assert.py")
        (run,) = to_sarif(report)["runs"]
        (result,) = run["results"]
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri == report.violations[0].path


class TestSuppressions:
    def test_new_findings_carry_no_suppressions(self):
        (run,) = to_sarif(report_for("bad_bare_assert.py"))["runs"]
        assert "suppressions" not in run["results"][0]

    def test_baselined_findings_are_externally_suppressed(self):
        report = report_for("bad_bare_assert.py", baselined=True)
        assert report.baselined and not report.violations
        (run,) = to_sarif(report)["runs"]
        (result,) = run["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "external"
        assert "baseline" in suppression["justification"]


class TestCliEndToEnd:
    def test_sarif_flag_writes_a_loadable_log(self, tmp_path, capsys):
        out = tmp_path / "out.sarif"
        code = main([str(FIXTURES / "bad_bare_assert.py"),
                     "--no-baseline", "--sarif", str(out)])
        assert code == 1  # gating is unchanged by the export
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "RPL004"
        assert result["level"] == "error"
