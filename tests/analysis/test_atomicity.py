"""Unit tests for the RPL012/RPL014 engines (repro.analysis.atomicity)
driven through hand-built :class:`ProjectIndex` instances: lexical
locksets, *lockset transfer through helper calls* (a helper's accesses
count at the call site under the caller's lockset), asyncio-primitive
exemptions, and blocking-call propagation over exact call edges."""

import ast
import textwrap

from repro.analysis.atomicity import (
    check_await_atomicity,
    check_blocking_calls,
    lexical_locksets,
)
from repro.analysis.callgraph import ProjectIndex


def index_of(**sources):
    """ProjectIndex over {relpath_stem: source} modules."""
    return ProjectIndex(
        [(f"{name.replace('__', '/')}.py",
          ast.parse(textwrap.dedent(src)))
         for name, src in sources.items()])


def races(**sources):
    return check_await_atomicity(index_of(**sources))


def blocking(**sources):
    return check_blocking_calls(index_of(**sources))


RACY = """
import asyncio


class Counter:
    def __init__(self):
        self.total = 0
        self._lock = asyncio.Lock()

    async def bump(self, n):
        seen = self.total
        await asyncio.sleep(0)
        self.total = seen + n
"""


class TestAwaitAtomicity:
    def test_flags_the_plain_race(self):
        (finding,) = races(serve__counter=RACY)
        assert finding.relpath == "serve/counter.py"
        assert "'self.total'" in finding.message
        assert "no covering asyncio lock" in finding.message

    def test_lock_spanning_the_rmw_is_clean(self):
        assert races(serve__counter="""
        import asyncio


        class Counter:
            def __init__(self):
                self.total = 0
                self._lock = asyncio.Lock()

            async def bump(self, n):
                async with self._lock:
                    seen = self.total
                    await asyncio.sleep(0)
                    self.total = seen + n
        """) == []

    def test_lock_released_between_read_and_write_still_races(self):
        # Two separate critical sections do NOT make the RMW atomic:
        # the interference point between them is uncovered.
        (finding,) = races(serve__counter="""
        import asyncio


        class Counter:
            def __init__(self):
                self.total = 0
                self._lock = asyncio.Lock()

            async def bump(self, n):
                async with self._lock:
                    seen = self.total
                await asyncio.sleep(0)
                async with self._lock:
                    self.total = seen + n
        """)
        assert "'self.total'" in finding.message

    def test_helper_accesses_transfer_to_the_call_site(self):
        # The read happens inside a sync helper: its access summary
        # merges at the call site, so the race across the await is
        # still seen.
        (finding,) = races(serve__counter="""
        import asyncio


        class Counter:
            def __init__(self):
                self.total = 0
                self.pending = 0

            def _stage(self):
                self.pending = self.total

            async def flush(self):
                self._stage()
                await asyncio.sleep(0)
                self.total = self.pending + 1
        """)
        assert "'self.total'" in finding.message

    def test_helper_called_under_lock_inherits_the_lockset(self):
        # Same helper, but every access happens inside one critical
        # section: the helper's accesses inherit the caller's lockset.
        assert races(serve__counter="""
        import asyncio


        class Counter:
            def __init__(self):
                self.total = 0
                self.pending = 0
                self._lock = asyncio.Lock()

            def _stage(self):
                self.pending = self.total

            async def flush(self):
                async with self._lock:
                    self._stage()
                    await asyncio.sleep(0)
                    self.total = self.pending + 1
        """) == []

    def test_asyncio_primitive_attrs_are_exempt(self):
        # Wake-event choreography (set/clear around awaits) is the
        # sanctioned loop-synchronous idiom, not shared data.
        assert races(serve__pump="""
        import asyncio


        class Pump:
            def __init__(self):
                self._wake = asyncio.Event()

            async def run(self):
                await self._wake.wait()
                self._wake.clear()
        """) == []

    def test_rmw_on_one_side_of_the_await_is_clean(self):
        assert races(serve__counter="""
        import asyncio


        class Counter:
            def __init__(self):
                self.total = 0

            async def bump(self, n):
                await asyncio.sleep(0)
                self.total = self.total + n
        """) == []


class TestLexicalLocksets:
    def test_context_expr_is_outside_its_own_region(self):
        source = textwrap.dedent("""
        async def f(self):
            async with self._lock:
                body()
        """)
        fn = ast.parse(source).body[0]
        held = lexical_locksets(fn, frozenset({"_lock"}))
        with_stmt = fn.body[0]
        acquire = with_stmt.items[0].context_expr
        body_stmt = with_stmt.body[0]
        assert held.get(id(acquire), frozenset()) == frozenset()
        assert held[id(body_stmt)] == frozenset({"self._lock"})


class TestBlockingCalls:
    def test_direct_sleep_flagged(self):
        (finding,) = blocking(serve__poll="""
        import time


        async def poll():
            time.sleep(1)
        """)
        assert "'time.sleep()'" in finding.message

    def test_propagates_through_sync_helper(self):
        (finding,) = blocking(serve__poll="""
        import time


        def nap():
            time.sleep(1)


        async def poll():
            nap()
        """)
        assert "reached via 'nap'" in finding.message

    def test_propagates_through_import_edge(self):
        # The helper lives in another module: the ``from repro.x
        # import f`` edge carries the summary across files.
        findings = blocking(
            serve__helpers="""
            import time


            def nap():
                time.sleep(1)
            """,
            serve__poll="""
            from repro.serve.helpers import nap


            async def poll():
                nap()
            """)
        assert [f.relpath for f in findings] == ["serve/poll.py"]
        assert "reached via 'nap'" in findings[0].message

    def test_to_thread_offload_is_clean(self):
        assert blocking(serve__poll="""
        import asyncio
        import time


        async def poll():
            await asyncio.to_thread(time.sleep, 1)
        """) == []

    def test_async_callee_does_not_propagate(self):
        # An async callee has its own findings; the caller awaiting it
        # is not itself blocking.
        findings = blocking(serve__poll="""
        import time


        async def inner():
            time.sleep(1)


        async def outer():
            await inner()
        """)
        assert [f.message.split("'")[3] for f in findings] == ["inner"]
