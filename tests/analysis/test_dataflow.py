"""Worklist dataflow engine: must/may joins, loops reaching fixpoint,
and facts_before replaying block prefixes."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ForwardAnalysis, gen_kill_flow


def analyse(source, *, must=True, entry_facts=frozenset()):
    func = ast.parse(textwrap.dedent(source)).body[0]
    cfg = build_cfg(func)

    def gen(node):
        # A call to mark_X() generates fact "X"; drop_X() kills it.
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name):
                if callee.id.startswith("mark_"):
                    return frozenset({callee.id[5:]})
        return frozenset()

    def kill(node):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name) and callee.id.startswith("drop_"):
                return frozenset({callee.id[5:]})
        return frozenset()

    return cfg, ForwardAnalysis(cfg, gen_kill_flow(gen, kill),
                                must=must, entry_facts=entry_facts)


class TestMust:
    def test_fact_on_both_branches_survives_the_join(self):
        _, a = analyse("""
        def f(c):
            if c:
                mark_x()
            else:
                mark_x()
            tail()
        """)
        assert a.facts_at_exit() == {"x"}

    def test_fact_on_one_branch_dies_at_the_join(self):
        _, a = analyse("""
        def f(c):
            if c:
                mark_x()
            tail()
        """)
        assert a.facts_at_exit() == frozenset()

    def test_loop_body_fact_does_not_leak_to_exit(self):
        _, a = analyse("""
        def f(xs):
            for x in xs:
                mark_x()
            tail()
        """)
        # Zero-iteration path skips the body: not a must-fact.
        assert a.facts_at_exit() == frozenset()

    def test_fact_before_the_loop_survives_it(self):
        _, a = analyse("""
        def f(xs):
            mark_x()
            for x in xs:
                step()
            tail()
        """)
        assert a.facts_at_exit() == {"x"}

    def test_entry_facts_seed_the_analysis(self):
        _, a = analyse("""
        def f():
            tail()
        """, entry_facts=frozenset({"seeded"}))
        assert a.facts_at_exit() == {"seeded"}

    def test_unreachable_code_is_top(self):
        func = ast.parse(textwrap.dedent("""
        def f():
            return 1
            dead()
        """)).body[0]
        cfg = build_cfg(func)
        analysis = ForwardAnalysis(cfg, lambda facts, node: facts)
        dead = [node for _, _, node in cfg.nodes()
                if isinstance(node, ast.Expr)]
        assert dead and analysis.facts_before(dead[0]) is None


class TestMay:
    def test_fact_on_one_branch_survives_a_may_join(self):
        _, a = analyse("""
        def f(c):
            if c:
                mark_x()
            tail()
        """, must=False)
        assert a.facts_at_exit() == {"x"}

    def test_kill_on_every_path_removes_the_fact(self):
        _, a = analyse("""
        def f(c):
            mark_x()
            if c:
                drop_x()
            else:
                drop_x()
            tail()
        """, must=False)
        assert a.facts_at_exit() == frozenset()

    def test_kill_on_one_path_keeps_the_may_fact(self):
        _, a = analyse("""
        def f(c):
            mark_x()
            if c:
                drop_x()
            tail()
        """, must=False)
        assert a.facts_at_exit() == {"x"}


class TestFactsBefore:
    def test_prefix_replay_within_a_block(self):
        source = """
        def f():
            mark_x()
            middle()
            drop_x()
            tail()
        """
        cfg, a = analyse(source)
        calls = {node.value.func.id: node for _, _, node in cfg.nodes()
                 if isinstance(node, ast.Expr)
                 and isinstance(node.value, ast.Call)
                 and isinstance(node.value.func, ast.Name)}
        assert a.facts_before(calls["mark_x"]) == frozenset()
        assert a.facts_before(calls["middle"]) == {"x"}
        assert a.facts_before(calls["tail"]) == frozenset()

    def test_handler_sees_pre_try_facts_only(self):
        source = """
        def f():
            try:
                mark_x()
                risky()
            except ValueError:
                handler()
            tail()
        """
        cfg, a = analyse(source)
        handler = [node for _, _, node in cfg.nodes()
                   if isinstance(node, ast.Expr)
                   and isinstance(node.value, ast.Call)
                   and isinstance(node.value.func, ast.Name)
                   and node.value.func.id == "handler"][0]
        # The exception edge leaves from before the try: "x" must not
        # be assumed inside the handler.
        assert a.facts_before(handler) == frozenset()
