"""Crash-state explorer: pruning soundness against a brute-force
reference, the two-sided oracle on clean and seeded-bug schemes, and
the shard/report plumbing.

The pruning-soundness tests are the load-bearing ones: the sharded
``iter_cuts`` enumeration (antichain growth with lag sets) must produce
*exactly* the crash-state set that the naive downward-closed-set
enumeration produces — same cuts, same canonical state hashes — on both
a totally-ordered trace and a two-branch trace where commutativity
pruning actually fires.
"""

from repro.analysis.explorer.model import CrashStateModel, brute_force_cuts
from repro.analysis.explorer.record import record_writes
from repro.analysis.explorer.report import (
    REX_MISSED_DETECTION,
    exploration_sarif,
    single_row_result,
    text_matrix,
    violations_report,
)
from repro.analysis.explorer.shards import (
    ShardResult,
    explore_range,
    parse_group,
    shard_group,
)
from repro.sim.config import SystemConfig

from tests.analysis.fixtures.broken_schemes import BrokenEagerScheme

LEAF_BYTES = 64 * 64  # one counter block covers 64 data lines


def tiny_config(scheme="scue", **overrides):
    base = dict(scheme=scheme, data_capacity=16 * 1024,
                tree_levels=2, metadata_cache_size=64 * 1024,
                check_data=True)
    base.update(overrides)
    return SystemConfig(**base)


def sharded_cuts(model, shard_units=2):
    cuts = set()
    for lo in range(0, max(len(model.units), 1), shard_units):
        hi = min(lo + shard_units, len(model.units))
        for cut in model.iter_cuts(lo, hi):
            assert cut not in cuts, "shards must partition the cut space"
            cuts.add(cut)
    return cuts


class TestPruningSoundness:
    """ISSUE acceptance: bounded exploration on the tiny reference
    config enumerates the exact same canonical crash-state set as the
    brute-force oracle."""

    def test_total_order_trace_matches_brute_force(self):
        recording = record_writes(
            tiny_config(),
            [leaf * LEAF_BYTES for leaf in (0, 1, 2, 3, 0, 1)])
        model = CrashStateModel(recording)
        smart = sharded_cuts(model)
        brute = brute_force_cuts(model)
        assert smart == brute
        assert {model.state_of(c).canonical for c in smart} == \
            {model.state_of(c).canonical for c in brute}

    def test_two_branch_commutativity_matches_brute_force(self):
        recording = record_writes(
            tiny_config(data_capacity=64 * 1024),
            [leaf * LEAF_BYTES for leaf in (0, 8, 1, 9, 0, 8)])
        model = CrashStateModel(recording)
        # Disjoint branches really are unordered here: some unit must
        # have more than one immediate predecessor-free alternative.
        assert any(len(p) == 0 for p in model.preds[1:]) or \
            any(len(model.preds[i]) < i for i in range(len(model.units)))
        smart = sharded_cuts(model)
        brute = brute_force_cuts(model)
        assert smart == brute
        assert {model.state_of(c).canonical for c in smart} == \
            {model.state_of(c).canonical for c in brute}

    def test_max_lag_yields_a_subset(self):
        recording = record_writes(
            tiny_config(data_capacity=64 * 1024),
            [leaf * LEAF_BYTES for leaf in (0, 8, 1, 9, 0, 8)])
        full = sharded_cuts(CrashStateModel(recording))
        lagged = sharded_cuts(CrashStateModel(recording, max_lag=1))
        assert lagged < full
        # The prefix cuts (lag 0) always survive the bound.
        assert frozenset() in lagged

    def test_eager_trace_matches_brute_force(self):
        recording = record_writes(
            tiny_config(scheme="eager"),
            [leaf * LEAF_BYTES for leaf in (0, 1, 2, 3, 0, 1)])
        model = CrashStateModel(recording)
        assert sharded_cuts(model) == brute_force_cuts(model)


class TestOracle:
    """ISSUE acceptance: a seeded BrokenEagerScheme run produces at
    least one missed-detection violation; clean SCUE and eager runs
    produce zero."""

    ADDRS = [leaf * LEAF_BYTES for leaf in (0, 1, 2, 3, 0, 1)]

    def explore(self, config, factory=None):
        recording = record_writes(config, self.ADDRS, factory)
        model = CrashStateModel(recording)
        return explore_range(model, 0, len(model.units),
                             workload="unit-test")

    def test_clean_scue_has_no_violations(self):
        shard = self.explore(tiny_config())
        assert shard.violations == []
        assert shard.recovery_failures == 0
        assert shard.cuts > 0

    def test_clean_eager_window_is_not_a_violation(self):
        shard = self.explore(tiny_config(scheme="eager"))
        # Crashes inside the crash window legitimately fail recovery
        # (Fig 5b) — the oracle must not flag an expected failure as a
        # false abort, because eager never claims root consistency.
        assert shard.recovery_failures > 0
        assert shard.violations == []

    def test_broken_eager_misses_a_detection(self):
        config = tiny_config(scheme="eager")
        shard = self.explore(config,
                             factory=lambda: BrokenEagerScheme(config))
        missed = [v for v in shard.violations if v["missed_detection"]]
        assert missed, "parent-before-leaf inversion must be caught"
        assert all(not v["false_abort"] for v in shard.violations)
        assert any("durable" in v["detail"] for v in missed)

    def test_shard_result_round_trips(self):
        shard = self.explore(tiny_config())
        clone = ShardResult.from_dict(shard.to_dict())
        assert clone.to_dict() == shard.to_dict()
        assert clone.state_hashes == shard.state_hashes


class TestReporting:
    def broken_shard(self):
        config = tiny_config(scheme="eager")
        recording = record_writes(
            config, TestOracle.ADDRS,
            factory=lambda: BrokenEagerScheme(config))
        model = CrashStateModel(recording)
        return explore_range(model, 0, len(model.units),
                             workload="unit-test")

    def test_sarif_carries_rex001(self):
        result = single_row_result("eager", "unit-test",
                                   self.broken_shard())
        sarif = exploration_sarif(result)
        (run,) = sarif["runs"]
        rules = {r["id"] for r in
                 run["tool"]["driver"]["rules"]}
        assert REX_MISSED_DETECTION.id in rules
        results = run["results"]
        assert any(r["ruleId"] == REX_MISSED_DETECTION.id
                   for r in results)
        uri = results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri.startswith("explore://eager/")

    def test_text_matrix_flags_the_failure(self):
        result = single_row_result("eager", "unit-test",
                                   self.broken_shard())
        matrix = text_matrix(result)
        assert "eager" in matrix
        assert "FAIL" in matrix
        report = violations_report(result)
        assert all(v.rule.id.startswith("REX")
                   for v in report.violations)

    def test_clean_matrix_reports_ok(self):
        config = tiny_config()
        recording = record_writes(config, TestOracle.ADDRS)
        model = CrashStateModel(recording)
        shard = explore_range(model, 0, len(model.units),
                              workload="unit-test")
        matrix = text_matrix(
            single_row_result("scue", "unit-test", shard))
        assert "OK: no oracle violations" in matrix


class TestShardPlumbing:
    def test_group_round_trip(self):
        group = shard_group("scue+asit", 8, 16, 2)
        assert parse_group(group) == (8, 16, 2)
        assert group.startswith("scue+asit:")

    def test_group_without_lag(self):
        assert parse_group(shard_group("eager", 0, 8, None)) == \
            (0, 8, None)

    def test_labels_disambiguate_same_scheme_rows(self):
        # scue and scue+asit share config.scheme; the label prefix is
        # what keeps their campaign cell ids distinct.
        assert shard_group("scue", 0, 8, None) != \
            shard_group("scue+asit", 0, 8, None)
