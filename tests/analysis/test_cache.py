"""Incremental cache: warm runs hit per-file and project entries and
return the identical violations, edits invalidate precisely, the cache
note reports honestly, --update-baseline is byte-stable, and a warm
full-tree run stays under the 2 s budget."""

import time
from pathlib import Path

from repro.analysis import Linter
from repro.analysis.cache import AnalysisCache
from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

BAD = ('# reprolint-fixture-path: sim/a.py\n'
       'def f(x):\n'
       '    assert x\n')
CLEAN = ('# reprolint-fixture-path: sim/b.py\n'
         'def g(x):\n'
         '    return x\n')


def tree(tmp_path):
    root = tmp_path / "proj"
    root.mkdir()
    (root / "a.py").write_text(BAD)
    (root / "b.py").write_text(CLEAN)
    return root


def run(root, cache_path):
    linter = Linter(root, cache=AnalysisCache(cache_path))
    return linter.run(), linter.cache_stats


class TestWarmRuns:
    def test_cold_then_warm_hits_everything(self, tmp_path):
        root, cache = tree(tmp_path), tmp_path / "cache.json"
        cold, cold_stats = run(root, cache)
        assert cold_stats.files_hit == 0 and cold_stats.project_ran
        warm, warm_stats = run(root, cache)
        assert warm_stats.files_hit == warm_stats.files_total == 2
        assert warm_stats.project_hit and not warm_stats.project_ran

    def test_warm_violations_are_identical(self, tmp_path):
        root, cache = tree(tmp_path), tmp_path / "cache.json"
        cold, _ = run(root, cache)
        warm, _ = run(root, cache)
        assert [v.format() for v in warm] == \
            [v.format() for v in cold]
        assert [v.fingerprint for v in warm] == \
            [v.fingerprint for v in cold]

    def test_editing_one_file_invalidates_only_it(self, tmp_path):
        root, cache = tree(tmp_path), tmp_path / "cache.json"
        run(root, cache)
        (root / "b.py").write_text(CLEAN + "\n# touched\n")
        _, stats = run(root, cache)
        assert stats.files_hit == 1  # a.py still hits
        assert stats.project_ran     # tree digest changed

    def test_new_finding_in_the_edited_file_surfaces(self, tmp_path):
        root, cache = tree(tmp_path), tmp_path / "cache.json"
        before, _ = run(root, cache)
        (root / "b.py").write_text(BAD.replace("sim/a.py", "sim/b.py"))
        after, _ = run(root, cache)
        assert len(after) == len(before) + 1

    def test_select_bypasses_the_cache(self, tmp_path):
        root = tree(tmp_path)
        linter = Linter(root, select=["bare-assert"],
                        cache=AnalysisCache(tmp_path / "cache.json"))
        linter.run()
        assert linter.cache is None and linter.cache_stats is None


class TestCacheNote:
    def test_warm_note_reports_the_hit_rate(self, tmp_path):
        root, cache = tree(tmp_path), tmp_path / "cache.json"
        run(root, cache)
        _, stats = run(root, cache)
        note = stats.describe()
        assert "hit rate 100% (2/2 files)" in note
        assert "project phase reused" in note


class TestUpdateBaseline:
    def test_unchanged_tree_rewrites_byte_identically(self, tmp_path,
                                                      capsys):
        baseline = tmp_path / "baseline.txt"
        args = [str(FIXTURES / "bad_bare_assert.py"),
                "--update-baseline", "--baseline", str(baseline)]
        assert main(args) == 0
        first = baseline.read_bytes()
        assert main(args) == 0
        assert baseline.read_bytes() == first
        assert "(+0 added, -0 removed)" in capsys.readouterr().out

    def test_diff_counts_report_what_changed(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        main([str(FIXTURES / "bad_bare_assert.py"),
              "--update-baseline", "--baseline", str(baseline)])
        capsys.readouterr()
        assert main([str(FIXTURES / "bad_float_cycles.py"),
                     "--update-baseline", "--baseline",
                     str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "+1 added" in out and "-1 removed" in out


class TestJobs:
    def test_parallel_flat_phase_matches_serial(self, tmp_path):
        serial = Linter(FIXTURES).run()
        parallel = Linter(FIXTURES, jobs=2).run()
        assert [v.format() for v in parallel] == \
            [v.format() for v in serial]


class TestWarmBudget:
    def test_warm_full_tree_run_is_under_two_seconds(self, tmp_path):
        cache = tmp_path / "cache.json"
        Linter(REPO_SRC, cache=AnalysisCache(cache)).run()  # prime
        linter = Linter(REPO_SRC, cache=AnalysisCache(cache))
        start = time.monotonic()
        linter.run()
        elapsed = time.monotonic() - start
        stats = linter.cache_stats
        assert stats.files_hit == stats.files_total
        assert stats.project_hit
        assert elapsed < 2.0, f"warm run took {elapsed:.2f}s"
