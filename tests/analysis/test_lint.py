"""reprolint engine: every rule fires exactly once on its known-bad
fixture, stays quiet on the known-good twin, and honours suppressions
and the baseline."""

from pathlib import Path

import pytest

from repro.analysis import Baseline, Linter
from repro.analysis.rules import Violation, get_rule
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the one rule it must trip.
BAD = {
    "bad_nvm_store.py": "nvm-direct-store",
    "bad_unchecked_verify.py": "unchecked-verify",
    "bad_float_cycles.py": "float-cycle-arith",
    "bad_bare_assert.py": "bare-assert",
    "bad_stat_counter.py": "stat-counter-discipline",
    "bad_obs_unattributed.py": "obs-unattributed-cycles",
    "bad_protocol_order.py": "persist-protocol",
    "bad_verify_in_callee.py": "unchecked-verify",
    "bad_attribution_escape.py": "exception-unsafe-attribution",
    "bad_hot_path_alloc.py": "hot-path-allocation",
    "bad_epoch_kernel.py": "scalar-path-in-epoch-kernel",
    "bad_await_race.py": "await-atomicity",
    "bad_torn_write.py": "torn-file-write",
    "bad_blocking_async.py": "blocking-call-in-async",
}


def lint_file(path, select=None):
    return Linter(Path(path), select=select).run()


class TestKnownBadFixtures:
    @pytest.mark.parametrize("fixture,rule", sorted(BAD.items()))
    def test_rule_fires_exactly_once(self, fixture, rule):
        violations = lint_file(FIXTURES / fixture)
        assert [v.rule.name for v in violations] == [rule]

    @pytest.mark.parametrize("fixture,rule", sorted(BAD.items()))
    def test_fixture_path_header_pins_scoping(self, fixture, rule):
        (violation,) = lint_file(FIXTURES / fixture)
        # Path-scoped rules saw the pinned in-package path, not the
        # fixture's real location under tests/.
        assert violation.path.startswith(
            ("secure/", "sim/", "serve/", "campaign/"))
        assert "fixtures" not in violation.path


class TestKnownGoodFixture:
    def test_near_miss_twins_stay_clean(self):
        assert lint_file(FIXTURES / "good_clean.py") == []


class TestUnexploredPersistBoundary:
    """RPL010 flags persistence the crash explorer cannot observe.  The
    fixture fires twice (a shadow root register and a poke_line), so it
    cannot ride in the exactly-once BAD map above."""

    def test_fixture_fires_twice(self):
        violations = lint_file(FIXTURES / "unexplored_scheme.py")
        assert [v.rule.name for v in violations] == \
            ["unexplored-persist-boundary"] * 2
        register, poke = sorted(violations, key=lambda v: v.line)
        assert "shadow_root" in register.message
        assert "poke_line" in poke.message

    def test_select_isolates_the_rule(self):
        violations = lint_file(FIXTURES / "unexplored_scheme.py",
                               select=("RPL010",))
        assert len(violations) == 2

    def test_registered_seams_stay_clean(self, tmp_path):
        path = tmp_path / "clean_scheme.py"
        path.write_text(
            "# reprolint-fixture-path: secure/clean_scheme.py\n"
            "from repro.secure.roots import RootRegister\n\n\n"
            "class Ok:\n"
            "    def __init__(self):\n"
            "        self.running_root = RootRegister(\n"
            "            'running_root', 8, 56)\n"
            "        self.recovery_root = RootRegister(\n"
            "            'recovery_root', 8, 56)\n")
        assert lint_file(path, select=("RPL010",)) == []


class TestNondeterministicReport:
    """RPL011 keeps entropy out of repro.viz.  The fixture fires five
    times (global RNG, two argless Random constructors, two wall-clock
    reads), so it cannot ride in the exactly-once BAD map above."""

    def test_fixture_fires_five_times(self):
        violations = lint_file(
            FIXTURES / "bad_nondeterministic_report.py")
        assert [v.rule.name for v in violations] == \
            ["nondeterministic-report"] * 5
        messages = [v.message for v in
                    sorted(violations, key=lambda v: v.line)]
        assert "random.shuffle" in messages[0]
        assert "random.Random" in messages[1]
        assert "time.time" in messages[2]
        assert "datetime.datetime.now" in messages[3]
        assert "Random() with no seed" in messages[4]

    def test_fixture_path_pins_viz_scoping(self):
        violations = lint_file(
            FIXTURES / "bad_nondeterministic_report.py")
        assert all(v.path.startswith("viz/") for v in violations)

    def test_seeded_random_stays_clean(self, tmp_path):
        path = tmp_path / "clean_report.py"
        path.write_text(
            "# reprolint-fixture-path: viz/clean_report.py\n"
            "import random\n"
            "from random import Random\n\n\n"
            "def resample(values, seed):\n"
            "    rng = random.Random(seed)\n"
            "    alt = Random(seed=seed + 1)\n"
            "    return rng.choice(values), alt.choice(values)\n")
        assert lint_file(path, select=("RPL011",)) == []

    def test_rule_is_scoped_to_viz(self, tmp_path):
        path = tmp_path / "elsewhere.py"
        path.write_text(
            "# reprolint-fixture-path: serve/events.py\n"
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()\n")
        assert lint_file(path, select=("RPL011",)) == []

    def test_repro_viz_package_is_clean(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        violations = Linter(src, select=("RPL011",)).run()
        assert violations == []


class TestConcurrencyRules:
    """RPL012/013/014 exact locations on the seeded concurrency
    fixtures — the BAD map above already asserts exactly-once firing;
    these pin the rule to the precise line so a drift in the engine's
    reporting point (read vs write, open vs dump) fails loudly."""

    def test_await_race_flags_the_clobbering_write(self):
        (violation,) = lint_file(FIXTURES / "bad_await_race.py")
        assert violation.rule.id == "RPL012"
        assert violation.path == "serve/broken_scheduler.py"
        # The finding anchors on the write-back, naming the read and
        # the await it straddles.
        assert violation.line == 25
        assert violation.snippet.startswith("self.completed = count")
        assert "read at line 23" in violation.message
        assert "await at line 24" in violation.message

    def test_torn_write_flags_the_open(self):
        (violation,) = lint_file(FIXTURES / "bad_torn_write.py")
        assert violation.rule.id == "RPL013"
        assert violation.path == "campaign/torn_manifest.py"
        assert violation.line == 15
        assert "open(..., 'w')" in violation.message
        assert "os.replace" in violation.message

    def test_blocking_call_flags_the_sleep(self):
        (violation,) = lint_file(FIXTURES / "bad_blocking_async.py")
        assert violation.rule.id == "RPL014"
        assert violation.path == "serve/blocking.py"
        assert violation.line == 14
        assert "'time.sleep()'" in violation.message
        assert "lazy_poll" in violation.message
        assert "asyncio.to_thread" in violation.message


class TestSuppression:
    def test_disable_comment_silences_the_rule(self, tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(
            "def f(x):\n"
            "    assert x  # reprolint: disable=bare-assert\n")
        assert lint_file(path) == []

    def test_disable_all(self, tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(
            "def f(x):\n"
            "    assert x  # reprolint: disable=all\n")
        assert lint_file(path) == []

    def test_unrelated_disable_does_not_silence(self, tmp_path):
        path = tmp_path / "still_bad.py"
        path.write_text(
            "def f(x):\n"
            "    assert x  # reprolint: disable=unchecked-verify\n")
        (violation,) = lint_file(path)
        assert violation.rule.name == "bare-assert"


class TestSelect:
    def test_select_by_name(self):
        violations = lint_file(FIXTURES / "bad_bare_assert.py",
                               select=["bare-assert"])
        assert len(violations) == 1

    def test_select_by_id(self):
        violations = lint_file(FIXTURES / "bad_bare_assert.py",
                               select=["RPL004"])
        assert len(violations) == 1

    def test_select_other_rule_finds_nothing(self):
        assert lint_file(FIXTURES / "bad_bare_assert.py",
                         select=["unchecked-verify"]) == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError):
            lint_file(FIXTURES / "bad_bare_assert.py",
                      select=["no-such-rule"])


class TestBaseline:
    def test_round_trip_matches_everything(self, tmp_path):
        violations = lint_file(FIXTURES / "bad_bare_assert.py")
        path = tmp_path / "baseline.txt"
        Baseline.from_violations(violations).save(path)
        new, baselined, stale = Baseline.load(path).split(violations)
        assert new == []
        assert len(baselined) == 1
        assert stale == []

    def test_stale_entries_surface(self, tmp_path):
        old = lint_file(FIXTURES / "bad_bare_assert.py")
        path = tmp_path / "baseline.txt"
        Baseline.from_violations(old).save(path)
        current = lint_file(FIXTURES / "bad_stat_counter.py")
        new, baselined, stale = Baseline.load(path).split(current)
        assert len(new) == 1       # the unbaselined finding
        assert baselined == []
        assert len(stale) == 1     # the entry that matched nothing

    def test_fingerprint_survives_line_shifts(self):
        rule = get_rule("bare-assert")
        a = Violation(rule=rule, path="sim/x.py", line=5, column=5,
                      message="m", snippet="assert x")
        b = Violation(rule=rule, path="sim/x.py", line=50, column=5,
                      message="m", snippet="assert x")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_changes_with_the_line(self):
        rule = get_rule("bare-assert")
        a = Violation(rule=rule, path="sim/x.py", line=5, column=5,
                      message="m", snippet="assert x")
        b = Violation(rule=rule, path="sim/x.py", line=5, column=5,
                      message="m", snippet="assert y")
        assert a.fingerprint != b.fingerprint


class TestPackageTree:
    def test_package_has_no_unbaselined_violations(self):
        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        baseline = Baseline.load(
            Path(__file__).resolve().parents[2] / "analysis-baseline.txt")
        new, _, _ = baseline.split(Linter(repo_src).run())
        assert new == [], "\n".join(v.format() for v in new)
