"""Protocol-conformance engine (RPL007/RPL008) unit tests, below the
lint layer: specs are proven on all static paths, roles follow exact
call edges into helpers, and the attribution-escape checker tracks the
charge/emit window with a may analysis."""

import ast
import textwrap

from repro.analysis.callgraph import ProjectIndex
from repro.analysis.protocol import (
    check_attribution_escape,
    check_protocols,
    spec_for,
)


def index_of(source, relpath="secure/mod.py"):
    tree = ast.parse(textwrap.dedent(source))
    return ProjectIndex([(relpath, tree)])


def findings_for(source, relpath="secure/mod.py"):
    return check_protocols(index_of(source, relpath))


class TestSpecs:
    def test_every_paper_scheme_has_a_spec(self):
        for scheme in ("scue", "eager", "plp", "lazy", "bmt-eager"):
            assert spec_for(scheme) is not None

    def test_baseline_has_no_obligations(self):
        assert spec_for("baseline") is None


class TestScueShortcut:
    CONFORMING = """
    class Good:
        name = "scue"

        def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
            self.recovery_root.add(self._slot(leaf_index), delta)
            return self._persist_node(leaf, cycle)
    """

    def test_shortcut_before_leaf_is_clean(self):
        assert findings_for(self.CONFORMING) == []

    def test_inverted_order_is_flagged(self):
        findings = findings_for("""
        class Bad:
            name = "scue"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                stall = self._persist_node(leaf, cycle)
                self.recovery_root.add(self._slot(leaf_index), delta)
                return stall
        """)
        (f,) = findings
        assert "'leaf-persist'" in f.message
        assert "'recovery-root-update'" in f.message
        assert "IV-A2" in f.message

    def test_shortcut_on_one_branch_only_is_flagged(self):
        # The update happens on the happy path but a branch skips it:
        # must-analysis kills the fact at the join.
        findings = findings_for("""
        class Branchy:
            name = "scue"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                if delta:
                    self.recovery_root.add(self._slot(leaf_index), delta)
                return self._persist_node(leaf, cycle)
        """)
        assert len(findings) == 1

    def test_shortcut_in_a_helper_credits_the_anchor(self):
        assert findings_for("""
        class Routed:
            name = "scue"

            def _shortcut(self, slot, delta):
                self.recovery_root.add(slot, delta)

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                self._shortcut(self._slot(leaf_index), delta)
                return self._persist_node(leaf, cycle)
        """) == []


class TestEagerBottomUp:
    def test_leaf_before_parent_is_clean(self):
        assert findings_for("""
        class Good:
            name = "eager"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                parent, latency = self.fetch_node(1, leaf_index // 8)
                stall = self._persist_node(leaf, cycle)
                stall += self._persist_node(parent, cycle)
                return latency + stall
        """) == []

    def test_parent_before_leaf_is_flagged_at_the_parent_persist(self):
        source = """
        class Bad:
            name = "eager"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                parent, latency = self.fetch_node(1, leaf_index // 8)
                stall = self._persist_node(parent, cycle)
                stall += self._persist_node(leaf, cycle)
                return latency + stall
        """
        (f,) = findings_for(source)
        assert "'ancestor-persist'" in f.message
        assert "bottom-up" in f.message
        wanted = [lineno for lineno, line in
                  enumerate(textwrap.dedent(source).splitlines(), 1)
                  if "_persist_node(parent" in line]
        assert f.line == wanted[0]

    def test_parent_taint_follows_into_a_helper(self):
        # The inversion sits in a helper the anchor calls, with the
        # tainted parent passed as an argument: the role binding must
        # carry "parent" across the call edge.
        findings = findings_for("""
        class CrossCall:
            name = "eager"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                parent, latency = self.fetch_node(1, leaf_index // 8)
                return latency + self._flush(parent, leaf, cycle)

            def _flush(self, node, leaf, cycle):
                stall = self._persist_node(node, cycle)
                stall += self._persist_node(leaf, cycle)
                return stall
        """)
        (f,) = findings
        assert "'ancestor-persist'" in f.message

    def test_unrelated_scheme_names_are_not_checked(self):
        assert findings_for("""
        class Other:
            name = "experimental"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                parent, latency = self.fetch_node(1, leaf_index // 8)
                return self._persist_node(parent, cycle)
        """) == []

    def test_name_is_inherited_through_the_mro(self):
        findings = findings_for("""
        class Base:
            name = "eager"

            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                return self._persist_node(leaf, cycle)

        class Sub(Base):
            def _on_leaf_persist(self, leaf, leaf_index, delta, cycle):
                parent, latency = self.fetch_node(1, leaf_index // 8)
                return self._persist_node(parent, cycle)
        """)
        assert len(findings) == 1


ESCAPE = """
class Executor:
    def _decode(self, record):
        if record is None:
            raise ValueError("empty")
        return record

    def step(self, record):
        attr = self.attribution.cycles
        attr["cpu"] += 1
        decoded = self._decode(record)
        self.obs.instant("step", payload=decoded)
"""


class TestAttributionEscape:
    def check(self, source, relpath="sim/mod.py"):
        return check_attribution_escape(index_of(source, relpath))

    def test_raising_call_inside_the_window_is_flagged(self):
        (f,) = self.check(ESCAPE)
        assert "charged but never observed" in f.message
        wanted = [lineno for lineno, line in
                  enumerate(textwrap.dedent(ESCAPE).splitlines(), 1)
                  if "self._decode(record)" in line]
        assert f.line == wanted[0]

    def test_outside_sim_paths_nothing_fires(self):
        assert self.check(ESCAPE, relpath="secure/mod.py") == []

    def test_protective_try_closes_the_window(self):
        assert self.check("""
        class Executor:
            def _decode(self, record):
                if record is None:
                    raise ValueError("empty")
                return record

            def step(self, record):
                attr = self.attribution.cycles
                attr["cpu"] += 1
                try:
                    decoded = self._decode(record)
                except ValueError:
                    decoded = None
                self.obs.instant("step", payload=decoded)
        """) == []

    def test_charge_after_the_risky_call_is_fine(self):
        assert self.check("""
        class Executor:
            def _decode(self, record):
                if record is None:
                    raise ValueError("empty")
                return record

            def step(self, record):
                decoded = self._decode(record)
                attr = self.attribution.cycles
                attr["cpu"] += 1
                self.obs.instant("step", payload=decoded)
        """) == []

    def test_an_emit_between_charge_and_raise_kills_the_fact(self):
        assert self.check("""
        class Executor:
            def _decode(self, record):
                if record is None:
                    raise ValueError("empty")
                return record

            def step(self, record):
                attr = self.attribution.cycles
                attr["cpu"] += 1
                self.obs.instant("charged")
                decoded = self._decode(record)
                self.obs.instant("step", payload=decoded)
        """) == []

    def test_explicit_charge_call_also_opens_the_window(self):
        (f,) = self.check("""
        class Executor:
            def _decode(self, record):
                if record is None:
                    raise ValueError("empty")
                return record

            def step(self, record):
                self.attribution.charge("cpu", 1)
                decoded = self._decode(record)
                self.obs.instant("step", payload=decoded)
        """)
        assert "may raise here" in f.message
