"""Service acceptance: real server process, real cells, real kills.

Three flows, all through subprocesses and the public CLI/client:

* cold grid → every cell computes → warm resubmit → zero recomputes,
  and every served result is byte-identical to what
  ``repro-sim campaign run`` produces for the same grid;
* the NDJSON event stream a submission writes validates against the
  published schema;
* SIGKILL the server mid-grid, restart it over the same store → the
  resumed submission computes only the cells the dead server never
  durably finished.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.serve import api
from repro.serve.client import ClientError, ServeClient, discover_url

REPO_ROOT = Path(__file__).resolve().parents[2]
GRID = ["--grid", "matrix", "--scale", "quick",
        "--workloads", "array,btree", "--schemes", "scue,baseline"]


def _cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})


def _wait_for_server(root: Path, proc, timeout=30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited rc={proc.returncode}: "
                f"{proc.stderr.read() if proc.stderr else ''}")
        try:
            url = discover_url(root)
            ServeClient(url, timeout=5).health()
            return url
        except ClientError:
            time.sleep(0.1)
    raise AssertionError("server never became healthy")


def _stop(proc) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(15)


@pytest.fixture
def server(tmp_path):
    root = tmp_path / "serve"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--dir", str(root),
         "--port", "0", "-j", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    try:
        yield root, _wait_for_server(root, proc)
    finally:
        _stop(proc)


class TestColdWarmIdentity:
    def test_grid_roundtrip_and_batch_identity(self, server, tmp_path):
        root, url = server
        events_file = tmp_path / "events.ndjson"

        cold = _cli("submit", "--dir", str(root), *GRID,
                    "--events", str(events_file))
        assert cold.returncode == 0, cold.stderr
        assert "cache hits: 0/4" in cold.stdout
        assert "computed  : 4" in cold.stdout

        # Warm resubmit: zero recomputed, all four served from store.
        warm = _cli("submit", "--dir", str(root), *GRID)
        assert warm.returncode == 0, warm.stderr
        assert "cache hits: 4/4" in warm.stdout
        assert "computed  : 0" in warm.stdout

        # Every streamed event matches the published NDJSON schema.
        events = [json.loads(line)
                  for line in events_file.read_text().splitlines()]
        assert events, "submission streamed no events"
        for event in events:
            api.validate_event(event)
        assert events[0]["event"] == api.EV_JOB_ACCEPTED
        assert events[-1]["event"] == api.EV_JOB_FINISHED
        assert events[-1]["state"] == api.JOB_DONE

        # The batch CLI over the same grid produces byte-identical
        # result payloads (the server is a cache for `campaign run`,
        # not a different simulator).
        batch_dir = tmp_path / "batch"
        batch = _cli("campaign", "run", *GRID, "--dir", str(batch_dir))
        assert batch.returncode == 0, batch.stderr

        client = ServeClient(url)
        job_id = events[0]["job"]
        served = client.results(job_id)
        assert len(served["cells"]) == 4
        for cell in served["cells"]:
            entry = json.loads(
                (batch_dir / "cache" / "objects" / cell["key"][:2]
                 / f"{cell['key']}.json").read_text())
            assert entry["key"] == cell["key"]
            canon = lambda p: json.dumps(p, sort_keys=True,  # noqa: E731
                                         separators=(",", ":"))
            assert canon(cell["result"]) == canon(entry["result"])

    def test_status_json_of_shared_store(self, server, tmp_path):
        """`campaign status --json` reads the dir a server ran in."""
        root, url = server
        submit = _cli("submit", "--dir", str(root), *GRID)
        assert submit.returncode == 0, submit.stderr
        batch = _cli("campaign", "run", *GRID, "--dir", str(root))
        assert batch.returncode == 0, batch.stderr
        assert "cache hits: 4/4" in batch.stdout
        status = _cli("campaign", "status", str(root), "--json")
        assert status.returncode == 0, status.stderr
        payload = json.loads(status.stdout)
        assert payload["complete"] is True
        assert payload["counts"]["cached"] == 4


def _fake_server_script(root: Path, cell_fn: str) -> str:
    return textwrap.dedent(f"""
        import asyncio, sys
        sys.path[:0] = [{str(REPO_ROOT / 'src')!r}, {str(REPO_ROOT)!r}]
        from repro.serve.app import ServeConfig, run_server
        from tests.campaign._fakes import {cell_fn}
        config = ServeConfig(root={str(root)!r}, port=0, slots=2,
                             backoff=0.01)
        asyncio.run(run_server(config, cell_fn={cell_fn}))
    """)


class TestKillRestartResume:
    def test_sigkill_mid_grid_then_resume(self, tmp_path, monkeypatch):
        """The root-crash-consistency property, lifted to the service:
        kill -9 at an arbitrary instant loses only in-flight cells."""
        markers = tmp_path / "markers"
        markers.mkdir()
        monkeypatch.setenv("REPRO_TEST_DIR", str(markers))
        root = tmp_path / "serve"
        env = {**os.environ, "REPRO_TEST_DIR": str(markers)}

        # Generation 1: cell k0 finishes instantly, k1/k2 hang for 30s.
        proc = subprocess.Popen(
            [sys.executable, "-c",
             _fake_server_script(root, "slow_after_first")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            url = _wait_for_server(root, proc)
            from tests.campaign._fakes import fake_spec
            spec = fake_spec(3, group_prefix="k")
            client = ServeClient(url)
            client.submit(spec.to_dict())

            objects = root / "cache" / "objects"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if list(objects.glob("*/*.json")):
                    break               # k0 is durable; k1/k2 in flight
                time.sleep(0.05)
            else:
                pytest.fail("first cell never reached the store")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            _stop(proc)
        assert len(list(objects.glob("*/*.json"))) == 1

        # Generation 2: same store, counting executions this time.
        proc = subprocess.Popen(
            [sys.executable, "-c",
             _fake_server_script(root, "tracking_cell")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            url = _wait_for_server(root, proc)
            client = ServeClient(url)
            from tests.campaign._fakes import fake_spec, invocations
            spec = fake_spec(3, group_prefix="k")
            job = client.submit(spec.to_dict())
            done = client.wait(job["job_id"], timeout=120)
            assert done["state"] == api.JOB_DONE
            assert done["counts"]["cached"] == 1    # k0 survived
            assert done["counts"]["done"] == 2      # k1, k2 recomputed
            # Only the missing cells ran, exactly once each.
            assert [invocations(cell) for cell in spec.cells] == \
                [0, 1, 1]
        finally:
            _stop(proc)
