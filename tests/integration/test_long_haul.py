"""Long-haul soak tests: sustained mixed operation with periodic crashes
and recoveries, checking that nothing drifts — statistics stay sane,
invariants hold after every recovery, and functional data survives many
crash generations."""

import random

import pytest

from repro.mem.trace import AccessType, MemoryAccess
from repro.sim.system import System
from repro.util.bitfield import checked_sum

from tests.conftest import small_config


class TestCrashGenerations:
    def test_five_crash_recover_generations(self):
        """Write → crash → recover, five times, with reads verifying
        prior generations' data each round."""
        system = System(small_config("scue", check_data=True))
        expected: dict[int, bytes] = {}
        rng = random.Random(31)
        for generation in range(5):
            trace = []
            for _ in range(40):
                line = rng.randrange(0, 256) * 64
                data = bytes([generation * 40 + len(trace)]) * 64
                expected[line] = data
                trace.append(MemoryAccess(AccessType.PERSIST, line,
                                          data=data))
            system.run(trace)
            system.crash()
            report = system.recover()
            assert report.success, f"generation {generation}"
            # Spot-check a handful of lines from all generations so far.
            for line in rng.sample(sorted(expected), 10):
                got = system.controller.read_data(line, system.cycle + 1000)
                assert got.plaintext == expected[line]

    def test_recovery_root_never_drifts(self):
        """Across generations, the register always equals the leaf-sum —
        modular drift would accumulate silently otherwise."""
        system = System(small_config("scue"))
        rng = random.Random(33)
        for generation in range(4):
            for i in range(50):
                system.controller.write_data(
                    rng.randrange(0, system.config.data_capacity, 64),
                    None, cycle=system.cycle + i * 100)
            system.crash()
            assert system.recover().success
            amap = system.controller.amap
            total = checked_sum(
                [system.controller.store.load(0, i, counted=False)
                 .dummy_counter(amap.counter_bits)
                 for i in range(amap.num_counter_blocks)],
                amap.counter_bits)
            assert checked_sum(
                system.controller.recovery_root.counters,
                amap.counter_bits) == total


class TestStatisticsSanity:
    def test_counts_are_internally_consistent(self):
        system = System(small_config())
        rng = random.Random(35)
        trace = [MemoryAccess(
            rng.choice([AccessType.READ, AccessType.WRITE,
                        AccessType.PERSIST]),
            rng.randrange(0, system.config.data_capacity, 64),
            gap=rng.randrange(3))
            for _ in range(500)]
        system.run(trace)
        result = system.result("soak")
        assert result.loads + result.stores + result.persists == 500
        assert result.instructions >= 500
        assert result.cycles >= result.instructions
        assert result.nvm_data_writes >= result.persists
        assert result.avg_write_latency > 0
        # Stall accounting never exceeds total cycles.
        assert result.load_stall_cycles + result.persist_stall_cycles \
            <= result.cycles

    @pytest.mark.parametrize("scheme", ["baseline", "scue", "plp"])
    def test_hash_counts_scale_with_writes(self, scheme):
        system = System(small_config(scheme))
        system.run([MemoryAccess(AccessType.PERSIST, i * 64)
                    for i in range(100)])
        hashes = system.result().hashes
        if scheme == "baseline":
            # Baseline computes data MACs only (one per persist).
            assert hashes <= 100 * 2
        elif scheme == "plp":
            # Whole-branch sealing: several hashes per persist.
            assert hashes > 100 * 3
