"""Stateful model checking of the SCUE controller.

A hypothesis rule machine drives an arbitrary interleaving of writes,
reads, crashes, recoveries, and replay attacks against a SCUE system
while maintaining a plain-Python model of what *must* be true:

* reads return the last written payload (or zeros),
* a clean crash always recovers,
* a crash after a replay of genuinely stale state is always detected,
* the Recovery_root always equals the model's per-subtree write sums.

Any sequencing bug in the cache/flush/recovery machinery shows up as a
minimal failing operation sequence.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.crash.attacks import replay_leaf, snapshot_leaf
from repro.secure.scue import SCUEController
from repro.util.bitfield import checked_sum

from tests.conftest import small_config

CAPACITY = 256 * 1024          # 64 counter blocks: small, fast, 2 levels
LINES = CAPACITY // 64


class SCUEMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.controller: SCUEController | None = None
        self.model: dict[int, bytes] = {}
        self.write_counts: dict[int, int] = {}
        self.cycle = 0
        self.pending_replay: tuple | None = None

    # ------------------------------------------------------------------
    @initialize()
    def build(self) -> None:
        self.controller = SCUEController(small_config(
            "scue", data_capacity=CAPACITY, metadata_cache_size=2048))

    def _tick(self) -> int:
        self.cycle += 500
        return self.cycle

    # ------------------------------------------------------------------
    @rule(line=st.integers(0, LINES - 1), fill=st.integers(0, 255))
    def write(self, line: int, fill: int) -> None:
        addr = line * 64
        payload = bytes([fill]) * 64
        self.controller.write_data(addr, payload, self._tick())
        self.model[addr] = payload
        self.write_counts[addr] = self.write_counts.get(addr, 0) + 1

    @rule(line=st.integers(0, LINES - 1))
    def read(self, line: int) -> None:
        addr = line * 64
        outcome = self.controller.read_data(addr, self._tick())
        expected = self.model.get(addr, bytes(64))
        assert outcome.plaintext == expected

    @rule()
    def clean_crash_and_recover(self) -> None:
        self.controller.crash()
        report = self.controller.recover()
        assert report.success, report.detail
        # Runtime continues cleanly after recovery.
        self.controller.read_data(0, self._tick())

    @rule(line=st.integers(0, LINES - 1))
    def snapshot_for_replay(self, line: int) -> None:
        """Record attack loot: a leaf image plus the covered line's
        current write count (to know later whether it went stale)."""
        leaf_index = line * 64 // (64 * 64)
        snap = snapshot_leaf(self.controller.store, leaf_index)
        covered = [addr for addr in self.write_counts
                   if addr // (64 * 64) == leaf_index]
        total = sum(self.write_counts[a] for a in covered)
        self.pending_replay = (snap, leaf_index, total)

    @precondition(lambda self: self.pending_replay is not None)
    @rule()
    def replay_attack(self) -> None:
        snap, leaf_index, writes_at_snapshot = self.pending_replay
        self.pending_replay = None
        covered = [addr for addr in self.write_counts
                   if addr // (64 * 64) == leaf_index]
        writes_now = sum(self.write_counts[a] for a in covered)
        self.controller.crash()
        replay_leaf(self.controller.store, snap)
        report = self.controller.recover()
        if writes_now == writes_at_snapshot:
            # Replaying the current state is a no-op: must NOT misreport.
            assert report.success, report.detail
        else:
            # Genuinely stale: the Recovery_root must catch it — and the
            # compromised machine stays unusable (runtime verification
            # keeps rejecting the tampered leaf), so re-provision.
            assert not report.success
            assert not report.root_matched
            self.build()
            self.model.clear()
            self.write_counts.clear()

    # ------------------------------------------------------------------
    @invariant()
    def recovery_root_matches_model(self) -> None:
        if self.controller is None:
            return
        total = checked_sum(self.write_counts.values(), 56)
        assert checked_sum(self.controller.recovery_root.counters, 56) \
            == total


TestSCUEMachine = SCUEMachine.TestCase
TestSCUEMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
