"""Wear tracking through the full system: the endurance ablation's core
claim at test scale."""

from repro.mem.trace import AccessType, MemoryAccess
from repro.sim.system import System

from tests.conftest import small_config


def run_tracked(scheme: str) -> System:
    system = System(small_config(scheme, track_wear=True,
                                 metadata_cache_size=1024))
    trace = [MemoryAccess(AccessType.PERSIST, (i * 37 % 512) * 64)
             for i in range(200)]
    system.run(trace)
    return system


class TestWearIntegration:
    def test_metadata_hotspot_ordering(self):
        """PLP's per-persist branch writes concentrate on shared upper
        nodes; SCUE's eviction-driven writes do not."""
        reports = {}
        for scheme in ("plp", "scue"):
            system = run_tracked(scheme)
            amap = system.controller.amap
            reports[scheme] = system.controller.nvm.wear.report(
                lo=amap.counter_base, region=scheme)
        assert reports["plp"].max_writes > 3 * reports["scue"].max_writes

    def test_plp_hottest_line_is_high_in_the_tree(self):
        system = run_tracked("plp")
        amap = system.controller.amap
        report = system.controller.nvm.wear.report(lo=amap.tree_base,
                                                   region="tree")
        level, _ = amap.tree_node_coords(report.hottest_line)
        assert level >= amap.tree_levels - 2, \
            "the branch top absorbs every persist"

    def test_wear_disabled_costs_nothing(self):
        system = System(small_config("scue", track_wear=False))
        system.run([MemoryAccess(AccessType.PERSIST, 0)])
        assert system.controller.nvm.wear is None

    def test_data_region_wear_matches_write_counts(self):
        system = run_tracked("baseline")
        wear = system.controller.nvm.wear
        data_report = wear.report(hi=system.config.data_capacity,
                                  region="data")
        assert data_report.total_writes \
            == system.controller.stats.counter("data_writes").value
