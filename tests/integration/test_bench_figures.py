"""The experiment drivers behind the paper's figures, run at a reduced
scale: these assert the *shape* of each result (who wins, directions),
leaving absolute numbers to the benchmarks."""

import pytest

from repro.bench import (
    BenchScale,
    fig5_crash_window,
    fig9_write_latency,
    fig10_execution_time,
    fig13_recovery_time,
    geomean,
    sec5e_memory_accesses,
    sec5f_space_overheads,
    table1_attack_detection,
)

WORKLOADS = ("array", "hash", "mcf")  # a fast, representative subset


@pytest.fixture(scope="module")
def matrix():
    fig = fig9_write_latency(BenchScale.quick(), workloads=WORKLOADS)
    return fig


class TestFig9Shape:
    def test_plp_is_most_expensive(self, matrix):
        avg = matrix.measured_average
        assert avg["plp"] > avg["lazy"]
        assert avg["plp"] > avg["scue"]
        assert avg["plp"] > 1.5

    def test_scue_cheaper_than_lazy(self, matrix):
        avg = matrix.measured_average
        assert avg["scue"] <= avg["lazy"] + 1e-9

    def test_all_secure_schemes_cost_something(self, matrix):
        for workload, row in matrix.table.items():
            if workload == "geomean":
                continue
            for scheme, ratio in row.items():
                if ratio:  # SPEC rows can be 0 at quick scale
                    assert ratio >= 0.9


class TestFig10Shape:
    def test_execution_order(self, matrix):
        fig = fig10_execution_time(matrix=matrix.matrix)
        avg = fig.measured_average
        assert avg["plp"] > avg["lazy"] >= avg["scue"] * 0.95
        assert avg["scue"] >= avg["bmf-ideal"] * 0.95
        assert 1.0 <= avg["scue"] < 2.0


class TestSec5EShape:
    def test_plp_metadata_traffic_dominates(self, matrix):
        acc = sec5e_memory_accesses(matrix=matrix.matrix)
        avg = acc.measured_average
        assert avg["plp"] > 2.0          # several x Lazy
        assert avg["bmf-ideal"] < 1.0    # below Lazy
        assert avg["scue"] == pytest.approx(1.0, rel=0.35)


class TestFig5:
    def test_crash_window_truth_table(self):
        result = fig5_crash_window(trials=4, operations=200)
        assert result.success_rate["scue"] == 1.0
        assert result.success_rate["plp"] == 1.0
        assert result.success_rate["bmf-ideal"] == 1.0
        assert result.success_rate["lazy"] == 0.0
        assert result.success_rate["eager"] == 0.0  # aligned-to-persist


class TestTable1:
    def test_attack_matrix(self):
        result = table1_attack_detection(data_capacity=2 * 1024 * 1024,
                                         operations=120)
        assert result.all_detected()
        assert result.control_clean()
        assert result.outcomes["roll_forward"]["by"] == "leaf_hmac"
        assert result.outcomes["replay_roll_back"]["by"] == "root"
        assert result.outcomes["forward_plus_back"]["by"] == "leaf_hmac"


class TestFig13:
    def test_recovery_scales_linearly_and_star_wins(self):
        sizes = (128 * 1024, 256 * 1024)
        fig = fig13_recovery_time(cache_sizes=sizes)
        for tracker in ("star", "agit"):
            small, large = (fig.table[tracker][s] for s in sizes)
            assert large > small * 1.5  # roughly linear growth
        for size in sizes:
            assert fig.table["agit"][size] > fig.table["star"][size]


class TestSec5F:
    def test_overhead_table(self):
        rows = {row.scheme: row for row in sec5f_space_overheads()}
        assert rows["scue"].measured_bytes == 128
        assert rows["baseline"].measured_bytes == 0
        assert rows["bmf-ideal"].measured_bytes > 10 * 1024 * 1024
        assert rows["plp"].measured_bytes < 1024


def test_geomean_helper():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([0.0, 2.0]) == 2.0  # zeros skipped
