"""End-to-end integration: every scheme runs every workload class with
functional data checking on, and the crash/recovery truth table of the
paper holds across the board."""

import pytest

from repro.crash.injection import CrashPlan, run_with_crash
from repro.secure import SCHEMES
from repro.sim.system import System
from repro.workloads import PERSISTENT_WORKLOADS, make_workload

from tests.conftest import persist_trace, random_trace, small_config

ALL = sorted(SCHEMES)
CONSISTENT = ("scue", "plp", "bmf-ideal")
INCONSISTENT = ("lazy", "eager")


@pytest.mark.parametrize("scheme", ALL)
@pytest.mark.parametrize("workload", PERSISTENT_WORKLOADS)
def test_every_scheme_runs_every_persistent_workload(scheme, workload):
    config = small_config(scheme)
    system = System(config)
    trace = make_workload(workload, config.data_capacity, 40,
                          seed=5).trace()
    system.run(trace)
    result = system.result(workload)
    assert result.persists > 0
    assert result.cycles > 0


@pytest.mark.parametrize("scheme", ALL)
def test_functional_correctness_under_mixed_traffic(scheme):
    """check_data=True: every read is compared against the plaintext
    shadow — any encryption/counter/MAC slip would throw."""
    system = System(small_config(scheme, check_data=True))
    system.run(random_trace(400, seed=3))


@pytest.mark.parametrize("scheme", CONSISTENT)
def test_crash_recover_continue_crash_recover(scheme):
    """Two full crash/recovery cycles with work in between."""
    system = System(small_config(scheme))
    run_with_crash(system, persist_trace(60, seed=1), CrashPlan(30))
    assert system.recover().success
    run_with_crash(system, persist_trace(60, seed=2), CrashPlan(30))
    assert system.recover().success


@pytest.mark.parametrize("scheme", INCONSISTENT)
def test_root_inconsistent_schemes_fail_after_crash(scheme):
    system = System(small_config(scheme))
    run_with_crash(system, persist_trace(60, seed=1), CrashPlan(30))
    report = system.recover()
    assert not report.success
    assert report.attack_reported  # §III-B's false positive


@pytest.mark.parametrize("scheme", CONSISTENT)
def test_data_survives_crash_and_recovery(scheme):
    """Persisted payloads must decrypt identically after recovery."""
    config = small_config(scheme, check_data=True)
    system = System(config)
    from repro.mem.trace import AccessType, MemoryAccess
    payloads = {i * 64: bytes([i]) * 64 for i in range(1, 30)}
    system.run([MemoryAccess(AccessType.PERSIST, addr, data=data)
                for addr, data in payloads.items()])
    system.crash()
    assert system.recover().success
    for addr, data in payloads.items():
        outcome = system.controller.read_data(addr, cycle=10**8)
        assert outcome.plaintext == data


def test_eadr_does_not_rescue_eager():
    """§III-C in one test: even flushing every cache at crash time, the
    eager root misses its in-flight updates."""
    system = System(small_config("eager", eadr=True))
    run_with_crash(system, persist_trace(40), CrashPlan(20))
    assert not system.recover().success


def test_schemes_agree_on_persisted_plaintext():
    """All schemes run the same trace; the logical data contents (via
    read-back) must agree regardless of scheme."""
    from repro.mem.trace import AccessType, MemoryAccess
    trace = [MemoryAccess(AccessType.PERSIST, i * 64, data=bytes([i]) * 64)
             for i in range(1, 20)]
    readings = {}
    for scheme in ALL:
        system = System(small_config(scheme))
        system.run(trace)
        readings[scheme] = [
            system.controller.read_data(i * 64, cycle=10**8).plaintext
            for i in range(1, 20)]
    reference = readings[ALL[0]]
    for scheme, got in readings.items():
        assert got == reference, scheme


@pytest.mark.parametrize("scheme", CONSISTENT)
def test_ciphertexts_differ_across_schemes_but_not_plaintext(scheme):
    """Sanity that encryption is actually per-counter (scheme-dependent
    counter schedules may differ) while decryption agrees."""
    from repro.mem.trace import AccessType, MemoryAccess
    system = System(small_config(scheme))
    system.run([MemoryAccess(AccessType.PERSIST, 64, data=b"\x01" * 64)])
    assert system.controller.nvm.peek_line(64) != b"\x01" * 64
