"""Cross-scheme equivalence properties.

The update schemes differ in *when* and *how* metadata becomes durable —
never in what the user's data is.  These properties pin that separation:
identical traces must produce identical logical data (and, because CME
counters advance identically, even identical ciphertext) across every
scheme, and all crash-consistent schemes must agree after crash+recovery.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.trace import AccessType, MemoryAccess
from repro.secure import SCHEMES, make_controller
from repro.sim.system import System

from tests.conftest import small_config

ALL = sorted(SCHEMES)
CONSISTENT = ("scue", "plp", "bmf-ideal", "bmt-eager")


def payload_trace(lines, version=0):
    return [MemoryAccess(AccessType.PERSIST, line * 64,
                         data=bytes([(line + version) % 256]) * 64)
            for line in lines]


class TestCiphertextEquivalence:
    def test_data_region_identical_across_schemes(self):
        """Counters advance identically per data write regardless of
        scheme, so even the on-media ciphertext must agree line for
        line."""
        lines = [1, 5, 1, 9, 5, 1]
        images = {}
        for scheme in ALL:
            controller = make_controller(small_config(scheme))
            for access in payload_trace(lines):
                controller.write_data(access.addr, access.data, cycle=0)
            images[scheme] = [controller.nvm.peek_line(line * 64)
                              for line in set(lines)]
        reference = images[ALL[0]]
        for scheme, image in images.items():
            assert image == reference, scheme

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=25))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_over_random_traces(self, lines):
        images = {}
        for scheme in ("baseline", "lazy", "scue"):
            controller = make_controller(small_config(scheme))
            for i, access in enumerate(payload_trace(lines)):
                controller.write_data(access.addr, access.data,
                                      cycle=i * 100)
            images[scheme] = controller.nvm.peek_line(lines[0] * 64)
        assert images["baseline"] == images["lazy"] == images["scue"]


class TestCrashRecoveryEquivalence:
    @pytest.mark.parametrize("scheme", CONSISTENT)
    def test_recovered_data_matches_pre_crash(self, scheme):
        system = System(small_config(scheme, check_data=True))
        lines = [2, 7, 2, 11, 7]
        system.run(payload_trace(lines, version=3))
        expected = {line: bytes([(line + 3) % 256]) * 64
                    for line in set(lines)}
        system.crash()
        assert system.recover().success
        for line, data in expected.items():
            assert system.controller.read_data(
                line * 64, cycle=10**8).plaintext == data

    def test_consistent_schemes_agree_after_recovery(self):
        readings = {}
        for scheme in CONSISTENT:
            system = System(small_config(scheme))
            system.run(payload_trace([1, 2, 3, 1, 2], version=9))
            system.crash()
            assert system.recover().success, scheme
            readings[scheme] = [
                system.controller.read_data(line * 64,
                                            cycle=10**8).plaintext
                for line in (1, 2, 3)]
        reference = readings[CONSISTENT[0]]
        for scheme, got in readings.items():
            assert got == reference, scheme


class TestSecurityEnvelope:
    def test_only_consistent_schemes_recover(self):
        """The complete crash truth table, derived from each scheme's
        declared capability flag — the flag must match behaviour."""
        for scheme in ALL:
            system = System(small_config(scheme))
            system.run(payload_trace([1, 2, 3, 4, 5]))
            system.crash()
            report = system.recover()
            expected = SCHEMES[scheme].crash_consistent_root \
                or scheme == "baseline"
            assert report.success is expected, scheme
