"""The shipped examples must stay runnable — each is executed as a real
subprocess (the slowest two are exercised by their underlying APIs
elsewhere and skipped here for suite latency)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = ("quickstart.py", "attack_lab.py", "crash_window_demo.py")


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"


def test_quickstart_tells_the_story():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    out = result.stdout
    assert "recovery          : SUCCESS" in out
    assert "replay attack     : DETECTED" in out


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "compare_schemes.py", "attack_lab.py",
            "crash_window_demo.py", "multiprogram.py",
            "recovery_modes.py"} <= present
