"""Counter-summing reconstruction (§IV-B, Fig 8): the recovery core."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import attach_sanitizer
from repro.crash.recovery import (
    METADATA_FETCH_NS,
    counter_summing_reconstruction,
)
from repro.secure.scue import SCUEController
from repro.tree.node import SITNode

from tests.conftest import small_config


def written_controller(n=60, seed=3, **overrides) -> SCUEController:
    controller = SCUEController(small_config("scue", **overrides))
    # Runtime persist-ordering sanitizer: any SCUE ordering regression
    # in these histories fails loudly here, not as a wrong Fig 8.
    attach_sanitizer(controller)
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    controller.crash()
    return controller


def reconstruct(controller, write_back=True):
    return counter_summing_reconstruction(
        controller.store, controller.amap, controller.mac,
        controller.recovery_root, write_back=write_back)


class TestReconstruction:
    def test_clean_state_reconstructs(self):
        controller = written_controller()
        result = reconstruct(controller)
        assert result.clean
        assert result.root_matched
        assert not result.leaf_hmac_failures

    def test_reads_whole_leaf_level(self):
        controller = written_controller()
        result = reconstruct(controller)
        assert result.metadata_reads == controller.amap.num_counter_blocks

    def test_recovery_seconds_model(self):
        controller = written_controller()
        result = reconstruct(controller)
        assert result.recovery_seconds == pytest.approx(
            result.metadata_reads * METADATA_FETCH_NS * 1e-9)

    def test_rebuilds_every_intermediate_level(self):
        controller = written_controller()
        result = reconstruct(controller)
        assert result.rebuilt_levels == controller.amap.tree_levels - 1

    def test_written_back_nodes_are_self_consistent(self):
        """After write-back, every rebuilt node must verify under the
        SCUE convention (parent counter == own dummy)."""
        controller = written_controller()
        reconstruct(controller)
        amap, store, mac = controller.amap, controller.store, controller.mac
        for level in range(1, amap.tree_levels):
            for index in range(amap.level_width(level)):
                node = store.load(level, index, counted=False)
                addr = store.node_addr(level, index)
                assert node.verify(mac, addr, node.dummy_counter())

    def test_rebuilt_parent_counters_are_child_sums(self):
        controller = written_controller()
        reconstruct(controller)
        amap, store = controller.amap, controller.store
        for level in range(1, amap.tree_levels):
            for index in range(amap.level_width(level)):
                node = store.load(level, index, counted=False)
                assert isinstance(node, SITNode)
                for child_level, child_index in \
                        amap.child_coords(level, index):
                    child = store.load(child_level, child_index,
                                       counted=False)
                    slot = amap.parent_slot(child_index)
                    assert node.counter(slot) == child.dummy_counter()

    def test_dry_run_does_not_touch_media(self):
        controller = written_controller()
        images = {
            controller.amap.tree_node_addr(1, i):
            controller.nvm.peek_line(controller.amap.tree_node_addr(1, i))
            for i in range(controller.amap.level_width(1))}
        result = reconstruct(controller, write_back=False)
        assert result.clean
        assert result.metadata_writes == 0
        for addr, image in images.items():
            assert controller.nvm.peek_line(addr) == image

    def test_root_mismatch_reported(self):
        controller = written_controller()
        controller.recovery_root.add(0, 1)  # poison the register
        result = reconstruct(controller)
        assert not result.root_matched
        assert not result.clean
        assert result.metadata_writes == 0  # no write-back on failure

    @given(st.lists(st.integers(0, 500), min_size=0, max_size=40))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_over_arbitrary_histories(self, lines):
        controller = SCUEController(small_config("scue"))
        attach_sanitizer(controller)
        for i, line in enumerate(lines):
            controller.write_data(line * 64, None, cycle=i * 100)
        controller.crash()
        assert reconstruct(controller).clean


class TestTallTrees:
    def test_nine_level_geometry(self):
        controller = written_controller(tree_levels=9)
        result = reconstruct(controller)
        assert result.clean
        assert result.rebuilt_levels == 8
