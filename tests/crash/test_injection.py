"""Crash planning and the run-until-crash helper."""

import pytest

from repro.analysis import attach_sanitizer
from repro.crash.injection import CrashPlan, run_with_crash, split_at_crash
from repro.errors import ConfigError
from repro.mem.trace import AccessType, MemoryAccess
from repro.sim.system import System

from tests.conftest import persist_trace, random_trace, small_config


class TestCrashPlan:
    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            CrashPlan(after_accesses=-1)


class TestSplitAtCrash:
    def test_plain_split(self):
        trace = random_trace(20)
        executed, rest = split_at_crash(
            trace, CrashPlan(5, align_to_persist=False))
        assert len(executed) == 5
        assert executed + list(rest) == trace

    def test_align_to_persist_extends_to_next_persist(self):
        trace = [MemoryAccess(AccessType.READ, 0),
                 MemoryAccess(AccessType.READ, 64),
                 MemoryAccess(AccessType.PERSIST, 128),
                 MemoryAccess(AccessType.READ, 192)]
        executed, _ = split_at_crash(trace, CrashPlan(1))
        assert executed[-1].kind is AccessType.PERSIST
        assert len(executed) == 3

    def test_align_with_no_following_persist_takes_all(self):
        trace = [MemoryAccess(AccessType.READ, 0)] * 4
        executed, rest = split_at_crash(trace, CrashPlan(2))
        assert len(executed) == 4
        assert list(rest) == []


class TestRunWithCrash:
    def test_executes_then_crashes(self):
        system = System(small_config("scue"))
        attach_sanitizer(system.controller)
        executed = run_with_crash(system, persist_trace(30),
                                  CrashPlan(after_accesses=10))
        assert executed >= 10
        # CPU caches dropped: next load is a full miss.
        assert system.hierarchy.load(0).miss_to_memory

    def test_recovery_truth_after_injected_crash(self):
        system = System(small_config("scue"))
        attach_sanitizer(system.controller)
        run_with_crash(system, persist_trace(30), CrashPlan(10))
        assert system.recover().success

    def test_lazy_fails_after_injected_crash(self):
        system = System(small_config("lazy"))
        run_with_crash(system, persist_trace(30), CrashPlan(10))
        assert not system.recover().success
