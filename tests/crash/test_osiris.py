"""Osiris-style relaxed counter persistence composed with SCUE (§VII)."""

import random

import pytest

from repro.crash.attacks import replay_leaf, snapshot_leaf
from repro.errors import ConfigError
from repro.secure.scue import SCUEController
from repro.sim.config import SystemConfig

from tests.conftest import small_config


def osiris_controller(limit=4, **overrides) -> SCUEController:
    return SCUEController(small_config(
        "scue", leaf_write_through=False, osiris_limit=limit, **overrides))


def run_writes(controller, n=150, seed=3):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


class TestConfig:
    def test_requires_relaxed_persistence(self):
        with pytest.raises(ConfigError):
            SystemConfig(osiris_limit=4, leaf_write_through=True)

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(osiris_limit=-1, leaf_write_through=False)


class TestRuntime:
    def test_metadata_writes_reduced_vs_write_through(self):
        # A roomier metadata cache isolates the persistence policy from
        # eviction noise (dirty leaves thrashing out of a 4 KB cache).
        cache = {"metadata_cache_size": 64 * 1024}
        relaxed = run_writes(osiris_controller(limit=8, **cache))
        through = run_writes(SCUEController(small_config("scue", **cache)))
        assert relaxed.stats.counter("meta_writes").value \
            < through.stats.counter("meta_writes").value / 2

    def test_forced_writeback_every_limit_bumps(self):
        controller = osiris_controller(limit=4)
        for i in range(8):          # 8 bumps to the same leaf
            controller.write_data(0, None, cycle=i * 100)
        assert controller.stats.counter("osiris_writebacks").value == 2

    def test_recovery_root_still_tracks_every_bump(self):
        controller = run_writes(osiris_controller(limit=8), n=50)
        assert sum(controller.recovery_root.counters) == 50


class TestRecovery:
    def test_lost_counter_tail_recovered(self):
        controller = run_writes(osiris_controller(limit=8), n=120)
        controller.crash()
        report = controller.recover()
        assert report.success
        assert report.root_matched

    def test_recovered_system_keeps_running(self):
        controller = run_writes(osiris_controller(limit=4), n=80)
        controller.crash()
        assert controller.recover().success
        run_writes(controller, n=40, seed=9)
        controller.read_data(0, cycle=10**9)

    def test_data_survives_osiris_recovery(self):
        controller = osiris_controller(limit=4)
        controller.write_data(0, b"\x91" * 64, cycle=0)
        controller.write_data(0, b"\x92" * 64, cycle=100)  # stale window
        controller.crash()
        assert controller.recover().success
        assert controller.read_data(0, cycle=10**6).plaintext == b"\x92" * 64

    def test_overflow_inside_window_handled(self):
        """Minor overflow forces an immediate write-back, so recovery
        never has to search across a major epoch."""
        controller = osiris_controller(limit=16)
        for i in range(70):          # > 64: overflows the 6-bit minor
            controller.write_data(0, None, cycle=i * 1000)
        assert controller.stats.counter("counter_overflows").value >= 1
        controller.crash()
        assert controller.recover().success

    def test_replay_still_detected_by_root(self):
        """Osiris's per-line search accepts any internally consistent
        (data, MAC, counter) tuple — the Recovery_root sum is what kills
        the replay, exactly as in the write-through configuration."""
        controller = osiris_controller(limit=2)
        controller.write_data(0, b"v1" * 32, cycle=0)
        controller.write_data(0, b"v1" * 32, cycle=100)  # forces writeback
        snap = snapshot_leaf(controller.store, 0)
        old_cipher = controller.nvm.peek_line(0)
        old_mac = controller.data_macs[0]
        controller.write_data(0, b"v2" * 32, cycle=200)
        controller.write_data(0, b"v2" * 32, cycle=300)
        controller.crash()
        replay_leaf(controller.store, snap)
        controller.nvm.poke_line(0, old_cipher)   # replay the data too
        controller.data_macs[0] = old_mac         # ...and its ECC MAC
        report = controller.recover()
        assert not report.success
        assert not report.root_matched

    def test_recovery_counts_osiris_reads(self):
        controller = run_writes(osiris_controller(limit=4), n=60)
        controller.crash()
        report = controller.recover()
        assert report.metadata_reads >= \
            2 * controller.amap.num_counter_blocks
