"""Attack injection and detection — the executable Table I."""

import random

import pytest

from repro.crash.attacks import (
    combined_attack,
    replay_leaf,
    roll_back_leaf,
    roll_forward_leaf,
    snapshot_leaf,
    tamper_data_line,
)
from repro.errors import IntegrityError
from repro.secure.scue import SCUEController

from tests.conftest import small_config


def busy_controller(n=40, seed=6) -> SCUEController:
    controller = SCUEController(small_config("scue"))
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


class TestRollForward:
    def test_detected_by_leaf_hmac(self):
        controller = busy_controller()
        controller.crash()
        roll_forward_leaf(controller.store, 0, slot=0, amount=3)
        report = controller.recover()
        assert not report.success
        assert 0 in report.leaf_hmac_failures

    def test_multiple_victims_all_flagged(self):
        controller = busy_controller()
        controller.crash()
        roll_forward_leaf(controller.store, 0, slot=1)
        roll_forward_leaf(controller.store, 2, slot=5)
        report = controller.recover()
        assert set(report.leaf_hmac_failures) >= {0, 2}


class TestRollBack:
    def test_in_place_rollback_detected_by_hmac(self):
        controller = busy_controller()
        # Make sure leaf 0 has a non-zero counter to roll back.
        controller.write_data(0, None, cycle=10**6)
        controller.crash()
        roll_back_leaf(controller.store, 0, slot=0, amount=1)
        report = controller.recover()
        assert not report.success
        assert 0 in report.leaf_hmac_failures

    def test_replay_passes_hmac_fails_root(self):
        controller = busy_controller()
        controller.write_data(0, None, cycle=10**6)
        snap = snapshot_leaf(controller.store, 0)
        controller.write_data(0, None, cycle=10**6 + 100)
        controller.crash()
        replay_leaf(controller.store, snap)
        report = controller.recover()
        assert not report.success
        assert not report.leaf_hmac_failures  # internally consistent
        assert not report.root_matched        # but the sum is short

    def test_replay_of_current_state_is_harmless(self):
        """Replaying the *latest* image changes nothing — recovery
        succeeds, as it must (no false positives)."""
        controller = busy_controller()
        controller.write_data(0, None, cycle=10**6)
        controller.crash()
        snap = snapshot_leaf(controller.store, 0)
        replay_leaf(controller.store, snap)
        assert controller.recover().success


class TestCombined:
    def test_sum_preserving_attack_still_detected(self):
        """Roll one leaf forward and another back by the same amount: the
        Recovery_root sum is unchanged, but the forward half cannot forge
        its HMAC (Table I, column 3)."""
        controller = busy_controller()
        controller.write_data(64 * 64, None, cycle=10**6)  # leaf 1 nonzero
        controller.crash()
        combined_attack(controller.store, forward_index=0, back_index=1,
                        slot=0, amount=1)
        report = controller.recover()
        assert not report.success
        assert report.leaf_hmac_failures


class TestDataTampering:
    def test_flipped_bits_detected_on_read(self):
        controller = busy_controller()
        controller.write_data(0x4000, b"\x10" * 64, cycle=10**6)
        tamper_data_line(controller.nvm, controller.amap, 0x4000)
        with pytest.raises(IntegrityError):
            controller.read_data(0x4000, cycle=10**6 + 100)

    def test_tamper_helper_flips_requested_bits(self):
        controller = busy_controller()
        controller.write_data(0x4000, None, cycle=10**6)
        before = controller.nvm.peek_line(0x4000)
        tamper_data_line(controller.nvm, controller.amap, 0x4000,
                         flip_mask=0x80)
        after = controller.nvm.peek_line(0x4000)
        assert after[0] == before[0] ^ 0x80
        assert after[1:] == before[1:]


class TestSnapshots:
    def test_snapshot_is_byte_exact(self):
        controller = busy_controller()
        controller.write_data(0, None, cycle=10**6)
        snap = snapshot_leaf(controller.store, 0)
        addr = controller.amap.counter_block_addr(0)
        assert snap.image == controller.nvm.peek_line(addr)
        assert snap.index == 0
