"""Targeted (STAR/AGIT) reconstruction: functional fast recovery must be
equivalent to the full counter-summing rebuild."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import attach_sanitizer
from repro.crash.attacks import replay_leaf, roll_forward_leaf, snapshot_leaf
from repro.crash.fast_recovery import targeted_reconstruction
from repro.crash.recovery import counter_summing_reconstruction
from repro.secure.scue import SCUEController

from tests.conftest import small_config


def tracked_scue(tracker="star", **overrides) -> SCUEController:
    overrides.setdefault("metadata_cache_size", 2048)
    controller = SCUEController(small_config(
        "scue", recovery_tracker=tracker, **overrides))
    # Sanitizer rides along until the first crash; recovery and
    # post-recovery traffic run uninstrumented (it goes dormant).
    attach_sanitizer(controller)
    return controller


def run_writes(controller, n=100, seed=3):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


class TestTargetedReconstruction:
    def test_clean_crash_recovers(self):
        controller = run_writes(tracked_scue())
        controller.crash()
        report = controller.recover()
        assert report.success
        assert "targeted" in report.detail

    def test_rebuilds_only_stale_nodes(self):
        controller = run_writes(tracked_scue())
        stale = len(controller.tracker.stale_coords())
        controller.crash()
        report = controller.recover()
        # Far fewer reads than a full leaf-level scan.
        assert report.metadata_reads \
            < controller.amap.num_counter_blocks
        assert report.metadata_writes <= stale

    def test_runtime_continues_after_targeted_recovery(self):
        controller = run_writes(tracked_scue())
        controller.crash()
        assert controller.recover().success
        run_writes(controller, n=40, seed=9)
        controller.read_data(0, cycle=10**9)

    def test_matches_full_reconstruction(self):
        """The headline property: targeted == full, on the same crash
        state."""
        controller = run_writes(tracked_scue(), n=150, seed=7)
        stale = controller.tracker.stale_coords()
        controller.crash()
        targeted = targeted_reconstruction(controller, stale)
        full = counter_summing_reconstruction(
            controller.store, controller.amap, controller.mac,
            controller.recovery_root, write_back=False)
        assert targeted.root_matched == full.root_matched is True
        assert targeted.root_counters == full.root_counters

    @given(st.integers(0, 2**32 - 1), st.integers(20, 120))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_over_random_histories(self, seed, writes):
        controller = run_writes(tracked_scue(), n=writes, seed=seed)
        stale = controller.tracker.stale_coords()
        controller.crash()
        targeted = targeted_reconstruction(controller, stale)
        full = counter_summing_reconstruction(
            controller.store, controller.amap, controller.mac,
            controller.recovery_root, write_back=False)
        assert targeted.root_counters == full.root_counters
        assert targeted.root_matched and full.root_matched

    def test_replay_detected(self):
        controller = tracked_scue()
        controller.write_data(0, None, cycle=0)
        snap = snapshot_leaf(controller.store, 0)
        controller.write_data(0, None, cycle=100)
        controller.crash()
        replay_leaf(controller.store, snap)
        report = controller.recover()
        assert not report.success
        assert not report.root_matched

    def test_roll_forward_in_stale_subtree_detected_at_recovery(self):
        """Tampering a leaf whose branch IS stale: the rebuild reads the
        tampered leaf and the root sum no longer matches."""
        controller = tracked_scue()
        controller.write_data(0, None, cycle=0)       # leaf 0's branch
        controller.write_data(64, None, cycle=100)    # stays dirty/stale
        controller.crash()
        roll_forward_leaf(controller.store, 0, slot=0, amount=2)
        report = controller.recover()
        assert not report.success

    def test_tamper_in_clean_subtree_caught_at_runtime(self):
        """The STAR/Anubis security model: an attack on an untouched
        subtree passes *recovery* (its media was never rebuilt) but dies
        on first runtime access — verification on fetch."""
        from repro.errors import IntegrityError
        controller = run_writes(tracked_scue(metadata_cache_size=4096),
                                n=60)
        controller.crash()
        assert controller.recover().success           # clean recovery
        controller.crash()                            # quiesce again
        # Tamper a leaf while every branch is clean (nothing stale).
        roll_forward_leaf(controller.store, 0, slot=0, amount=2)
        assert controller.recover().success           # not seen yet...
        with pytest.raises(IntegrityError):
            controller.read_data(0, cycle=10**9)      # ...caught on access

    @pytest.mark.parametrize("tracker", ["star", "agit"])
    def test_both_trackers_drive_recovery(self, tracker):
        controller = run_writes(tracked_scue(tracker=tracker))
        controller.crash()
        report = controller.recover()
        assert report.success
        assert tracker in report.detail
        assert controller.tracker.stale_nodes == 0  # reset on success
