"""STAR and AGIT fast-recovery trackers (§V-D, Fig 13)."""

import pytest

from repro.crash.anubis import (
    AgitTracker,
    AsitTracker,
    READS_PER_STALE_NODE as AGIT_READS,
)
from repro.crash.recovery import METADATA_FETCH_NS
from repro.crash.star import (
    READS_PER_STALE_NODE as STAR_READS,
    StarTracker,
)
from repro.mem.address import AddressMap

CAP = 1024 * 1024


@pytest.fixture
def amap():
    return AddressMap(CAP)


class TestStarTracker:
    def test_dirty_clean_lifecycle(self, amap):
        tracker = StarTracker(amap)
        tracker.on_dirty(1, 3)
        tracker.on_dirty(1, 3)      # idempotent
        assert tracker.stale_nodes == 1
        tracker.on_clean(1, 3)
        assert tracker.stale_nodes == 0

    def test_clean_unknown_is_noop(self, amap):
        StarTracker(amap).on_clean(1, 99)

    def test_recovery_reads_linear_in_stale(self, amap):
        tracker = StarTracker(amap)
        for i in range(10):
            tracker.on_dirty(1, i)
        base = tracker.bitmap_lines
        assert tracker.recovery_reads() == base + STAR_READS * 10

    def test_bitmap_covers_all_trackable_nodes(self, amap):
        tracker = StarTracker(amap)
        trackable = amap.num_counter_blocks + amap.num_tree_nodes
        assert tracker.bitmap_lines * 512 >= trackable

    def test_no_runtime_write_overhead(self, amap):
        tracker = StarTracker(amap)
        tracker.on_dirty(0, 0)
        assert tracker.runtime_write_overhead == 0

    def test_seconds_model(self, amap):
        tracker = StarTracker(amap)
        tracker.on_dirty(0, 0)
        assert tracker.recovery_seconds() == pytest.approx(
            tracker.recovery_reads() * METADATA_FETCH_NS * 1e-9)

    def test_reset(self, amap):
        tracker = StarTracker(amap)
        tracker.on_dirty(0, 0)
        tracker.reset()
        assert tracker.stale_nodes == 0


class TestAgitTracker:
    def test_runtime_writes_accrue_per_new_dirty(self, amap):
        tracker = AgitTracker(amap)
        tracker.on_dirty(0, 0)
        tracker.on_dirty(0, 0)      # already tracked: no extra ST write
        tracker.on_dirty(1, 0)
        assert tracker.runtime_write_overhead == 2

    def test_redirty_after_clean_writes_again(self, amap):
        tracker = AgitTracker(amap)
        tracker.on_dirty(0, 0)
        tracker.on_clean(0, 0)
        tracker.on_dirty(0, 0)
        assert tracker.runtime_write_overhead == 2

    def test_recovery_reads_linear(self, amap):
        tracker = AgitTracker(amap)
        for i in range(7):
            tracker.on_dirty(0, i)
        assert tracker.recovery_reads() == AGIT_READS * 7

    def test_agit_costs_more_per_node_than_star(self, amap):
        """The paper's Fig 13 ordering: STAR recovers faster."""
        assert AGIT_READS > STAR_READS

    def test_stale_coords_snapshot(self, amap):
        tracker = AgitTracker(amap)
        tracker.on_dirty(2, 5)
        coords = tracker.stale_coords()
        coords.clear()
        assert tracker.stale_nodes == 1

    def test_repeat_updates_free_for_agit(self, amap):
        tracker = AgitTracker(amap)
        tracker.on_dirty(1, 0)
        for _ in range(5):
            tracker.on_update(1, 0)
        assert tracker.runtime_write_overhead == 1


class TestAsitTracker:
    def test_pays_per_update(self, amap):
        """The §V-D contrast: content journalling writes the ST on every
        metadata update, not just the first-dirty transition."""
        tracker = AsitTracker(amap)
        for _ in range(5):
            tracker.on_update(1, 0)
        assert tracker.runtime_write_overhead == 5

    def test_recovery_is_one_read_per_stale(self, amap):
        tracker = AsitTracker(amap)
        for i in range(7):
            tracker.on_update(1, i)
        assert tracker.recovery_reads() == 7

    def test_cheaper_recovery_but_dearer_runtime_than_agit(self, amap):
        """The trade SCUE dissolves: ASIT recovers fastest but pays the
        2x-style runtime journalling AGIT avoids."""
        asit, agit = AsitTracker(amap), AgitTracker(amap)
        for tracker in (asit, agit):
            for i in range(4):
                tracker.on_dirty(1, i)
                for _ in range(3):
                    tracker.on_update(1, i)
        assert asit.recovery_reads() < agit.recovery_reads()
        assert asit.runtime_write_overhead > agit.runtime_write_overhead

    def test_scue_controller_accepts_asit(self):
        from repro.secure.scue import SCUEController
        from tests.conftest import small_config
        controller = SCUEController(small_config(
            "scue", recovery_tracker="asit"))
        for i in range(20):
            controller.write_data(i * 4096, None, cycle=i * 100)
        assert controller.tracker.runtime_write_overhead >= 20
        controller.crash()
        assert controller.recover().success
