"""The exception hierarchy and the package's public API surface."""

import pytest

import repro
from repro.errors import (
    AddressError,
    ConfigError,
    CrashError,
    IntegrityError,
    RecoveryError,
    ReproError,
    RootMismatchError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (ConfigError, AddressError, IntegrityError,
                    RootMismatchError, RecoveryError, CrashError,
                    SimulationError):
            assert issubclass(exc, ReproError)

    def test_root_mismatch_is_integrity(self):
        assert issubclass(RootMismatchError, IntegrityError)

    def test_single_catch_covers_library_errors(self):
        with pytest.raises(ReproError):
            raise IntegrityError("detected")


class TestPublicAPI:
    def test_dunder_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example_runs(self):
        config = repro.SystemConfig(scheme="scue",
                                    data_capacity=1024 * 1024)
        system = repro.System(config)
        system.run(repro.make_workload("array", config.data_capacity,
                                       30).trace())
        system.crash()
        assert system.recover().success

    def test_scheme_registry_covers_paper_set(self):
        assert {"baseline", "lazy", "eager", "plp", "bmf-ideal",
                "scue"} <= set(repro.SCHEMES)

    def test_workload_registry_covers_paper_set(self):
        assert {"array", "btree", "hash", "queue", "rbtree",
                "mcf", "lbm"} <= set(repro.ALL_WORKLOADS)
        assert len(repro.ALL_WORKLOADS) == 13  # 5 persistent + 8 SPEC

    def test_unknown_workload_raises_config_error(self):
        with pytest.raises(ConfigError):
            repro.make_workload("doom", 1024 * 1024, 10)

    def test_unknown_scheme_raises_config_error(self):
        with pytest.raises(ConfigError):
            repro.make_controller(repro.SystemConfig(
                scheme="quantum", data_capacity=1024 * 1024))

    def test_version(self):
        assert repro.__version__ == "1.0.0"
