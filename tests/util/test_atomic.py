"""Crash-consistent file publication (repro.util.atomic): content
lands byte-exact, publication is all-or-nothing, and the staging
residue is cleaned up on both the success and the failure path."""

import os

import pytest

from repro.util.atomic import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, '{"a": 1}\n')
        assert path.read_text() == '{"a": 1}\n'

    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\xffpayload")
        assert path.read_bytes() == b"\x00\xffpayload"

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old version")
        atomic_write_text(path, "new version")
        assert path.read_text() == "new version"

    def test_no_staging_residue_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x" * 4096)
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_publish_keeps_previous_version(self, tmp_path,
                                                   monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "v1")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "v2")
        # The reader-visible file is the complete previous version and
        # the orphaned temp file was removed.
        assert path.read_text() == "v1"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_no_file(self, tmp_path, monkeypatch):
        path = tmp_path / "fresh.txt"

        def exploding_fsync(fd):
            raise OSError("simulated device error")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="simulated device"):
            atomic_write_text(path, "never published")
        assert list(tmp_path.iterdir()) == []
