"""Bit-packing: the on-media layouts depend on these being exact."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.util.bitfield import (
    BitPacker,
    BitUnpacker,
    checked_sum,
    pack_counters,
    unpack_counters,
)


class TestBitPacker:
    def test_single_field_roundtrip(self):
        data = BitPacker().add(0x2A, 8).to_bytes()
        assert BitUnpacker(data).take(8) == 0x2A

    def test_fields_preserve_order(self):
        packer = BitPacker().add(1, 4).add(2, 4).add(3, 8)
        unpacker = BitUnpacker(packer.to_bytes())
        assert [unpacker.take(4), unpacker.take(4), unpacker.take(8)] \
            == [1, 2, 3]

    def test_bit_length_tracks_appends(self):
        packer = BitPacker().add(0, 56).add(0, 8)
        assert packer.bit_length == 64

    def test_value_too_wide_rejected(self):
        with pytest.raises(ConfigError):
            BitPacker().add(256, 8)

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigError):
            BitPacker().add(-1, 8)

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            BitPacker().add(0, 0)

    def test_to_bytes_pads_to_requested_length(self):
        data = BitPacker().add(1, 8).to_bytes(64)
        assert len(data) == 64
        assert data[0] == 1
        assert not any(data[1:])

    def test_to_bytes_rejects_too_small_length(self):
        with pytest.raises(ConfigError):
            BitPacker().add(1, 16).to_bytes(1)

    def test_exact_64_byte_sit_layout(self):
        """8 x 56-bit counters + 64-bit HMAC == exactly 512 bits."""
        packer = BitPacker()
        for i in range(8):
            packer.add(i, 56)
        packer.add(0xDEADBEEF, 64)
        assert packer.bit_length == 512
        assert len(packer.to_bytes()) == 64


class TestBitUnpacker:
    def test_exhaustion_raises(self):
        unpacker = BitUnpacker(b"\x01")
        unpacker.take(8)
        with pytest.raises(ConfigError):
            unpacker.take(1)

    def test_take_many(self):
        data = pack_counters([1, 2, 3, 4], width=7, line_size=8)
        assert unpack_counters(data, 7, 4) == [1, 2, 3, 4]


class TestCountersHelpers:
    def test_pack_unpack_roundtrip(self):
        counters = [5, 0, 2**56 - 1, 123, 0, 0, 7, 8]
        data = pack_counters(counters, 56)
        assert len(data) == 64
        assert unpack_counters(data, 56, 8) == counters

    @given(st.lists(st.integers(min_value=0, max_value=2**56 - 1),
                    min_size=8, max_size=8))
    def test_roundtrip_any_counters(self, counters):
        data = pack_counters(counters, 56)
        assert unpack_counters(data, 56, 8) == counters

    @given(st.lists(st.integers(min_value=0, max_value=2**6 - 1),
                    min_size=64, max_size=64))
    def test_roundtrip_minor_counters(self, minors):
        data = pack_counters(minors, 6, line_size=48)
        assert unpack_counters(data, 6, 64) == minors


class TestCheckedSum:
    def test_plain_sum(self):
        assert checked_sum([1, 2, 3], 56) == 6

    def test_wraps_at_width(self):
        assert checked_sum([2**56 - 1, 2], 56) == 1

    def test_negative_deltas_wrap_consistently(self):
        # delta = after - before must compose: before + delta == after.
        before, after = 100, 37
        delta = checked_sum([after, -before], 56)
        assert checked_sum([before, delta], 56) == after

    @given(st.lists(st.integers(min_value=0, max_value=2**56 - 1),
                    min_size=1, max_size=16))
    def test_matches_modular_arithmetic(self, values):
        assert checked_sum(values, 56) == sum(values) % 2**56
