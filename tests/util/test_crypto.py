"""The keyed MAC and OTP primitives: determinism, key separation, and the
properties the security arguments lean on."""

import pytest
from hypothesis import given, strategies as st

from repro.util.crypto import KeyedMac, MAC_BYTES, OTP_BYTES, make_otp, xor_bytes


class TestKeyedMac:
    def test_deterministic(self):
        mac = KeyedMac(b"k1")
        assert mac.mac(b"hello", 42) == mac.mac(b"hello", 42)

    def test_different_keys_differ(self):
        assert KeyedMac(b"k1").mac(b"x") != KeyedMac(b"k2").mac(b"x")

    def test_different_inputs_differ(self):
        mac = KeyedMac(b"k")
        assert mac.mac(b"a") != mac.mac(b"b")

    def test_int_parts_are_positional(self):
        mac = KeyedMac(b"k")
        assert mac.mac(1, 2) != mac.mac(2, 1)

    def test_int_and_bytes_parts_compose(self):
        mac = KeyedMac(b"k")
        # An int part serialises as its 8-byte LE image.
        assert mac.mac(1) == mac.mac((1).to_bytes(8, "little"))

    def test_fits_64_bits(self):
        value = KeyedMac(b"k").mac(b"payload")
        assert 0 <= value < 2**64

    def test_mac_bytes_matches_mac(self):
        mac = KeyedMac(b"k")
        assert int.from_bytes(mac.mac_bytes(b"p"), "little") == mac.mac(b"p")
        assert len(mac.mac_bytes(b"p")) == MAC_BYTES

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            KeyedMac(b"")

    def test_long_keys_accepted(self):
        # blake2b caps raw keys at 64 bytes; ours are pre-hashed.
        KeyedMac(b"x" * 500).mac(b"data")

    @given(st.binary(min_size=0, max_size=128),
           st.binary(min_size=0, max_size=128))
    def test_collision_free_in_practice(self, a, b):
        mac = KeyedMac(b"k")
        if a != b:
            assert mac.mac(a, b"sep") != mac.mac(b, b"sep") or a == b


class TestMakeOtp:
    def test_length(self):
        assert len(make_otp(b"k", 0, 0, 0)) == OTP_BYTES

    def test_deterministic(self):
        assert make_otp(b"k", 64, 1, 2) == make_otp(b"k", 64, 1, 2)

    def test_unique_per_address(self):
        assert make_otp(b"k", 0, 0, 0) != make_otp(b"k", 64, 0, 0)

    def test_unique_per_minor(self):
        assert make_otp(b"k", 0, 0, 0) != make_otp(b"k", 0, 0, 1)

    def test_unique_per_major(self):
        assert make_otp(b"k", 0, 0, 0) != make_otp(b"k", 1, 0, 0)

    def test_key_dependent(self):
        assert make_otp(b"k1", 0, 0, 0) != make_otp(b"k2", 0, 0, 0)


class TestXorBytes:
    def test_roundtrip(self):
        a, b = b"\x01\x02\x03", b"\xff\x00\x10"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_self_inverse_is_zero(self):
        a = bytes(range(64))
        assert xor_bytes(a, a) == bytes(64)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"a")

    @given(st.binary(min_size=64, max_size=64),
           st.binary(min_size=64, max_size=64))
    def test_xor_is_involution(self, a, b):
        assert xor_bytes(xor_bytes(a, b), b) == a
