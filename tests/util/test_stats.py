"""Statistics plumbing."""

import json

from repro.util.stats import StatCounter, StatGroup, WeightedMean


class TestStatCounter:
    def test_add_default(self):
        counter = StatCounter("c")
        counter.add()
        counter.add(3)
        assert counter.value == 4

    def test_reset(self):
        counter = StatCounter("c", value=9)
        counter.reset()
        assert counter.value == 0


class TestWeightedMean:
    def test_mean(self):
        mean = WeightedMean("m")
        mean.add(10)
        mean.add(20)
        assert mean.mean == 15
        assert mean.count == 2

    def test_weighted(self):
        mean = WeightedMean("m")
        mean.add(10, weight=3)
        mean.add(50, weight=1)
        assert mean.mean == 20

    def test_min_max(self):
        mean = WeightedMean("m")
        for v in (5, 1, 9):
            mean.add(v)
        assert mean.minimum == 1
        assert mean.maximum == 9

    def test_empty_mean_is_zero(self):
        assert WeightedMean("m").mean == 0.0

    def test_empty_min_max_are_none_not_inf(self):
        """Regression: an empty mean used to carry +/-inf sentinels for
        min/max, which leak into exported JSON as the non-standard
        ``Infinity`` token and break strict parsers downstream."""
        mean = WeightedMean("m")
        assert mean.minimum is None
        assert mean.maximum is None
        encoded = json.dumps({"min": mean.minimum, "max": mean.maximum})
        assert "Infinity" not in encoded
        assert json.loads(encoded) == {"min": None, "max": None}

    def test_reset(self):
        mean = WeightedMean("m")
        mean.add(5)
        mean.reset()
        assert mean.count == 0
        assert mean.mean == 0.0
        assert mean.minimum is None
        assert mean.maximum is None


class TestStatGroup:
    def test_counter_is_memoised(self):
        group = StatGroup("g")
        assert group.counter("x") is group.counter("x")

    def test_child_nesting_in_dict(self):
        group = StatGroup("top")
        group.child("inner").counter("hits").add(2)
        flat = group.as_dict()
        assert flat["top.inner.hits"] == 2

    def test_mean_appears_in_dict(self):
        group = StatGroup("g")
        group.mean("lat").add(100)
        flat = group.as_dict()
        assert flat["g.lat.mean"] == 100
        assert flat["g.lat.count"] == 1

    def test_reset_recurses(self):
        group = StatGroup("g")
        group.counter("a").add(5)
        group.child("c").counter("b").add(7)
        group.mean("m").add(3)
        group.reset()
        flat = group.as_dict()
        assert all(v == 0 for v in flat.values())

    def test_attach_external_group(self):
        group = StatGroup("g")
        other = StatGroup("other")
        other.counter("n").add(1)
        group.attach(other)
        assert group.as_dict()["g.other.n"] == 1

    def test_iter_yields_counters(self):
        group = StatGroup("g")
        group.counter("a")
        group.counter("b")
        assert {c.name for c in group} == {"a", "b"}


class TestStatGroupHistograms:
    def test_histogram_is_memoised(self):
        group = StatGroup("g")
        assert group.histogram("lat") is group.histogram("lat")

    def test_histogram_summary_in_dict(self):
        group = StatGroup("g")
        group.histogram("lat").add(100)
        flat = group.as_dict()
        assert flat["g.lat.count"] == 1
        assert flat["g.lat.mean"] == 100.0
        assert flat["g.lat.p99"] == 100.0
        assert flat["g.lat.max"] == 100.0

    def test_histograms_flattener_recurses_children(self):
        group = StatGroup("top")
        group.histogram("a").add(1)
        group.child("inner").histogram("b").add(2)
        flat = group.histograms()
        assert set(flat) == {"top.a", "top.inner.b"}
        assert flat["top.inner.b"].count == 1

    def test_reset_clears_histograms(self):
        group = StatGroup("g")
        group.histogram("lat").add(9)
        group.reset()
        assert group.histogram("lat").count == 0
