"""One real quick campaign shared by the bundle/CLI tests.

Running the simulator is the expensive part, so a session-scoped
fixture populates a single campaign directory (Fig 9/10 matrix cells +
a two-point hash sweep) that every golden-bundle and CLI test reads.
The directory itself is never mutated by the tests — bundles are
written to separate output directories.
"""

import pytest

from repro.bench.harness import run_matrix
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec

from tests.campaign._fakes import TinyScale

WORKLOADS = ["array", "queue"]
SCHEMES = ["baseline", "lazy", "scue"]
SWEEP_LATENCIES = (20, 40)


@pytest.fixture(scope="session")
def campaign_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign")
    scale = TinyScale(operations=30)
    run_matrix(scale, workloads=WORKLOADS, schemes=SCHEMES,
               cache=root / "cache")
    sweep = CampaignSpec.hash_sweep(scale, ["array"],
                                    latencies=SWEEP_LATENCIES)
    run_campaign(sweep, cache=root / "cache").raise_on_failure()
    return root
