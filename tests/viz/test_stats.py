"""Seeded bootstrap CIs and paired sign-flip permutation tests."""

import math

import pytest

from repro.viz.stats import (
    SchemeStats,
    bootstrap_ci,
    format_stats_table,
    paired_permutation_test,
    ratio_table_stats,
)


class TestBootstrapCi:
    def test_same_seed_same_interval(self):
        values = [1.1, 1.3, 0.9, 1.6, 1.2]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values,
                                                            seed=7)

    def test_different_seed_differs(self):
        values = [1.1, 1.3, 0.9, 1.6, 1.2]
        assert bootstrap_ci(values, seed=7) != bootstrap_ci(values,
                                                            seed=8)

    def test_interval_brackets_the_statistic(self):
        values = [1.1, 1.3, 0.9, 1.6, 1.2]
        lo, hi = bootstrap_ci(values, resamples=500, seed=1)
        point = math.exp(sum(map(math.log, values)) / len(values))
        assert lo <= point <= hi
        assert min(values) <= lo and hi <= max(values)

    def test_single_value_degenerates_to_point(self):
        assert bootstrap_ci([2.5]) == (2.5, 2.5)

    def test_empty_is_zero(self):
        assert bootstrap_ci([]) == (0.0, 0.0)

    def test_constant_sample_has_zero_width(self):
        lo, hi = bootstrap_ci([1.5] * 6, resamples=200, seed=3)
        assert lo == hi == 1.5


class TestPairedPermutation:
    def test_unequal_lengths_raise(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0, 2.0], [1.0])

    def test_identical_samples_are_null(self):
        assert paired_permutation_test([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_empty_is_null(self):
        assert paired_permutation_test([], []) == 1.0

    def test_exact_enumeration_small_n(self):
        # n=2 with diffs (1, 1): patterns (++, +-, -+, --) give mean
        # diffs (1, 0, 0, -1); |stat| >= 1 for 2 of 4 -> p = 0.5.
        p = paired_permutation_test([2.0, 2.0], [1.0, 1.0],
                                    resamples=2000)
        assert p == 0.5

    def test_exact_p_shrinks_with_n(self):
        xs = [2.0] * 8
        ys = [1.0] * 8
        # All diffs equal: only the all-plus and all-minus of the 2^8
        # patterns reach |mean| = 1 -> p = 2/256.
        assert paired_permutation_test(xs, ys) == pytest.approx(2 / 256)

    def test_sampled_branch_is_seeded(self):
        xs = [1.0 + 0.1 * i for i in range(20)]     # 2^20 > resamples
        ys = [1.0 + 0.09 * i for i in range(20)]
        p1 = paired_permutation_test(xs, ys, resamples=400, seed=5)
        p2 = paired_permutation_test(xs, ys, resamples=400, seed=5)
        assert p1 == p2
        assert 0.0 < p1 <= 1.0

    def test_two_sided_symmetry(self):
        xs, ys = [1.0, 1.2, 1.4], [2.0, 2.1, 2.3]
        assert paired_permutation_test(xs, ys) == \
            paired_permutation_test(ys, xs)


class TestRatioTableStats:
    TABLE = {
        "array": {"scue": 1.2, "eager": 2.0},
        "queue": {"scue": 1.3, "eager": 2.2},
        "btree": {"scue": 1.1, "eager": 1.9},
        "geomean": {"scue": 1.2, "eager": 2.03},  # must be excluded
    }

    def test_reference_has_no_p_value(self):
        rows = ratio_table_stats(self.TABLE, ["scue", "eager"], "scue",
                                 resamples=200, seed=1)
        by_scheme = {row.scheme: row for row in rows}
        assert by_scheme["scue"].p_vs_reference is None
        assert by_scheme["eager"].p_vs_reference is not None

    def test_geomean_row_excluded_from_samples(self):
        rows = ratio_table_stats(self.TABLE, ["scue"], "scue",
                                 resamples=100, seed=1)
        assert rows[0].n == 3

    def test_adding_a_scheme_keeps_earlier_intervals(self):
        # Per-scheme seeds derive from position, so extending the
        # scheme list must not perturb existing rows.
        one = ratio_table_stats(self.TABLE, ["scue"], "scue",
                                resamples=300, seed=9)
        two = ratio_table_stats(self.TABLE, ["scue", "eager"], "scue",
                                resamples=300, seed=9)
        assert one[0] == two[0]

    def test_format_includes_footer_and_reference(self):
        rows = [SchemeStats("eager", 3, 2.03, 1.9, 2.2, 0.25)]
        text = format_stats_table("T", rows, "scue", resamples=100,
                                  seed=4)
        assert "p_vs_scue" in text
        assert "bootstrap 95% CI (100 resamples, seed 4)" in text
        assert "eager" in text
