"""The offline spec validator and its spec/data cross-check."""

import json

from repro.viz.spec import VEGA_LITE_SCHEMA, grouped_bar, spec_text
from repro.viz.validate import main, validate_file, validate_spec


def good_spec(name="fig"):
    return grouped_bar(name, "T", x="workload", y="ratio",
                       group="scheme", y_title="ratio")


class TestValidateSpec:
    def test_good_spec_is_clean(self):
        problems, fields = validate_spec(good_spec())
        assert problems == []
        assert sorted(set(fields)) == ["ratio", "scheme", "workload"]

    def test_non_object_spec(self):
        problems, _ = validate_spec([1, 2])
        assert problems == ["spec is not a JSON object"]

    def test_missing_schema_flagged(self):
        spec = good_spec()
        del spec["$schema"]
        problems, _ = validate_spec(spec)
        assert any("$schema" in p for p in problems)

    def test_missing_data_flagged(self):
        spec = good_spec()
        del spec["data"]
        problems, _ = validate_spec(spec)
        assert any("data must be an object" in p for p in problems)

    def test_missing_mark_and_empty_encoding(self):
        spec = {"$schema": VEGA_LITE_SCHEMA,
                "data": {"values": []}, "encoding": {}}
        problems, _ = validate_spec(spec)
        assert any("missing mark" in p for p in problems)
        assert any("missing or empty encoding" in p for p in problems)

    def test_invalid_channel_type(self):
        spec = good_spec()
        spec["encoding"]["y"]["type"] = "numeric"
        problems, _ = validate_spec(spec)
        assert any("invalid type 'numeric'" in p for p in problems)

    def test_channel_without_field_or_value(self):
        spec = good_spec()
        spec["encoding"]["y"] = {"title": "no field"}
        problems, _ = validate_spec(spec)
        assert any("neither field nor value/datum" in p
                   for p in problems)

    def test_secondary_channel_needs_no_type(self):
        spec = {"$schema": VEGA_LITE_SCHEMA, "data": {"values": []},
                "mark": {"type": "errorbar"},
                "encoding": {"x": {"field": "s", "type": "nominal"},
                             "y": {"field": "lo",
                                   "type": "quantitative"},
                             "y2": {"field": "hi"}}}
        problems, fields = validate_spec(spec)
        assert problems == []
        assert "hi" in fields

    def test_layer_entries_checked_individually(self):
        spec = {"$schema": VEGA_LITE_SCHEMA, "data": {"values": []},
                "layer": [{"mark": {"type": "bar"},
                           "encoding": {"x": {"field": "a",
                                              "type": "nominal"}}},
                          {"encoding": {}}]}
        problems, _ = validate_spec(spec)
        assert any(p.startswith("layer[1]") for p in problems)
        assert not any(p.startswith("layer[0]") for p in problems)


class TestValidateFile:
    def write_pair(self, tmp_path, spec, csv_body):
        (tmp_path / "fig.vl.json").write_text(spec_text(spec))
        (tmp_path / "fig.csv").write_text(csv_body)
        return tmp_path / "fig.vl.json"

    def test_matching_pair_is_clean(self, tmp_path):
        path = self.write_pair(tmp_path, good_spec(),
                               "workload,scheme,ratio\na,s,1.0\n")
        assert validate_file(path) == []

    def test_missing_column_flagged(self, tmp_path):
        path = self.write_pair(tmp_path, good_spec(),
                               "workload,scheme\na,s\n")
        problems = validate_file(path)
        assert any("field 'ratio' missing from 'fig.csv'" in p
                   for p in problems)

    def test_missing_csv_flagged(self, tmp_path):
        path = tmp_path / "fig.vl.json"
        path.write_text(spec_text(good_spec()))
        problems = validate_file(path)
        assert any("file not found" in p for p in problems)

    def test_absolute_urls_skip_cross_check(self, tmp_path):
        spec = good_spec()
        spec["data"]["url"] = "https://example.com/data.csv"
        path = tmp_path / "fig.vl.json"
        path.write_text(spec_text(spec))
        assert validate_file(path) == []

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "broken.vl.json"
        path.write_text("{not json")
        problems = validate_file(path)
        assert any("not valid JSON" in p for p in problems)


class TestMain:
    def test_clean_dir_exits_zero(self, tmp_path, capsys):
        (tmp_path / "fig.vl.json").write_text(spec_text(good_spec()))
        (tmp_path / "fig.csv").write_text(
            "workload,scheme,ratio\na,s,1.0\n")
        assert main([str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_problems_exit_one(self, tmp_path, capsys):
        spec = good_spec()
        del spec["$schema"]
        (tmp_path / "fig.vl.json").write_text(json.dumps(spec))
        (tmp_path / "fig.csv").write_text(
            "workload,scheme,ratio\na,s,1.0\n")
        assert main([str(tmp_path)]) == 1
        assert "problem(s)" in capsys.readouterr().out

    def test_no_args_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_empty_dir_is_usage_error(self, tmp_path):
        assert main([str(tmp_path)]) == 2
