"""Byte-stable spec/CSV emission and the chart constructors."""

from repro.viz.spec import (
    VEGA_LITE_SCHEMA,
    FigureArtifact,
    ci_bar,
    content_hash,
    csv_text,
    format_value,
    grouped_bar,
    line_chart,
    spec_text,
    stacked_bar,
)
from repro.viz.validate import validate_spec


class TestFormatValue:
    def test_none_is_empty_cell(self):
        assert format_value(None) == ""

    def test_bools_are_json_words(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_floats_are_10g(self):
        assert format_value(1.0) == "1"
        assert format_value(0.1 + 0.2) == "0.3"
        assert format_value(1234567.891) == "1234567.891"

    def test_ints_and_strings_pass_through(self):
        assert format_value(313) == "313"
        assert format_value("scue") == "scue"


class TestCsvText:
    def test_fixed_column_order_and_newlines(self):
        rows = [{"b": 2, "a": 1}, {"a": 3}]
        text = csv_text(("a", "b"), rows)
        assert text == "a,b\n1,2\n3,\n"

    def test_quoting_round_trips(self):
        text = csv_text(("x",), [{"x": 'has,comma and "quote"'}])
        assert text.splitlines()[1] == '"has,comma and ""quote"""'


class TestSpecText:
    def test_sorted_keys_and_trailing_newline(self):
        text = spec_text({"zeta": 1, "alpha": {"b": 2, "a": 1}})
        assert text.index('"alpha"') < text.index('"zeta"')
        assert text.endswith("}\n")

    def test_identical_dicts_hash_identically(self):
        a = spec_text({"x": 1, "y": [1, 2]})
        b = spec_text({"y": [1, 2], "x": 1})
        assert content_hash(a) == content_hash(b)


class TestChartConstructors:
    def test_grouped_bar_is_structurally_valid(self):
        spec = grouped_bar("f", "t", x="workload", y="ratio",
                           group="scheme", y_title="ratio",
                           x_sort=["a", "b"], group_sort=["s1", "s2"])
        problems, fields = validate_spec(spec)
        assert problems == []
        assert set(fields) == {"workload", "ratio", "scheme"}
        assert spec["data"]["url"] == "f.csv"
        assert spec["$schema"] == VEGA_LITE_SCHEMA
        assert spec["encoding"]["x"]["sort"] == ["a", "b"]

    def test_line_chart_is_structurally_valid(self):
        spec = line_chart("f", "t", x="lat", y="ratio",
                          series="workload", x_title="x", y_title="y")
        problems, fields = validate_spec(spec)
        assert problems == []
        assert set(fields) == {"lat", "ratio", "workload"}

    def test_stacked_bar_stacks_to_zero(self):
        spec = stacked_bar("f", "t", x="scheme", y="share",
                           stack="component", y_title="share")
        assert validate_spec(spec)[0] == []
        assert spec["encoding"]["y"]["stack"] == "zero"

    def test_ci_bar_layers_validate(self):
        spec = ci_bar("f", "t", x="scheme", y="geomean",
                      lo="ci_low", hi="ci_high", y_title="geomean")
        problems, fields = validate_spec(spec)
        assert problems == []
        assert set(fields) == {"scheme", "geomean", "ci_low", "ci_high"}
        assert len(spec["layer"]) == 2


class TestFigureArtifact:
    def test_file_names_and_rendering(self):
        spec = grouped_bar("fig", "T", x="w", y="r", group="s",
                           y_title="r")
        artifact = FigureArtifact("fig", "T", spec, ("w", "s", "r"),
                                  [{"w": "a", "s": "x", "r": 1.5}],
                                  inputs=("unit test",))
        assert artifact.spec_file() == "fig.vl.json"
        assert artifact.data_file() == "fig.csv"
        assert artifact.csv_str() == "w,s,r\na,x,1.5\n"
        assert artifact.spec_str().endswith("\n")
