"""Campaign loading, bundle assembly, and the golden-bundle guarantee:
two renders of the same campaign are byte-identical, and every spec
passes the offline validator including the csv cross-check."""

import json

import pytest

from repro.errors import ConfigError
from repro.viz.bundle import (
    load_campaign,
    schemes_summary,
    sweep_figure,
    write_bundle,
)
from repro.viz.spec import content_hash
from repro.viz.validate import validate_file

from tests.viz.conftest import SCHEMES, SWEEP_LATENCIES, WORKLOADS


def bundle_digests(out_dir):
    return {path.name: content_hash(path.read_text())
            for path in sorted(out_dir.iterdir())}


class TestLoadCampaign:
    def test_classifies_matrix_and_sweep_cells(self, campaign_dir):
        data = load_campaign(campaign_dir)
        assert data.skipped == 0
        assert data.cells == len(WORKLOADS) * len(SCHEMES) \
            + len(SWEEP_LATENCIES)
        assert sorted(data.matrix.workloads) == sorted(WORKLOADS)
        assert data.matrix.schemes() == sorted(SCHEMES)
        assert set(data.sweep["array"]) == set(SWEEP_LATENCIES)
        assert data.has_matrix() and data.has_sec5e()
        assert data.has_sweep()
        assert "matrix 2x3" in schemes_summary(data)

    def test_corrupt_cell_degrades_to_skip(self, campaign_dir,
                                           tmp_path):
        import shutil
        copy = tmp_path / "camp"
        shutil.copytree(campaign_dir, copy)
        victim = next(iter(sorted(
            (copy / "cache" / "objects").glob("*/*.json"))))
        victim.write_text("{torn write")
        data = load_campaign(copy)
        assert data.skipped == 1
        assert data.cells == len(WORKLOADS) * len(SCHEMES) \
            + len(SWEEP_LATENCIES) - 1

    def test_missing_cache_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no cache/objects"):
            load_campaign(tmp_path)

    def test_sweep_figure_normalizes_to_lowest_latency(self,
                                                       campaign_dir):
        data = load_campaign(campaign_dir)
        sweep = sweep_figure(data, "write_latency")
        base = min(SWEEP_LATENCIES)
        assert sweep.table[base]["array"] == pytest.approx(1.0)
        assert sweep.table[max(SWEEP_LATENCIES)]["array"] > 1.0


class TestGoldenBundle:
    def test_two_runs_are_byte_identical(self, campaign_dir, tmp_path):
        first = write_bundle(campaign_dir, tmp_path / "a", resamples=50)
        second = write_bundle(campaign_dir, tmp_path / "b",
                              resamples=50)
        assert first.files == second.files
        assert bundle_digests(tmp_path / "a") == \
            bundle_digests(tmp_path / "b")

    def test_every_spec_validates_with_its_csv(self, campaign_dir,
                                               tmp_path):
        write_bundle(campaign_dir, tmp_path / "out", resamples=50)
        specs = sorted((tmp_path / "out").glob("*.vl.json"))
        assert specs
        for spec in specs:
            assert validate_file(spec) == [], spec.name

    def test_expected_figure_set(self, campaign_dir, tmp_path):
        manifest = write_bundle(campaign_dir, tmp_path / "out",
                                resamples=50)
        names = {artifact.name for artifact in manifest.artifacts}
        assert names == {
            "fig9_write_latency", "fig9_write_latency_ci",
            "fig10_execution_time", "fig10_execution_time_ci",
            "sec5e_metadata_accesses", "sec5e_metadata_accesses_ci",
            "fig11_hash_sweep_write_latency",
            "fig12_hash_sweep_execution_time",
            "dash_latency_tails", "dash_attribution",
            "sec5f_space_overheads",
        }
        assert manifest.stats_files == [
            "fig10_execution_time.stats.txt",
            "fig9_write_latency.stats.txt",
            "sec5e_metadata_accesses.stats.txt",
        ]

    def test_status_manifest_contents(self, campaign_dir, tmp_path):
        manifest = write_bundle(campaign_dir, tmp_path / "out",
                                resamples=50, seed=7)
        status = manifest.status_path.read_text()
        assert status.startswith("# Report bundle")
        assert "seed 7, 50 bootstrap resamples" in status
        assert f"{len(WORKLOADS) * len(SCHEMES) + 2} cached campaign " \
            "cells" in status
        for artifact in manifest.artifacts:
            assert f"`{artifact.spec_file()}`" in status
            spec_hash = content_hash(artifact.spec_str())[:16]
            assert f"`{spec_hash}`" in status
        assert "## Stats tables" in status

    def test_rewrite_clears_stale_artifacts(self, campaign_dir,
                                            tmp_path):
        out = tmp_path / "out"
        write_bundle(campaign_dir, out, resamples=50)
        stale = out / "old_figure.vl.json"
        stale.write_text("{}")
        write_bundle(campaign_dir, out, resamples=50)
        assert not stale.exists()

    def test_no_overheads_drops_sec5f(self, campaign_dir, tmp_path):
        manifest = write_bundle(campaign_dir, tmp_path / "out",
                                resamples=50, overheads=False)
        names = {artifact.name for artifact in manifest.artifacts}
        assert "sec5f_space_overheads" not in names

    def test_perf_snapshots_add_trajectory(self, campaign_dir,
                                           tmp_path):
        report = {"schema_version": 1, "benchmarks": {
            "access_loop": {"accesses_per_sec": 90000.0,
                            "wall_seconds": 1.1}}}
        manifest = write_bundle(
            campaign_dir, tmp_path / "out", resamples=50,
            perf_snapshots=[("pre", report), ("post", report)])
        names = {artifact.name for artifact in manifest.artifacts}
        assert "dash_perf_trajectory" in names
        rows = (tmp_path / "out" / "dash_perf_trajectory.csv") \
            .read_text().splitlines()
        assert rows[0] == \
            "snapshot,benchmark,accesses_per_sec,wall_seconds"
        assert len(rows) == 3

    def test_empty_campaign_is_config_error(self, tmp_path):
        (tmp_path / "cache" / "objects").mkdir(parents=True)
        with pytest.raises(ConfigError, match="no readable cells"):
            write_bundle(tmp_path, tmp_path / "out")

    def test_stats_tables_mention_method(self, campaign_dir, tmp_path):
        manifest = write_bundle(campaign_dir, tmp_path / "out",
                                resamples=50)
        text = (tmp_path / "out" /
                "fig9_write_latency.stats.txt").read_text()
        assert "bootstrap 95% CI (50 resamples" in text
        assert "paired sign-flip permutation test vs scue" in text

    def test_attribution_shares_sum_to_one(self, campaign_dir,
                                           tmp_path):
        write_bundle(campaign_dir, tmp_path / "out", resamples=50)
        rows = (tmp_path / "out" / "dash_attribution.csv") \
            .read_text().splitlines()[1:]
        shares = {}
        for row in rows:
            scheme, _component, _cycles, share = row.split(",")
            shares[scheme] = shares.get(scheme, 0.0) + float(share)
        assert shares
        for scheme, total in shares.items():
            assert total == pytest.approx(1.0, abs=1e-6), scheme

    def test_specs_parse_as_canonical_json(self, campaign_dir,
                                           tmp_path):
        write_bundle(campaign_dir, tmp_path / "out", resamples=50)
        for path in (tmp_path / "out").glob("*.vl.json"):
            text = path.read_text()
            spec = json.loads(text)
            assert json.dumps(spec, sort_keys=True, indent=2) + "\n" \
                == text
