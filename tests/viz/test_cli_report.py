"""The ``repro-sim report`` verb end to end (no subprocess)."""

import json

from repro.cli import main
from repro.viz.validate import main as validate_main


class TestReportVerb:
    def test_report_writes_validating_bundle(self, campaign_dir,
                                             tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(["report", str(campaign_dir), "--out", str(out),
                   "--resamples", "50"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "report bundle:" in output
        assert "STATUS.md" in output
        assert (out / "STATUS.md").exists()
        assert (out / "fig9_write_latency.vl.json").exists()
        assert validate_main([str(out)]) == 0

    def test_default_out_dir_is_report_subdir(self, campaign_dir,
                                              capsys):
        rc = main(["report", str(campaign_dir), "--resamples", "50"])
        assert rc == 0
        assert (campaign_dir / "report" / "STATUS.md").exists()

    def test_perf_flag_feeds_trajectory(self, campaign_dir, tmp_path,
                                        capsys):
        report = {"schema_version": 1, "benchmarks": {
            "access_loop": {"accesses_per_sec": 90000.0,
                            "wall_seconds": 1.1}}}
        perf_a = tmp_path / "BENCH_perf_pre.json"
        perf_b = tmp_path / "BENCH_perf.json"
        perf_a.write_text(json.dumps(report))
        perf_b.write_text(json.dumps(report))
        out = tmp_path / "bundle"
        rc = main(["report", str(campaign_dir), "--out", str(out),
                   "--resamples", "50",
                   "--perf", str(perf_a), "--perf", str(perf_b)])
        assert rc == 0
        assert (out / "dash_perf_trajectory.vl.json").exists()
        csv_rows = (out / "dash_perf_trajectory.csv") \
            .read_text().splitlines()
        assert "BENCH_perf_pre,access_loop" in csv_rows[1]

    def test_no_overheads_flag(self, campaign_dir, tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(["report", str(campaign_dir), "--out", str(out),
                   "--resamples", "50", "--no-overheads"])
        assert rc == 0
        assert not (out / "sec5f_space_overheads.vl.json").exists()
