"""Counter blocks: split-counter arithmetic, overflow, the dummy-counter
invariant, HMAC sealing, and serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cme.counters import (
    CounterBlock,
    MINOR_BITS,
    MINORS_PER_BLOCK,
)
from repro.errors import AddressError
from repro.util.bitfield import checked_sum
from repro.util.crypto import KeyedMac

MINOR_LIMIT = 1 << MINOR_BITS


class TestBump:
    def test_increments_minor(self):
        block = CounterBlock(0)
        assert block.bump(3) is None
        assert block.minor_of(3) == 1

    def test_marks_hmac_stale(self):
        block = CounterBlock(0)
        block.bump(0)
        assert block.hmac_stale

    def test_slot_out_of_range(self):
        with pytest.raises(AddressError):
            CounterBlock(0).bump(MINORS_PER_BLOCK)

    def test_dummy_counter_increments_by_one(self):
        block = CounterBlock(0)
        before = block.dummy_counter()
        block.bump(5)
        assert block.dummy_counter() == before + 1

    def test_overflow_resets_minors_and_bumps_major(self):
        block = CounterBlock(0)
        event = None
        for _ in range(MINOR_LIMIT):
            event = block.bump(0)
        assert event is not None
        assert block.major == 1
        assert block.minors == [0] * MINORS_PER_BLOCK

    def test_overflow_event_carries_majors(self):
        block = CounterBlock(0)
        for _ in range(MINOR_LIMIT - 1):
            block.bump(0)
        event = block.bump(0)
        assert event.old_major == 0
        assert event.new_major == 1

    def test_overflow_delta_composes_modularly(self):
        """before + delta == after (mod 2^56): the property SCUE's
        Recovery_root shortcut relies on (DESIGN.md §2)."""
        block = CounterBlock(0)
        block.bump(1)
        block.bump(2)
        for _ in range(MINOR_LIMIT - 1):
            block.bump(0)
        before = block.dummy_counter()
        event = block.bump(0)
        assert event is not None
        assert checked_sum([before, event.dummy_delta], 56) \
            == block.dummy_counter()

    @given(st.lists(st.integers(0, MINORS_PER_BLOCK - 1),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_dummy_tracks_deltas_over_any_sequence(self, slots):
        block = CounterBlock(0)
        total = 0
        for slot in slots:
            before = block.dummy_counter()
            event = block.bump(slot)
            delta = event.dummy_delta if event else 1
            total = checked_sum([total, delta], 56)
            assert checked_sum([before, delta], 56) == block.dummy_counter()
        assert total == block.dummy_counter()


class TestDummyCounter:
    def test_fresh_block_is_zero(self):
        assert CounterBlock(0).dummy_counter() == 0

    def test_combines_major_and_minors(self):
        block = CounterBlock(0, major=2, minors=[1] * MINORS_PER_BLOCK)
        assert block.dummy_counter() == 2 * MINORS_PER_BLOCK \
            + MINORS_PER_BLOCK


class TestIntegrity:
    def test_seal_verify_roundtrip(self):
        mac = KeyedMac(b"k")
        block = CounterBlock(0)
        block.bump(0)
        block.seal(mac, 0x1000, parent_counter=1)
        assert block.verify(mac, 0x1000, 1)
        assert not block.hmac_stale

    def test_wrong_parent_counter_fails(self):
        mac = KeyedMac(b"k")
        block = CounterBlock(0)
        block.bump(0)
        block.seal(mac, 0x1000, 1)
        assert not block.verify(mac, 0x1000, 2)

    def test_wrong_address_fails(self):
        mac = KeyedMac(b"k")
        block = CounterBlock(0)
        block.bump(0)
        block.seal(mac, 0x1000, 1)
        assert not block.verify(mac, 0x1040, 1)

    def test_tampered_counter_fails(self):
        mac = KeyedMac(b"k")
        block = CounterBlock(0)
        block.bump(0)
        block.seal(mac, 0x1000, 1)
        block.minors[5] += 1
        assert not block.verify(mac, 0x1000, 1)

    def test_blank_block_verifies_iff_parent_zero(self):
        mac = KeyedMac(b"k")
        block = CounterBlock(0)
        assert block.is_blank
        assert block.verify(mac, 0x1000, 0)
        assert not block.verify(mac, 0x1000, 1)

    def test_bumped_block_not_blank(self):
        block = CounterBlock(0)
        block.bump(0)
        assert not block.is_blank


class TestSerialisation:
    def test_roundtrip(self):
        mac = KeyedMac(b"k")
        block = CounterBlock(3)
        for slot in (0, 5, 5, 63):
            block.bump(slot)
        block.seal(mac, 0x40, 4)
        image = block.to_bytes()
        assert len(image) == 64
        restored = CounterBlock.from_bytes(3, image)
        assert restored.major == block.major
        assert restored.minors == block.minors
        assert restored.hmac == block.hmac

    @given(st.integers(0, 2**20),
           st.lists(st.integers(0, MINOR_LIMIT - 1),
                    min_size=MINORS_PER_BLOCK, max_size=MINORS_PER_BLOCK),
           st.integers(0, 2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_arbitrary_state(self, major, minors, hmac):
        block = CounterBlock(0, major=major, minors=list(minors), hmac=hmac)
        restored = CounterBlock.from_bytes(0, block.to_bytes())
        assert restored.major == major
        assert restored.minors == list(minors)
        assert restored.hmac == hmac

    def test_clone_is_independent(self):
        block = CounterBlock(0)
        clone = block.clone()
        block.bump(0)
        assert clone.minor_of(0) == 0
