"""Counter-mode encryption over the simulated NVM."""

import pytest

from repro.cme.counters import CounterBlock, MINORS_PER_BLOCK
from repro.cme.encryption import CMEEngine
from repro.errors import ConfigError
from repro.mem.address import AddressMap
from repro.mem.nvm import NVMDevice

CAP = 1024 * 1024


@pytest.fixture
def amap():
    return AddressMap(CAP)


@pytest.fixture
def engine(amap):
    return CMEEngine(amap)


class TestEncryptDecrypt:
    def test_roundtrip(self, engine):
        block = CounterBlock(0)
        block.bump(1)
        plaintext = bytes(range(64))
        ciphertext = engine.encrypt(64, plaintext, block)
        assert ciphertext != plaintext
        assert engine.decrypt(64, ciphertext, block) == plaintext

    def test_counter_change_breaks_decryption(self, engine):
        block = CounterBlock(0)
        block.bump(1)
        ciphertext = engine.encrypt(64, bytes(64), block)
        block.bump(1)  # pad changes with the counter
        assert engine.decrypt(64, ciphertext, block) != bytes(64)

    def test_same_plaintext_different_addresses_differ(self, engine):
        block = CounterBlock(0)
        assert engine.encrypt(0, bytes(64), block) \
            != engine.encrypt(64, bytes(64), block)

    def test_same_plaintext_after_bump_differs(self, engine):
        """OTP freshness: re-encrypting the same data after a counter bump
        must produce different ciphertext (no pad reuse, §II-B)."""
        block = CounterBlock(0)
        first = engine.encrypt(64, bytes(64), block)
        block.bump(1)
        second = engine.encrypt(64, bytes(64), block)
        assert first != second

    def test_stats_counted(self, engine):
        block = CounterBlock(0)
        engine.encrypt(0, bytes(64), block)
        engine.decrypt(0, bytes(64), block)
        assert engine.stats.counter("encrypts").value == 1
        assert engine.stats.counter("decrypts").value == 1


class TestReencryptBlock:
    def test_reencrypts_all_covered_lines(self, amap, engine):
        nvm = NVMDevice(amap.total_capacity)
        block = CounterBlock(0)
        # Write two lines under the original counters.
        plain = {0: b"\x11" * 64, 64: b"\x22" * 64}
        for addr, data in plain.items():
            nvm.poke_line(addr, engine.encrypt(addr, data, block))
        old_minors = list(block.minors)
        old_major = block.major
        # Simulate a major bump (what overflow does).
        block.major += 1
        block.minors = [0] * MINORS_PER_BLOCK
        rewritten = engine.reencrypt_block(nvm, block, old_major, old_minors)
        assert rewritten == MINORS_PER_BLOCK
        for addr, data in plain.items():
            assert engine.decrypt(addr, nvm.peek_line(addr), block) == data

    def test_requires_full_minor_snapshot(self, amap, engine):
        nvm = NVMDevice(amap.total_capacity)
        block = CounterBlock(0)
        with pytest.raises(ConfigError):
            engine.reencrypt_block(nvm, block, 0, [0, 1, 2])
