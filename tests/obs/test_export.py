"""Chrome-trace export + structural validation: B/E pairing, timestamp
ordering, track metadata, and the attribution cross-check embedded in
``otherData``."""

import json

import pytest

from repro.obs import events as ev
from repro.obs.attribution import AttributionLedger, check_attribution
from repro.obs.export import (
    attribution_report,
    histogram_report,
    save_chrome_trace,
    to_chrome_trace,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.validate import validate_chrome_trace, validate_file
from repro.errors import ObservabilityError


def _recorder_with_traffic() -> TraceRecorder:
    rec = TraceRecorder()
    rec.span(ev.EV_READ, ev.TRACK_CPU, 0, 50, addr=0)
    rec.instant(ev.EV_NVM_READ, ev.TRACK_NVM, ts=10, addr=0)
    rec.span(ev.EV_PERSIST, ev.TRACK_CPU, 50, 100, addr=64)
    rec.instant(ev.EV_WPQ_ENQUEUE, ev.TRACK_WPQ, ts=60, addr=64)
    rec.instant(ev.EV_ROOT_UPDATE, ev.TRACK_ROOT, ts=80,
                register="recovery_root")
    return rec


class TestChromeTraceStructure:
    def test_validates_clean(self):
        payload = to_chrome_trace(_recorder_with_traffic(),
                                  scheme="scue", workload="test")
        assert validate_chrome_trace(payload) == []

    def test_process_and_thread_metadata(self):
        payload = to_chrome_trace(_recorder_with_traffic(), scheme="scue")
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"cpu", "wpq", "nvm", "root"}
        process = [e for e in meta if e["name"] == "process_name"]
        assert "scue" in process[0]["args"]["name"]

    def test_spans_expand_to_balanced_pairs(self):
        payload = to_chrome_trace(_recorder_with_traffic())
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) == 2

    def test_timestamps_monotonic_in_file_order(self):
        payload = to_chrome_trace(_recorder_with_traffic())
        ts = [e["ts"] for e in payload["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_back_to_back_spans_close_before_opening(self):
        # E at ts==50 must precede the next span's B at ts==50, or the
        # viewer nests them.
        payload = to_chrome_trace(_recorder_with_traffic())
        at_50 = [e["ph"] for e in payload["traceEvents"]
                 if e.get("ts") == 50]
        assert at_50.index("E") < at_50.index("B")

    def test_tids_are_stable_track_indices(self):
        payload = to_chrome_trace(_recorder_with_traffic())
        cpu_events = [e for e in payload["traceEvents"]
                      if e.get("cat") == ev.TRACK_CPU]
        assert {e["tid"] for e in cpu_events} == \
            {ev.ALL_TRACKS.index(ev.TRACK_CPU)}

    def test_other_data_carries_attribution(self):
        payload = to_chrome_trace(
            _recorder_with_traffic(),
            attribution={"cpu": 60, "read_media": 40}, total_cycles=100)
        assert payload["otherData"]["attribution"]["cpu"] == 60
        assert payload["otherData"]["total_cycles"] == 100
        assert validate_chrome_trace(payload) == []

    def test_save_and_validate_file(self, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(_recorder_with_traffic(), path, scheme="scue")
        assert validate_file(path) == []
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"


class TestValidatorCatchesCorruption:
    def _payload(self):
        return to_chrome_trace(_recorder_with_traffic())

    def test_empty_trace_rejected(self):
        assert validate_chrome_trace({"traceEvents": []})

    def test_unbalanced_begin_detected(self):
        payload = self._payload()
        payload["traceEvents"] = [
            e for e in payload["traceEvents"] if e["ph"] != "E"]
        assert any("unclosed" in problem
                   for problem in validate_chrome_trace(payload))

    def test_orphan_end_detected(self):
        payload = self._payload()
        payload["traceEvents"] = [
            e for e in payload["traceEvents"] if e["ph"] != "B"]
        assert any("empty stack" in problem
                   for problem in validate_chrome_trace(payload))

    def test_non_monotonic_ts_detected(self):
        payload = self._payload()
        events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        events[0], events[-1] = events[-1], events[0]
        payload["traceEvents"] = events
        assert any("monotonic" in problem
                   for problem in validate_chrome_trace(payload))

    def test_attribution_mismatch_detected(self):
        payload = to_chrome_trace(_recorder_with_traffic(),
                                  attribution={"cpu": 1}, total_cycles=2)
        assert any("attribution" in problem
                   for problem in validate_chrome_trace(payload))

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        assert validate_file(path)


class TestAttribution:
    def test_ledger_charges_and_totals(self):
        ledger = AttributionLedger()
        ledger.charge("cpu", 10)
        ledger.charge("write_wpq", 5)
        assert ledger.total == 15
        assert ledger.to_dict()["cpu"] == 10

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            AttributionLedger().charge("made_up", 1)

    def test_reset(self):
        ledger = AttributionLedger()
        ledger.charge("recovery", 3)
        ledger.reset()
        assert ledger.total == 0

    def test_check_passes_on_exact_sum(self):
        check_attribution({"cpu": 6, "read_media": 4}, 10)

    def test_check_raises_on_gap(self):
        with pytest.raises(ObservabilityError, match="does not sum"):
            check_attribution({"cpu": 6}, 10, context="scue/test")

    def test_check_raises_on_negative(self):
        with pytest.raises(ObservabilityError, match="negative"):
            check_attribution({"cpu": 12, "read_media": -2}, 10)


class TestTextReports:
    def test_attribution_report_marks_exact_sum_ok(self):
        text = attribution_report({"cpu": 60, "read_media": 40}, 100)
        assert "OK" in text
        assert "MISMATCH" not in text
        assert "cpu" in text

    def test_attribution_report_flags_mismatch(self):
        assert "MISMATCH" in attribution_report({"cpu": 1}, 100)

    def test_histogram_report_lists_metrics(self):
        text = histogram_report({
            "controller.write_latency":
                {"count": 3, "mean": 10.0, "p50": 8, "p95": 15,
                 "p99": 15, "max": 15}})
        assert "controller.write_latency" in text
        assert "p99" in text
