"""End-to-end observability: traced runs across every scheme produce
valid Chrome traces, attribution sums exactly to simulated cycles, stats
reset cleanly at the warm-up boundary, and the recorder coexists with
the persist-order sanitizer without reordering its event stream."""

import pytest

from repro.analysis import attach_sanitizer
from repro.obs import events as ev
from repro.obs.attribution import ATTRIBUTION_COMPONENTS
from repro.obs.export import to_chrome_trace
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.obs.validate import validate_chrome_trace
from repro.secure import SCHEMES
from repro.sim.system import System

from tests.conftest import persist_trace, random_trace, small_config

ALL = sorted(SCHEMES)


def traced_run(scheme: str, trace=None) -> tuple[System, TraceRecorder]:
    recorder = TraceRecorder()
    system = System(small_config(scheme), recorder=recorder)
    system.run(trace if trace is not None else random_trace(120))
    return system, recorder


class TestAttributionInvariant:
    @pytest.mark.parametrize("scheme", ALL)
    def test_attribution_sums_to_cycles(self, scheme):
        system, _ = traced_run(scheme)
        result = system.result("mixed")  # result() re-checks the sum
        assert sum(result.attribution.values()) == result.cycles
        assert set(result.attribution) == set(ATTRIBUTION_COMPONENTS)

    @pytest.mark.parametrize("scheme", ALL)
    def test_attribution_sums_without_tracing(self, scheme):
        system = System(small_config(scheme))
        system.run(persist_trace(80))
        result = system.result("persist")
        assert sum(result.attribution.values()) == result.cycles
        assert result.attribution["cpu"] > 0

    def test_persist_heavy_traffic_charges_write_components(self):
        system = System(small_config("scue"))
        system.run(persist_trace(120))
        attr = system.result("persist").attribution
        assert attr["write_scheme"] > 0

    def test_histograms_land_in_result(self):
        system, _ = traced_run("scue")
        result = system.result("mixed")
        write = result.histograms["controller.write_latency"]
        assert write["count"] == result.persists + result.stores \
            or write["count"] > 0
        assert write["p99"] is not None
        assert result.avg_write_latency == pytest.approx(write["mean"])


class TestTracedRuns:
    @pytest.mark.parametrize("scheme", ALL)
    def test_trace_exports_valid_chrome_json(self, scheme):
        system, recorder = traced_run(scheme)
        result = system.result("mixed")
        payload = to_chrome_trace(recorder, scheme=scheme,
                                  workload="mixed",
                                  attribution=result.attribution,
                                  total_cycles=result.cycles)
        assert validate_chrome_trace(payload) == []
        assert len(recorder) > 0

    def test_expected_event_mix_for_scue(self):
        _, recorder = traced_run("scue", persist_trace(100))
        names = {event.name for event in recorder}
        assert ev.EV_WRITE_OP in names
        assert ev.EV_ROOT_UPDATE in names
        assert ev.EV_WPQ_ENQUEUE in names
        assert ev.EV_NVM_WRITE in names
        assert ev.EV_HMAC in names

    def test_event_names_stay_in_taxonomy(self):
        _, recorder = traced_run("scue")
        for event in recorder:
            assert event.name in ev.ALL_EVENTS
            assert event.track in ev.ALL_TRACKS

    def test_null_recorder_records_nothing(self):
        system = System(small_config("scue"))
        assert system.obs is NULL_RECORDER
        system.run(random_trace(50))
        assert len(system.obs) == 0

    def test_ring_buffer_bounds_a_system_run(self):
        recorder = TraceRecorder(capacity=64)
        system = System(small_config("scue"), recorder=recorder)
        system.run(random_trace(200))
        assert len(recorder) == 64
        payload = to_chrome_trace(recorder)
        assert validate_chrome_trace(payload) == []

    def test_crash_and_recovery_are_traced(self):
        system, recorder = traced_run("scue", persist_trace(60))
        system.crash()
        report = system.recover()
        assert report.success
        names = [event.name for event in recorder]
        assert ev.EV_CRASH in names
        assert ev.EV_RECOVERY in names
        assert names.index(ev.EV_CRASH) < names.index(ev.EV_RECOVERY)


class TestResetRoundTrip:
    def test_reset_zeroes_every_counter_between_windows(self):
        """The warm-up boundary: after reset_stats, every statistic the
        result reports starts from zero — warm-up traffic cannot leak
        into the measured window."""
        system = System(small_config("scue"))
        system.run(random_trace(100, seed=1))   # warm-up window
        system.reset_stats()
        baseline = system.result("empty")        # immediately after reset
        assert baseline.cycles == 0
        assert baseline.instructions == 0
        assert baseline.loads == 0
        assert baseline.persists == 0
        assert sum(baseline.attribution.values()) == 0
        assert baseline.avg_write_latency == 0.0
        for snapshot in baseline.histograms.values():
            assert snapshot["count"] == 0
        for key, value in baseline.stats.items():
            assert value == 0, f"{key} leaked through reset_stats"

    def test_measured_window_after_reset_is_self_consistent(self):
        system = System(small_config("scue"))
        system.run(random_trace(80, seed=2))
        system.reset_stats()
        system.run(random_trace(80, seed=3))
        result = system.result("measured")
        assert result.cycles > 0
        assert sum(result.attribution.values()) == result.cycles


class TestSanitizerCoexistence:
    def test_traced_run_under_sanitizer_stays_ordered(self):
        """Tracing must not perturb the persist-order rules: run SCUE
        with both the sanitizer and the recorder attached, then check
        the recorded stream respects the same ordering the sanitizer
        enforces on the write path."""
        recorder = TraceRecorder()
        system = System(small_config("scue"), recorder=recorder)
        sanitizer = attach_sanitizer(system.controller, collect=True)
        system.run(persist_trace(80))
        assert sanitizer.violations == []

        # WPQ conservation in recorded order: at no prefix of the stream
        # have more entries drained than were enqueued.
        outstanding = 0
        for event in recorder:
            if event.name == ev.EV_WPQ_ENQUEUE:
                outstanding += 1
            elif event.name == ev.EV_WPQ_DRAIN:
                outstanding -= 1
                assert outstanding >= 0, "drain recorded before enqueue"

        # SCUE's shortcut: every persisted leaf was preceded (in the
        # recorded stream) by at least as many root-register updates.
        roots = leaves = 0
        for event in recorder:
            if event.name == ev.EV_ROOT_UPDATE:
                roots += 1
            elif event.name == ev.EV_LEAF_PERSIST:
                leaves += 1
                assert roots >= leaves, \
                    "leaf persisted before its root update was recorded"
