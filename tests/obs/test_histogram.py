"""LatencyHistogram math: bucket boundaries, percentile estimation on
skewed data, bucket-wise merging, and serialization round-trips."""

import json
import random

import pytest

from repro.obs.histogram import LatencyHistogram


class TestBuckets:
    def test_bucket_zero_holds_only_zero(self):
        assert LatencyHistogram.bucket_bounds(0) == (0, 0)

    @pytest.mark.parametrize("index", [1, 2, 3, 7, 10])
    def test_power_of_two_bounds(self, index):
        low, high = LatencyHistogram.bucket_bounds(index)
        assert low == 1 << (index - 1)
        assert high == (1 << index) - 1

    def test_samples_land_in_their_bucket(self):
        hist = LatencyHistogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            hist.add(value)
        for idx, count in enumerate(hist.counts):
            if not count:
                continue
            low, high = LatencyHistogram.bucket_bounds(idx)
            matching = [v for v in (0, 1, 2, 3, 4, 7, 8, 1023, 1024)
                        if low <= v <= high]
            assert len(matching) == count

    def test_boundary_values_split_buckets(self):
        hist = LatencyHistogram()
        hist.add(7)    # bucket 3: [4, 7]
        hist.add(8)    # bucket 4: [8, 15]
        assert hist.counts[3] == 1
        assert hist.counts[4] == 1

    def test_huge_value_saturates_top_bucket(self):
        hist = LatencyHistogram()
        hist.add(1 << 100)
        assert sum(hist.counts) == 1
        assert hist.counts[-1] == 1
        assert hist.maximum == 1 << 100


class TestStatistics:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.p50 is None
        assert hist.p99 is None
        assert hist.minimum is None
        assert hist.maximum is None

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        for value in (10, 20, 30):
            hist.add(value)
        assert hist.mean == 20.0

    def test_weighted_add(self):
        hist = LatencyHistogram()
        hist.add(100, weight=5)
        assert hist.count == 5
        assert hist.total == 500

    def test_percentile_never_exceeds_max(self):
        hist = LatencyHistogram()
        for value in (3, 5, 9):
            hist.add(value)
        assert hist.p99 == 9  # bucket upper bound 15, clamped to max

    def test_p99_tracks_the_tail_on_skewed_data(self):
        """900 fast ops + 10 slow ones: the mean hides the tail, p99
        lands in the slow band — the whole point of the histogram."""
        hist = LatencyHistogram()
        for _ in range(900):
            hist.add(30)
        for _ in range(10):
            hist.add(4000)
        assert hist.mean < 100
        assert hist.p50 == 31        # bucket [16, 31]
        assert hist.p99 >= 4000
        assert hist.p99 <= hist.maximum

    def test_p50_on_uniform_data(self):
        hist = LatencyHistogram()
        rng = random.Random(11)
        values = [rng.randrange(1, 1000) for _ in range(1000)]
        for value in values:
            hist.add(value)
        exact = sorted(values)[len(values) // 2]
        estimate = hist.percentile(50)
        low, high = LatencyHistogram.bucket_bounds(exact.bit_length())
        # The estimate is the upper bound of the true median's bucket
        # (clamped): within one power-of-two band of the exact median.
        assert estimate <= high
        assert estimate >= exact // 2


class TestMerge:
    def test_merge_equals_combined_stream(self):
        a, b, combined = (LatencyHistogram() for _ in range(3))
        rng = random.Random(3)
        for _ in range(200):
            value = rng.randrange(0, 5000)
            (a if rng.random() < 0.5 else b).add(value)
            combined.add(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.total == combined.total
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum
        assert a.p99 == combined.p99

    def test_merge_empty_is_identity(self):
        hist = LatencyHistogram()
        hist.add(42)
        before = hist.to_dict()
        hist.merge(LatencyHistogram())
        assert hist.to_dict() == before

    def test_merge_into_empty(self):
        hist = LatencyHistogram()
        other = LatencyHistogram()
        other.add(7)
        hist.merge(other)
        assert hist.count == 1
        assert hist.minimum == 7


class TestSerialization:
    def test_round_trip(self):
        hist = LatencyHistogram("write")
        for value in (0, 1, 100, 10000):
            hist.add(value)
        data = json.loads(json.dumps(hist.to_dict()))
        restored = LatencyHistogram.from_dict(data, name="write")
        assert restored.counts == hist.counts
        assert restored.count == hist.count
        assert restored.total == hist.total
        assert restored.p99 == hist.p99

    def test_to_dict_is_json_clean_when_empty(self):
        data = LatencyHistogram().to_dict()
        # No inf/-inf sentinels anywhere: json must accept it untouched.
        encoded = json.dumps(data)
        assert "Infinity" not in encoded
        assert data["min"] is None
        assert data["max"] is None
        assert data["buckets"] == []

    def test_bucket_list_is_trimmed(self):
        hist = LatencyHistogram()
        hist.add(5)  # bucket 3
        assert len(hist.to_dict()["buckets"]) == 4

    def test_reset(self):
        hist = LatencyHistogram()
        hist.add(9)
        hist.reset()
        assert hist.count == 0
        assert hist.to_dict() == LatencyHistogram().to_dict()


class TestDegenerateSnapshots:
    """Edge cases that used to raise: zero-count percentiles and
    truncated ``from_dict`` snapshots the dashboard merge path sees."""

    def test_percentiles_on_empty_are_none(self):
        hist = LatencyHistogram()
        assert hist.percentile(50) is None
        assert hist.p50 is None and hist.p95 is None and hist.p99 is None
        assert hist.mean == 0.0

    def test_merge_two_empties_stays_empty(self):
        hist = LatencyHistogram()
        hist.merge(LatencyHistogram())
        assert hist.count == 0
        assert hist.p99 is None
        assert hist.minimum is None and hist.maximum is None

    def test_from_dict_without_max_does_not_raise(self):
        # A snapshot truncated to just buckets+count has no "max" to
        # clamp against; percentile returns the bucket bound instead of
        # raising TypeError on min(high, None).
        hist = LatencyHistogram.from_dict({"count": 3,
                                           "buckets": [0, 1, 2]})
        assert hist.maximum is None
        assert hist.percentile(99) == 3  # bucket 2 upper bound
        assert hist.p50 == 3

    def test_from_dict_without_count_infers_from_buckets(self):
        hist = LatencyHistogram.from_dict({"buckets": [1, 0, 4]})
        assert hist.count == 5
        assert hist.percentile(50) is not None

    def test_from_dict_empty_dict_is_empty_histogram(self):
        hist = LatencyHistogram.from_dict({})
        assert hist.count == 0
        assert hist.p99 is None
        hist.merge(LatencyHistogram())  # still inert
        assert hist.to_dict()["buckets"] == []

    def test_merge_truncated_snapshot_into_live_histogram(self):
        live = LatencyHistogram()
        live.add(10)
        live.merge(LatencyHistogram.from_dict({"buckets": [0, 0, 2]}))
        assert live.count == 3
        assert live.maximum == 10  # snapshot had no max to contribute
        assert live.p99 == 10
