"""TraceRecorder/NullRecorder semantics: event capture, the carried
``now`` timestamp, ring-buffer eviction, and the null default's
zero-allocation contract."""

from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder


class TestNullRecorder:
    def test_disabled_and_inert(self):
        null = NullRecorder()
        assert null.enabled is False
        null.set_now(100)
        null.instant("x", "cpu")
        null.span("y", "cpu", 0, 10)
        assert len(null) == 0
        assert null.now == 0

    def test_shared_instance(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_enabled_is_a_class_attribute(self):
        # The hot-path guard reads `enabled` without instance dict
        # lookups; it must live on the class.
        assert "enabled" in NullRecorder.__dict__
        assert "enabled" in TraceRecorder.__dict__


class TestTraceRecorder:
    def test_instant_uses_carried_now(self):
        rec = TraceRecorder()
        rec.set_now(55)
        rec.instant(ev.EV_NVM_READ, ev.TRACK_NVM, addr=64)
        (event,) = rec.events
        assert event.ts == 55
        assert event.args == {"addr": 64}
        assert not event.is_span

    def test_explicit_ts_overrides_now(self):
        rec = TraceRecorder()
        rec.set_now(55)
        rec.instant(ev.EV_WPQ_DRAIN, ev.TRACK_WPQ, ts=40)
        assert rec.events[0].ts == 40

    def test_span_records_duration(self):
        rec = TraceRecorder()
        rec.span(ev.EV_READ, ev.TRACK_CPU, 10, 90, addr=0)
        (event,) = rec.events
        assert event.is_span
        assert event.dur == 90

    def test_seq_is_monotonic(self):
        rec = TraceRecorder()
        for _ in range(5):
            rec.instant("a", "cpu")
        seqs = [event.seq for event in rec]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_link_ids_are_unique(self):
        rec = TraceRecorder()
        assert rec.link() != rec.link()

    def test_clear(self):
        rec = TraceRecorder()
        rec.instant("a", "cpu")
        rec.clear()
        assert len(rec) == 0


class TestRingBuffer:
    def test_keeps_most_recent_events(self):
        rec = TraceRecorder(capacity=3)
        for i in range(10):
            rec.instant("a", "cpu", ts=i)
        assert len(rec) == 3
        assert [event.ts for event in rec] == [7, 8, 9]

    def test_eviction_drops_whole_spans(self):
        # Spans are single records until export: a ring evicting one can
        # never strand a B without its E.
        rec = TraceRecorder(capacity=2)
        rec.span("persist", ev.TRACK_CPU, 0, 10)
        rec.span("persist", ev.TRACK_CPU, 10, 10)
        rec.span("persist", ev.TRACK_CPU, 20, 10)
        assert all(event.is_span for event in rec)
        assert len(rec) == 2

    def test_unbounded_by_default(self):
        rec = TraceRecorder()
        for i in range(1000):
            rec.instant("a", "cpu", ts=i)
        assert len(rec) == 1000
