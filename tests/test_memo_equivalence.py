"""Equivalence and safety of the hot-path memoization layer.

The optimization contract (docs/performance.md) has two halves:

* **equivalence** — every memoized function returns exactly what its
  unmemoized original returned, for every input;
* **safety** — all memos are keyed by the *content* they summarise, so a
  cached answer can never survive a mutation of that content.  In
  particular, attack injection (``repro.crash.attacks``) tampers with
  counters by in-place mutation, and a verify answered from the cache
  moments earlier must still recompute — and fail — afterwards.
"""

import random

import pytest

from repro.cme.counters import MINOR_LIMIT, MINORS_PER_BLOCK, CounterBlock
from repro.errors import IntegrityError
from repro.mem.address import COUNTER_BITS_FOR_ARITY, AddressMap
from repro.tree.node import SITNode
from repro.util.crypto import KeyedMac

from tests.conftest import SMALL_CAPACITY, TINY_CAPACITY
from tests.secure.test_runtime_detection import SECURE, force_refetch, warmed


# ----------------------------------------------------------------------
# AddressMap.branch_coords
# ----------------------------------------------------------------------
def reference_branch(amap: AddressMap, block_index: int):
    """The unmemoized original: an explicit parent_coords walk from the
    leaf to just below the on-chip root."""
    coords = [(0, block_index)]
    level, index = 0, block_index
    while level + 1 < amap.tree_levels:
        level, index = amap.parent_coords(level, index)
        coords.append((level, index))
    return tuple(coords)


class TestBranchCoordsMemo:
    @pytest.mark.parametrize("capacity", [SMALL_CAPACITY, TINY_CAPACITY])
    def test_matches_reference_across_full_address_space(self, capacity):
        amap = AddressMap(capacity)
        for block in range(amap.num_counter_blocks):
            assert amap.branch_coords(block) \
                == reference_branch(amap, block)

    def test_chains_are_interned(self):
        amap = AddressMap(SMALL_CAPACITY)
        assert amap.branch_coords(7) is amap.branch_coords(7)

    def test_memo_is_per_instance(self):
        one, two = AddressMap(SMALL_CAPACITY), AddressMap(SMALL_CAPACITY)
        assert one.branch_coords(3) == two.branch_coords(3)

    def test_levels_ascend_leaf_to_below_root(self):
        amap = AddressMap(SMALL_CAPACITY)
        chain = amap.branch_coords(0)
        assert [level for level, _ in chain] \
            == list(range(amap.tree_levels))


# ----------------------------------------------------------------------
# KeyedMac
# ----------------------------------------------------------------------
class TestKeyedMacMemo:
    def test_memoized_equals_uncached(self):
        memoized = KeyedMac(b"equivalence-key")
        reference = KeyedMac(b"equivalence-key")
        rng = random.Random(5)
        for _ in range(200):
            parts = tuple(
                rng.randrange(1 << 40) if rng.random() < 0.5
                else rng.randbytes(rng.randrange(1, 40))
                for _ in range(rng.randrange(1, 4)))
            assert memoized.mac(*parts) == reference.mac_uncached(*parts)
            # Second call is a memo hit and must agree too.
            assert memoized.mac(*parts) == reference.mac_uncached(*parts)

    def test_memo_cap_clears_without_changing_values(self):
        mac = KeyedMac(b"cap-key")
        mac.MEMO_LIMIT = 8
        values = {i: mac.mac(i, b"x") for i in range(50)}
        assert len(mac.memo) <= 8
        for i, value in values.items():
            assert mac.mac(i, b"x") == value

    def test_different_keys_still_differ(self):
        assert KeyedMac(b"key-a").mac(1) != KeyedMac(b"key-b").mac(1)


# ----------------------------------------------------------------------
# Tamper after a cached verify (unit level)
# ----------------------------------------------------------------------
class TestTamperAfterCachedVerify:
    def test_leaf_minor_tamper(self):
        mac = KeyedMac(b"leaf-tamper")
        leaf = CounterBlock(0, major=3, minors=[1] * MINORS_PER_BLOCK)
        leaf.seal(mac, node_addr=0x1000, parent_counter=7)
        assert leaf.verify(mac, 0x1000, 7)
        assert leaf.verify(mac, 0x1000, 7)   # answered from the memo
        leaf.minors[5] += 1                  # roll_forward_leaf's mutation
        assert not leaf.verify(mac, 0x1000, 7)

    def test_leaf_major_tamper(self):
        mac = KeyedMac(b"leaf-tamper")
        leaf = CounterBlock(1, major=9, minors=[2] * MINORS_PER_BLOCK)
        leaf.seal(mac, 0x1040, 4)
        assert leaf.verify(mac, 0x1040, 4)
        leaf.major += 1
        assert not leaf.verify(mac, 0x1040, 4)

    def test_leaf_restore_reverifies(self):
        """Undoing the tamper restores the original memo key, so the
        block verifies again — the cache holds no stale negatives."""
        mac = KeyedMac(b"leaf-tamper")
        leaf = CounterBlock(2, major=5, minors=[3] * MINORS_PER_BLOCK)
        leaf.seal(mac, 0x1080, 2)
        assert leaf.verify(mac, 0x1080, 2)
        leaf.minors[0] += 1
        assert not leaf.verify(mac, 0x1080, 2)
        leaf.minors[0] -= 1
        assert leaf.verify(mac, 0x1080, 2)

    def test_sit_node_counter_tamper(self):
        mac = KeyedMac(b"node-tamper")
        node = SITNode(level=2, index=4, counters=[9] * 8)
        node.seal(mac, node_addr=0x2000, parent_counter=3)
        assert node.verify(mac, 0x2000, 3)
        assert node.verify(mac, 0x2000, 3)   # memo hit
        node.counters[0] += 1
        assert not node.verify(mac, 0x2000, 3)

    def test_parent_counter_mismatch_not_cached_through(self):
        """A cached verify against one parent counter must not leak into
        a verify against a different (replayed) parent counter."""
        mac = KeyedMac(b"node-tamper")
        node = SITNode(level=1, index=0, counters=[4] * 8)
        node.seal(mac, 0x3000, 11)
        assert node.verify(mac, 0x3000, 11)
        assert not node.verify(mac, 0x3000, 10)


# ----------------------------------------------------------------------
# Tamper after cached verifies (controller level)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SECURE)
class TestControllerDetectionWithWarmMemos:
    """The runtime-detection suite, replayed with deliberately warm MAC
    memos: the warmup loop verifies the same few leaves over and over
    (every memo hot), then the media is tampered — the next fetch must
    still raise."""

    def test_leaf_tamper_detected_after_cached_verifies(self, scheme):
        controller = warmed(scheme)
        # Extra re-reads of block 0's data so its leaf verify is
        # answered from the memo several times before the tamper.
        for i in range(8):
            controller.read_data(0, cycle=10**6 + i * 100)
        addr = controller.amap.counter_block_addr(0)
        image = bytearray(controller.nvm.peek_line(addr))
        image[4] ^= 0x40
        controller.nvm.poke_line(addr, bytes(image))
        force_refetch(controller)
        with pytest.raises(IntegrityError):
            controller.read_data(0, cycle=10**8)


# ----------------------------------------------------------------------
# Serialisation memos (parse + image)
# ----------------------------------------------------------------------
class TestSerialisationMemoEquivalence:
    def test_counter_block_roundtrip_random(self):
        rng = random.Random(11)
        mac = KeyedMac()
        for _ in range(100):
            block = CounterBlock(
                rng.randrange(256), major=rng.randrange(1 << 64),
                minors=[rng.randrange(MINOR_LIMIT)
                        for _ in range(MINORS_PER_BLOCK)])
            block.seal(mac, 64, rng.randrange(1 << 56))
            raw = block.to_bytes()
            first = CounterBlock.from_bytes(block.index, raw)
            second = CounterBlock.from_bytes(block.index, raw)  # memo hit
            for parsed in (first, second):
                assert (parsed.major, parsed.minors, parsed.hmac) \
                    == (block.major, block.minors, block.hmac)
            # Parsed blocks are freely mutable: they must not share state
            # with each other or poison the parse memo.
            first.minors[0] ^= 1
            third = CounterBlock.from_bytes(block.index, raw)
            assert third.minors == block.minors

    @pytest.mark.parametrize("arity", sorted(COUNTER_BITS_FOR_ARITY))
    def test_sit_node_roundtrip_random(self, arity):
        bits = COUNTER_BITS_FOR_ARITY[arity]
        rng = random.Random(arity)
        mac = KeyedMac()
        for _ in range(50):
            node = SITNode(
                level=1, index=rng.randrange(64),
                counters=[rng.randrange(1 << bits) for _ in range(arity)],
                arity=arity)
            node.seal(mac, 4096, rng.randrange(1 << bits))
            raw = node.to_bytes()
            first = SITNode.from_bytes(1, node.index, raw, arity=arity)
            second = SITNode.from_bytes(1, node.index, raw, arity=arity)
            for parsed in (first, second):
                assert (parsed.counters, parsed.hmac) \
                    == (node.counters, node.hmac)
            first.counters[0] ^= 1
            third = SITNode.from_bytes(1, node.index, raw, arity=arity)
            assert third.counters == node.counters

    def test_image_memo_shared_across_equal_content(self):
        """Two distinct blocks with equal counters produce the identical
        image; different content produces a different image."""
        same_a = CounterBlock(0, major=7, minors=[1] * MINORS_PER_BLOCK)
        same_b = CounterBlock(9, major=7, minors=[1] * MINORS_PER_BLOCK)
        other = CounterBlock(0, major=8, minors=[1] * MINORS_PER_BLOCK)
        assert same_a._counter_image() == same_b._counter_image()
        assert same_a._counter_image() != other._counter_image()
