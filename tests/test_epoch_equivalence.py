"""Scalar/epoch engine equivalence: the byte-identical oracle as tests.

The epoch-batched engine (:mod:`repro.sim.epoch`) promises to reproduce
the scalar reference loop *exactly* — same result digest, same
cycle-attribution ledger, same latency histograms — for every scheme,
and to fall back to the scalar loop (with an unchanged event stream)
whenever anything it cannot model is attached.  These tests pin both
halves of that promise:

* every scheme, over randomized-seed mixed workloads, digests
  identically under both engines (small caches force eviction cascades,
  so the inlined flush paths are exercised, not just the happy path);
* a minor-counter overflow (>= 64 persists to one line) re-encrypts the
  block through the *real* ``_bump_leaf`` seam and still digests
  identically;
* the persist-order sanitizer's seam patches make the run ineligible:
  ``engine="auto"`` silently takes the scalar loop and the sanitizer
  observes the exact same persist-event stream as an explicit scalar
  run, while ``engine="epoch"`` refuses loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import attach_sanitizer
from repro.cme.counters import MINOR_LIMIT
from repro.errors import ConfigError
from repro.mem.trace import AccessType, MemoryAccess
from repro.perf.harness import result_digest
from repro.secure import vector
from repro.sim import epoch
from repro.sim.system import System

from tests.conftest import random_trace, small_config

needs_numpy = pytest.mark.skipif(
    not vector.HAVE_NUMPY, reason="epoch engine requires numpy")

SCHEMES = ("baseline", "lazy", "eager", "plp", "bmf-ideal", "scue")


def build_system(scheme: str, engine: str, **overrides) -> System:
    # check_data is a shadow-verification debug mode the epoch engine
    # does not transcribe; the equivalence runs use the production
    # setting (off) so both engines are eligible for comparison.
    config = small_config(scheme, check_data=False, **overrides)
    return System(config, engine=engine)


def run_trace(scheme: str, trace, engine: str, **overrides) -> System:
    system = build_system(scheme, engine, **overrides)
    system.run(iter(trace))
    return system


def hot_line_trace(persists: int) -> list[MemoryAccess]:
    """Hammer one data line with persists (plus a neighbour read per
    round so the branch stays warm the way real traffic keeps it)."""
    trace = []
    for i in range(persists):
        trace.append(MemoryAccess(AccessType.PERSIST, 0x40, gap=i % 3))
        if i % 8 == 0:
            trace.append(MemoryAccess(AccessType.READ, 0x80, gap=1))
    return trace


@needs_numpy
class TestEngineEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("seed", (3, 11, 29))
    def test_every_scheme_digests_identically(self, scheme, seed):
        trace = random_trace(500, seed=seed)
        scalar = run_trace(scheme, trace, "scalar")
        batched = run_trace(scheme, trace, "epoch")
        scalar_result = scalar.result("equivalence")
        batched_result = batched.result("equivalence")
        assert result_digest(scalar_result) \
            == result_digest(batched_result)
        # The digest covers these, but asserting them directly makes a
        # failure point at the diverging field instead of a hash.
        assert scalar_result.cycles == batched_result.cycles
        assert scalar_result.attribution == batched_result.attribution
        assert scalar_result.histograms == batched_result.histograms
        assert scalar_result.stats == batched_result.stats

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_overflow_hot_line(self, scheme):
        # >= MINOR_LIMIT persists to one line force a minor-counter
        # overflow: the epoch engine must route it through the real
        # _bump_leaf (whole-block re-encryption) and stay identical.
        trace = hot_line_trace(MINOR_LIMIT + 8)
        scalar = run_trace(scheme, trace, "scalar")
        batched = run_trace(scheme, trace, "epoch")
        assert result_digest(scalar.result("overflow")) \
            == result_digest(batched.result("overflow"))

    def test_planner_off_matches_planner_on(self):
        # plan=False runs the same inlined interpreter without memo
        # pre-seeding; the memos are content-keyed, so nothing may move.
        trace = random_trace(400, seed=5)
        planned = build_system("scue", "epoch")
        epoch.run_trace(planned, iter(trace), plan=True)
        unplanned = build_system("scue", "epoch")
        epoch.run_trace(unplanned, iter(trace), plan=False)
        assert result_digest(planned.result("plan")) \
            == result_digest(unplanned.result("plan"))


@needs_numpy
class TestSanitizerFallback:
    def test_sanitizer_makes_run_ineligible(self):
        system = build_system("scue", "auto")
        assert epoch.ineligible_reason(system) is None
        attach_sanitizer(system.controller)
        assert epoch.ineligible_reason(system) is not None

    def test_forced_epoch_refuses_sanitized_run(self):
        system = build_system("scue", "epoch")
        attach_sanitizer(system.controller)
        with pytest.raises(ConfigError, match="epoch engine ineligible"):
            system.run(iter(random_trace(50, seed=1)))

    @pytest.mark.parametrize("scheme", ("scue", "eager", "plp"))
    def test_fallback_preserves_persist_event_stream(self, scheme):
        # Same trace, sanitizer attached both times: engine="auto" must
        # fall back to the scalar loop and the sanitizer must observe
        # the identical persist-event stream (sequence numbers, kinds,
        # addresses, cycles, flush nesting) an explicit scalar run sees.
        trace = random_trace(400, seed=17)
        streams = {}
        for engine in ("scalar", "auto"):
            system = build_system(scheme, engine)
            sanitizer = attach_sanitizer(system.controller)
            system.run(iter(trace))
            streams[engine] = (sanitizer._seq, list(sanitizer.events),
                               result_digest(system.result("fallback")))
        assert streams["auto"][0] == streams["scalar"][0]  # event count
        assert streams["auto"][1] == streams["scalar"][1]  # trace window
        assert streams["auto"][2] == streams["scalar"][2]  # full digest


class TestEligibilityGate:
    def test_scalar_only_environment_reports_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        system = build_system("scue", "auto")
        assert epoch.ineligible_reason(system) == "numpy is not available"

    @needs_numpy
    def test_recorder_disables_epoch(self):
        from repro.obs.recorder import TraceRecorder

        config = small_config("scue", check_data=False)
        system = System(config, recorder=TraceRecorder())
        assert epoch.ineligible_reason(system) is not None

    @needs_numpy
    def test_check_data_disables_epoch(self):
        system = System(small_config("scue", check_data=True))
        assert epoch.ineligible_reason(system) \
            == "check_data shadow verification"
