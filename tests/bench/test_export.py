"""JSON/CSV export of figure results."""

import json
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.bench.export import (
    ratio_table_to_csv,
    save_csv,
    save_json,
    to_jsonable,
)
from repro.mem.trace import AccessType


@dataclass
class _Inner:
    value: int


@dataclass
class _Outer:
    name: str
    table: dict[str, dict[str, float]]
    inner: _Inner
    items: list[int]
    matrix: object = field(default=None)   # must be dropped


class TestToJsonable:
    def test_dataclass_flattening(self):
        outer = _Outer("x", {"w": {"s": 1.5}}, _Inner(3), [1, 2],
                       matrix=object())
        data = to_jsonable(outer)
        assert data == {"name": "x", "table": {"w": {"s": 1.5}},
                        "inner": {"value": 3}, "items": [1, 2]}

    def test_non_string_keys_coerced(self):
        assert to_jsonable({40: {"a": 1}}) == {"40": {"a": 1}}

    def test_opaque_objects_stringified(self):
        assert isinstance(to_jsonable(object()), str)

    def test_real_figure_roundtrips(self):
        from repro.bench.figures import table1_attack_detection
        result = table1_attack_detection(
            data_capacity=1024 * 1024, operations=50)
        blob = json.dumps(to_jsonable(result))
        restored = json.loads(blob)
        assert restored["outcomes"]["roll_forward"]["detected"] is True

    def test_path_exports_as_string(self):
        assert to_jsonable(Path("a") / "b.json") == str(Path("a/b.json"))

    def test_bytes_export_as_hex(self):
        assert to_jsonable(b"\x00\xff") == "00ff"

    def test_enum_exports_as_value(self):
        assert to_jsonable(AccessType.PERSIST) == "persist"
        assert to_jsonable([AccessType.READ, AccessType.WRITE]) == \
            ["read", "write"]

    def test_enum_dict_keys_collapse_to_value(self):
        counts = {AccessType.READ: 3, AccessType.PERSIST: 1}
        assert to_jsonable(counts) == {"read": 3, "persist": 1}

    def test_sets_export_as_lists(self):
        assert to_jsonable(frozenset({1})) == [1]
        assert to_jsonable(set("a")) == ["a"]

    def test_nested_dict_of_dataclass(self):
        data = to_jsonable({"rows": {AccessType.READ: _Inner(7)},
                            "where": Path("out")})
        assert data == {"rows": {"read": {"value": 7}}, "where": "out"}


class TestSaveJson:
    def test_writes_parseable_file(self, tmp_path):
        path = tmp_path / "fig.json"
        save_json({"a": [1, 2]}, path)
        assert json.loads(path.read_text()) == {"a": [1, 2]}


class TestCsv:
    def test_table_renders(self):
        csv = ratio_table_to_csv({"array": {"plp": 2.5, "scue": 1.1},
                                  "geomean": {"plp": 2.5, "scue": 1.1}})
        lines = csv.strip().splitlines()
        assert lines[0] == "workload,plp,scue"
        assert lines[1] == "array,2.5000,1.1000"
        assert len(lines) == 3

    def test_empty_table(self):
        assert ratio_table_to_csv({}) == ""

    def test_save_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        save_csv({"w": {"s": 1.0}}, path)
        assert path.read_text().startswith("workload,s")


class TestEveryFigureResultExports:
    """Every fig* result type must survive ``json.dumps(to_jsonable(x))``
    (the satellite: exports used to crash on Paths, enums, and nested
    dict-of-dataclass shapes)."""

    @pytest.fixture(scope="class")
    def micro_matrix(self):
        from repro.bench.harness import run_matrix
        from tests.campaign._fakes import TinyScale
        return run_matrix(TinyScale(operations=30), workloads=["array"])

    def _dump(self, result):
        data = to_jsonable(result)
        return json.loads(json.dumps(data))

    def test_fig9_and_fig10(self, micro_matrix):
        from repro.bench.figures import (
            ComparisonFigure,
            PAPER_FIG9,
            PAPER_FIG10,
            fig10_execution_time,
        )
        fig10 = fig10_execution_time(matrix=micro_matrix)
        fig9 = ComparisonFigure(
            "write_latency",
            micro_matrix.ratio_table("write_latency", ("scue",)),
            PAPER_FIG9, micro_matrix)
        for fig, paper in ((fig9, PAPER_FIG9), (fig10, PAPER_FIG10)):
            restored = self._dump(fig)
            assert "matrix" not in restored        # execution artifact
            assert restored["paper_average"] == paper
            assert "geomean" in restored["table"]

    def test_sec5e(self, micro_matrix):
        from repro.bench.figures import sec5e_memory_accesses
        restored = self._dump(sec5e_memory_accesses(matrix=micro_matrix))
        assert "lazy" in restored["table"]["geomean"]

    def test_fig11_fig12_integer_latency_keys(self):
        from repro.bench.figures import fig11_hash_sweep_write_latency
        from tests.campaign._fakes import TinyScale
        fig = fig11_hash_sweep_write_latency(TinyScale(operations=30),
                                             workloads=["array"])
        restored = self._dump(fig)
        # int hash latencies become string keys, values survive.
        assert set(restored["table"]) == {"20", "40", "80", "160"}
        assert restored["table"]["20"]["array"] == pytest.approx(1.0)

    def test_fig5(self):
        from repro.bench.figures import fig5_crash_window
        fig = fig5_crash_window(schemes=("scue", "lazy"), trials=2,
                                operations=120,
                                data_capacity=1024 * 1024)
        restored = self._dump(fig)
        assert restored["trials"] == 2
        assert set(restored["success_rate"]) == {"scue", "lazy"}

    def test_fig13_shape(self):
        from repro.bench.figures import RecoveryFigure
        fig = RecoveryFigure(
            table={"star": {256 * 1024: 0.01}},
            stale_nodes={"star": {256 * 1024: 5}},
            paper_4mb={"star": 0.05, "agit": 0.17},
            functional_reads={"star": 42})
        restored = self._dump(fig)
        assert restored["table"]["star"]["262144"] == 0.01

    def test_sec5f(self):
        from repro.bench.overheads import sec5f_space_overheads
        rows = sec5f_space_overheads(data_capacity=1024 * 1024)
        restored = self._dump(rows)
        assert any(row["scheme"] == "scue" for row in restored)
        assert all(isinstance(row["measured_bytes"], int)
                   for row in restored)


class TestCliFigures:
    def test_figures_subcommand_with_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "t1.json"
        assert main(["figures", "table1", "--json", str(out)]) == 0
        assert json.loads(out.read_text())["outcomes"]
        assert "roll_forward" in capsys.readouterr().out

    def test_figures_sec5f(self, capsys):
        from repro.cli import main
        assert main(["figures", "sec5f"]) == 0
        assert "scue" in capsys.readouterr().out
