"""JSON/CSV export of figure results."""

import json
from dataclasses import dataclass, field

from repro.bench.export import (
    ratio_table_to_csv,
    save_csv,
    save_json,
    to_jsonable,
)


@dataclass
class _Inner:
    value: int


@dataclass
class _Outer:
    name: str
    table: dict[str, dict[str, float]]
    inner: _Inner
    items: list[int]
    matrix: object = field(default=None)   # must be dropped


class TestToJsonable:
    def test_dataclass_flattening(self):
        outer = _Outer("x", {"w": {"s": 1.5}}, _Inner(3), [1, 2],
                       matrix=object())
        data = to_jsonable(outer)
        assert data == {"name": "x", "table": {"w": {"s": 1.5}},
                        "inner": {"value": 3}, "items": [1, 2]}

    def test_non_string_keys_coerced(self):
        assert to_jsonable({40: {"a": 1}}) == {"40": {"a": 1}}

    def test_opaque_objects_stringified(self):
        assert isinstance(to_jsonable(object()), str)

    def test_real_figure_roundtrips(self):
        from repro.bench.figures import table1_attack_detection
        result = table1_attack_detection(
            data_capacity=1024 * 1024, operations=50)
        blob = json.dumps(to_jsonable(result))
        restored = json.loads(blob)
        assert restored["outcomes"]["roll_forward"]["detected"] is True


class TestSaveJson:
    def test_writes_parseable_file(self, tmp_path):
        path = tmp_path / "fig.json"
        save_json({"a": [1, 2]}, path)
        assert json.loads(path.read_text()) == {"a": [1, 2]}


class TestCsv:
    def test_table_renders(self):
        csv = ratio_table_to_csv({"array": {"plp": 2.5, "scue": 1.1},
                                  "geomean": {"plp": 2.5, "scue": 1.1}})
        lines = csv.strip().splitlines()
        assert lines[0] == "workload,plp,scue"
        assert lines[1] == "array,2.5000,1.1000"
        assert len(lines) == 3

    def test_empty_table(self):
        assert ratio_table_to_csv({}) == ""

    def test_save_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        save_csv({"w": {"s": 1.0}}, path)
        assert path.read_text().startswith("workload,s")


class TestCliFigures:
    def test_figures_subcommand_with_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "t1.json"
        assert main(["figures", "table1", "--json", str(out)]) == 0
        assert json.loads(out.read_text())["outcomes"]
        assert "roll_forward" in capsys.readouterr().out

    def test_figures_sec5f(self, capsys):
        from repro.cli import main
        assert main(["figures", "sec5f"]) == 0
        assert "scue" in capsys.readouterr().out
