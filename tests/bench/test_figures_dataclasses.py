"""The figure-result dataclasses and their aggregation helpers (pure
logic — the expensive drivers are covered by the benchmark suite)."""

import pytest

from repro.bench.figures import (
    AttackDetectionResult,
    ComparisonFigure,
    CrashWindowResult,
    HashSweepFigure,
    PAPER_FIG9,
    PAPER_FIG10,
    RecoveryFigure,
)


class TestComparisonFigure:
    def test_measured_average_reads_geomean_row(self):
        fig = ComparisonFigure(
            "write_latency",
            {"array": {"scue": 1.1}, "geomean": {"scue": 1.05}},
            PAPER_FIG9)
        assert fig.measured_average == {"scue": 1.05}

    def test_paper_constants_sane(self):
        assert PAPER_FIG9["plp"] > PAPER_FIG9["lazy"] > PAPER_FIG9["scue"]
        assert PAPER_FIG10["scue"] == 1.07


class TestHashSweepFigure:
    def test_average_is_geomean_over_workloads(self):
        fig = HashSweepFigure(
            "write_latency",
            {20: {"a": 1.0, "b": 1.0}, 160: {"a": 1.0, "b": 4.0}},
            paper_average_160=1.2)
        assert fig.average(20) == pytest.approx(1.0)
        assert fig.average(160) == pytest.approx(2.0)


class TestAttackDetectionResult:
    def _result(self, control_detected=False, replay_detected=True):
        return AttackDetectionResult({
            "roll_forward": {"detected": True, "by": "leaf_hmac"},
            "replay_roll_back": {"detected": replay_detected,
                                 "by": "root" if replay_detected
                                 else "none"},
            "no_attack_control": {"detected": control_detected,
                                  "by": "none"},
        })

    def test_all_detected_excludes_control(self):
        assert self._result().all_detected()

    def test_missed_attack_fails(self):
        assert not self._result(replay_detected=False).all_detected()

    def test_control_clean(self):
        assert self._result().control_clean()
        assert not self._result(control_detected=True).control_clean()


class TestCrashWindowResult:
    def test_holds_rates(self):
        result = CrashWindowResult({"scue": 1.0, "lazy": 0.0}, trials=4)
        assert result.success_rate["scue"] == 1.0
        assert result.trials == 4


class TestRecoveryFigure:
    def test_structure(self):
        fig = RecoveryFigure(
            table={"star": {1024: 0.01}},
            stale_nodes={"star": {1024: 5}},
            paper_4mb={"star": 0.05, "agit": 0.17},
            functional_reads={"star": 42})
        assert fig.table["star"][1024] == 0.01
        assert fig.functional_reads["star"] == 42
