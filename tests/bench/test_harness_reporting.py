"""The benchmark plumbing itself: scales, matrices, ratio tables and the
text renderers the figure benches print."""

import pytest

from repro.bench.harness import BenchScale, MatrixResult, geomean
from repro.bench.overheads import sec5f_space_overheads
from repro.bench.reporting import (
    format_ratio_table,
    format_simple_table,
    human_bytes,
)
from repro.sim.results import RunResult


def result(scheme: str, cycles: int, write_latency: float,
           meta: int = 10) -> RunResult:
    return RunResult(
        workload="w", scheme=scheme, cycles=cycles, instructions=100,
        loads=5, stores=3, persists=2, load_stall_cycles=0,
        persist_stall_cycles=0, avg_write_latency=write_latency,
        avg_read_latency=100.0, nvm_data_reads=5, nvm_data_writes=5,
        nvm_meta_reads=meta // 2, nvm_meta_writes=meta - meta // 2,
        hashes=7)


@pytest.fixture
def matrix() -> MatrixResult:
    m = MatrixResult()
    m.add("alpha", "baseline", result("baseline", 1000, 500.0, meta=10))
    m.add("alpha", "scue", result("scue", 1100, 550.0, meta=10))
    m.add("alpha", "plp", result("plp", 2000, 1500.0, meta=70))
    m.add("beta", "baseline", result("baseline", 2000, 600.0, meta=20))
    m.add("beta", "scue", result("scue", 2200, 660.0, meta=22))
    m.add("beta", "plp", result("plp", 4400, 1800.0, meta=140))
    return m


class TestBenchScale:
    def test_presets_ordered_by_size(self):
        quick, default, paper = (BenchScale.quick(), BenchScale.default(),
                                 BenchScale.paper())
        assert quick.operations < default.operations < paper.operations
        assert quick.data_capacity <= default.data_capacity \
            <= paper.data_capacity

    def test_config_carries_geometry(self):
        config = BenchScale.default().config("plp", hash_latency=80)
        assert config.scheme == "plp"
        assert config.tree_levels == 9
        assert config.hash_latency == 80

    def test_operations_for_spec_vs_persistent(self):
        scale = BenchScale.default()
        assert scale.operations_for("mcf") == scale.spec_accesses
        assert scale.operations_for("array") == scale.operations


class TestMatrixResult:
    def test_ratio_write_latency(self, matrix):
        assert matrix.ratio("alpha", "scue", "write_latency") \
            == pytest.approx(1.1)
        assert matrix.ratio("alpha", "plp", "write_latency") \
            == pytest.approx(3.0)

    def test_ratio_execution_time(self, matrix):
        assert matrix.ratio("beta", "plp", "execution_time") \
            == pytest.approx(2.2)

    def test_ratio_metadata_accesses_alt_baseline(self, matrix):
        assert matrix.ratio("alpha", "plp", "metadata_accesses",
                            baseline="scue") == pytest.approx(7.0)

    def test_unknown_metric_rejected(self, matrix):
        with pytest.raises(ValueError):
            matrix.ratio("alpha", "scue", "bogus")

    def test_ratio_table_has_geomean(self, matrix):
        table = matrix.ratio_table("execution_time", ["scue", "plp"])
        assert set(table) == {"alpha", "beta", "geomean"}
        assert table["geomean"]["scue"] == pytest.approx(1.1)
        assert table["geomean"]["plp"] == pytest.approx(
            (2.0 * 2.2) ** 0.5)

    def test_workloads_and_schemes(self, matrix):
        assert matrix.workloads == ["alpha", "beta"]
        assert set(matrix.schemes()) == {"baseline", "scue", "plp"}

    def test_merged_histograms_fold_across_workloads(self):
        from repro.obs.histogram import LatencyHistogram

        def hist_result(scheme, values):
            hist = LatencyHistogram()
            for value in values:
                hist.add(value)
            base = result(scheme, 1000, 500.0)
            return RunResult(**{
                **base.to_dict(),
                "histograms": {"controller.write_latency":
                               hist.to_dict()}})

        m = MatrixResult()
        m.add("alpha", "scue", hist_result("scue", [10, 20]))
        m.add("beta", "scue", hist_result("scue", [30, 4000]))
        merged = m.merged_histograms("scue")
        snapshot = merged["controller.write_latency"]
        assert snapshot["count"] == 4
        assert snapshot["max"] == 4000
        assert snapshot["p99"] >= 4000

    def test_merged_histograms_missing_scheme_is_empty(self, matrix):
        assert matrix.merged_histograms("nonexistent") == {}


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_skips_nonpositive(self):
        assert geomean([0.0, -1.0, 3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestReporting:
    def test_ratio_table_renders_all_rows(self, matrix):
        table = matrix.ratio_table("write_latency", ["scue", "plp"])
        text = format_ratio_table("T", table, {"scue": 1.12, "plp": 2.74})
        assert "alpha" in text
        assert "geomean" in text
        assert "paper avg" in text
        assert "1.12" in text

    def test_simple_table_alignment(self):
        text = format_simple_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_human_bytes(self):
        assert human_bytes(None) == "-"
        assert human_bytes(64) == "64B"
        assert human_bytes(128 * 1024) == "128.00KB"
        assert human_bytes(32 * 1024 * 1024) == "32.00MB"
        assert human_bytes(16 * 1024**3) == "16.00GB"


class TestOverheads:
    def test_scales_with_capacity(self):
        small = {r.scheme: r.measured_bytes
                 for r in sec5f_space_overheads(64 * 1024 * 1024)}
        big = {r.scheme: r.measured_bytes
               for r in sec5f_space_overheads(128 * 1024 * 1024)}
        assert big["bmf-ideal"] == 2 * small["bmf-ideal"]
        assert big["scue"] == small["scue"] == 128
