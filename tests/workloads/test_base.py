"""Workload infrastructure: the heap and the trace recorder."""

import pytest

from repro.errors import ConfigError
from repro.mem.trace import AccessType
from repro.workloads.base import NullRecorder, PersistentHeap, TraceRecorder


class TestPersistentHeap:
    def test_bump_allocation_advances(self):
        heap = PersistentHeap(4096)
        a = heap.alloc(16)
        b = heap.alloc(16)
        assert b == a + 16

    def test_granule_rounding(self):
        heap = PersistentHeap(4096)
        heap.alloc(1)
        assert heap.used_bytes == 16

    def test_line_aligned(self):
        heap = PersistentHeap(4096)
        heap.alloc(8)
        addr = heap.alloc(8, line_aligned=True)
        assert addr % 64 == 0

    def test_free_list_reuse(self):
        heap = PersistentHeap(4096)
        addr = heap.alloc(32)
        heap.free(addr, 32)
        assert heap.alloc(32) == addr

    def test_exhaustion_raises(self):
        heap = PersistentHeap(64)
        heap.alloc(64)
        with pytest.raises(ConfigError):
            heap.alloc(16)

    def test_invalid_sizes(self):
        heap = PersistentHeap(4096)
        with pytest.raises(ConfigError):
            heap.alloc(0)
        with pytest.raises(ConfigError):
            PersistentHeap(0)

    def test_scatter_is_deterministic(self):
        a = PersistentHeap(64 * 1024, scatter=True, seed=1)
        b = PersistentHeap(64 * 1024, scatter=True, seed=1)
        assert [a.alloc(64, line_aligned=True) for _ in range(20)] \
            == [b.alloc(64, line_aligned=True) for _ in range(20)]

    def test_scatter_spreads_allocations(self):
        heap = PersistentHeap(1024 * 1024, scatter=True, seed=2)
        addrs = [heap.alloc(64, line_aligned=True) for _ in range(100)]
        # Not densely packed: the span covered far exceeds the bytes used.
        assert max(addrs) - min(addrs) > 100 * 64 * 4

    def test_scatter_never_overlaps(self):
        heap = PersistentHeap(64 * 1024, scatter=True, seed=3)
        spans = set()
        for _ in range(50):
            addr = heap.alloc(256, line_aligned=True)
            for line in range(addr, addr + 256, 64):
                assert line not in spans
                spans.add(line)


class TestTraceRecorder:
    def test_read_write_persist_kinds(self):
        recorder = TraceRecorder()
        recorder.read(0)
        recorder.write(64)
        recorder.persist(128)
        kinds = [r.kind for r in recorder.records]
        assert kinds == [AccessType.READ, AccessType.WRITE,
                         AccessType.PERSIST]

    def test_addresses_line_aligned(self):
        recorder = TraceRecorder()
        recorder.read(70)
        assert recorder.records[0].addr == 64

    def test_multiline_access_emits_per_line(self):
        recorder = TraceRecorder()
        recorder.persist(0, size=256)
        assert [r.addr for r in recorder.records] == [0, 64, 128, 192]

    def test_straddling_access(self):
        recorder = TraceRecorder()
        recorder.read(60, size=8)  # crosses a line boundary
        assert [r.addr for r in recorder.records] == [0, 64]

    def test_compute_attaches_to_next_access(self):
        recorder = TraceRecorder()
        recorder.compute(12)
        recorder.read(0)
        recorder.read(64)
        assert recorder.records[0].gap == 12
        assert recorder.records[1].gap == 0

    def test_compute_accumulates(self):
        recorder = TraceRecorder()
        recorder.compute(3)
        recorder.compute(4)
        recorder.read(0)
        assert recorder.records[0].gap == 7

    def test_negative_compute_rejected(self):
        with pytest.raises(ConfigError):
            TraceRecorder().compute(-1)

    def test_take_clears(self):
        recorder = TraceRecorder()
        recorder.read(0)
        taken = recorder.take()
        assert len(taken) == 1
        assert len(recorder) == 0


class TestNullRecorder:
    def test_discards_everything(self):
        recorder = NullRecorder()
        recorder.compute(100)
        recorder.read(0)
        recorder.persist(64, size=512)
        assert len(recorder.records) == 0
