"""The persistent append-log workload (the extra, beyond-paper one)."""

import pytest

from repro.errors import ConfigError
from repro.mem.trace import AccessType, collect_stats
from repro.sim.system import System
from repro.workloads import make_workload
from repro.workloads.persistent import PLogWorkload

from tests.conftest import small_config

CAP = 2 * 1024 * 1024


class TestPLog:
    def test_available_via_make_workload(self):
        workload = make_workload("plog", CAP, 50, seed=1)
        assert workload.name == "plog"
        assert len(list(workload.trace())) > 50

    def test_not_in_canonical_paper_set(self):
        from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS
        assert "plog" not in ALL_WORKLOADS
        assert "plog" in EXTRA_WORKLOADS

    def test_appends_are_sequential(self):
        workload = PLogWorkload(CAP, operations=40, seed=1,
                                checkpoint_every=1000)
        persists = [r for r in workload.trace()
                    if r.kind is AccessType.PERSIST]
        entries = [r.addr for r in persists
                   if r.addr != workload._head]
        assert entries == sorted(entries)
        strides = {b - a for a, b in zip(entries, entries[1:])}
        assert strides <= {workload.entry_bytes}

    def test_publication_order_entry_before_head(self):
        workload = PLogWorkload(CAP, operations=20, seed=1,
                                checkpoint_every=1000)
        persists = [r for r in workload.trace()
                    if r.kind is AccessType.PERSIST]
        for entry, head in zip(persists[0::2], persists[1::2]):
            assert entry.addr != workload._head
            assert head.addr == workload._head

    def test_checkpoints_add_reads_and_snapshot_writes(self):
        chatty = collect_stats(PLogWorkload(
            CAP, 200, seed=1, checkpoint_every=16).trace())
        quiet = collect_stats(PLogWorkload(
            CAP, 200, seed=1, checkpoint_every=10_000).trace())
        assert chatty.reads > quiet.reads
        assert chatty.persists > quiet.persists

    def test_log_wraps_within_capacity(self):
        workload = PLogWorkload(CAP, operations=50, seed=1)
        assert all(0 <= r.addr < CAP for r in workload.trace())

    def test_invalid_checkpoint_interval(self):
        with pytest.raises(ConfigError):
            PLogWorkload(CAP, 10, checkpoint_every=0)

    def test_runs_end_to_end_on_scue(self):
        system = System(small_config("scue"))
        system.run(make_workload("plog", system.config.data_capacity,
                                 120, seed=2).trace())
        system.crash()
        assert system.recover().success

    def test_best_case_counter_locality(self):
        """Sequential appends share counter blocks: far fewer distinct
        leaf blocks than the random-update array touches."""
        system = System(small_config("scue"))
        system.run(make_workload("plog", system.config.data_capacity,
                                 150, seed=2).trace())
        plog_meta = system.controller.stats.counter("meta_reads").value
        system2 = System(small_config("scue"))
        system2.run(make_workload("array", system2.config.data_capacity,
                                  150, seed=2).trace())
        array_meta = system2.controller.stats.counter("meta_reads").value
        assert plog_meta < array_meta
