"""Binary trace file round-trips."""

import pytest

from repro.errors import ConfigError
from repro.mem.trace import AccessType, MemoryAccess
from repro.workloads import make_workload
from repro.workloads.traceio import load_trace, save_trace


def sample():
    return [
        MemoryAccess(AccessType.READ, 0, gap=3),
        MemoryAccess(AccessType.WRITE, 4096, gap=0),
        MemoryAccess(AccessType.PERSIST, 128, gap=7,
                     data=b"\xAB" * 64),
    ]


class TestRoundtrip:
    def test_plain(self, tmp_path):
        path = tmp_path / "t.trc"
        assert save_trace(path, sample()) == 3
        assert list(load_trace(path)) == sample()

    def test_compressed(self, tmp_path):
        path = tmp_path / "t.trc.gz"
        save_trace(path, sample(), compress=True)
        assert list(load_trace(path)) == sample()

    def test_short_payload_padded(self, tmp_path):
        path = tmp_path / "t.trc"
        save_trace(path, [MemoryAccess(AccessType.PERSIST, 0,
                                       data=b"hi")])
        (loaded,) = load_trace(path)
        assert loaded.data == b"hi" + bytes(62)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.trc"
        assert save_trace(path, []) == 0
        assert list(load_trace(path)) == []

    def test_workload_roundtrip(self, tmp_path):
        workload = make_workload("queue", 1024 * 1024, 50, seed=3)
        original = list(workload.trace())
        path = tmp_path / "queue.trc"
        save_trace(path, original)
        assert list(load_trace(path)) == original

    def test_compression_shrinks_repetitive_traces(self, tmp_path):
        workload = make_workload("lbm", 1024 * 1024, 2000, seed=3)
        trace = list(workload.trace())
        plain = tmp_path / "a.trc"
        packed = tmp_path / "b.trc"
        save_trace(plain, trace)
        save_trace(packed, trace, compress=True)
        assert packed.stat().st_size < plain.stat().st_size / 2


class TestValidation:
    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a trace")
        with pytest.raises(ConfigError):
            list(load_trace(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.trc"
        save_trace(path, sample())
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(ConfigError):
            list(load_trace(path))

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "t.trc"
        save_trace(path, [MemoryAccess(AccessType.PERSIST, 0,
                                       data=b"\x01" * 64)])
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(ConfigError):
            list(load_trace(path))
