"""SPEC-like profiles and the synthetic access-pattern primitives."""

import random

import pytest

from repro.errors import ConfigError
from repro.mem.trace import AccessType, collect_stats
from repro.workloads.spec import SPEC_PROFILES, SpecWorkload
from repro.workloads.synthetic import (
    StreamWorkload,
    UniformRandomWorkload,
    ZipfSampler,
    ZipfWorkload,
)

CAP = 8 * 1024 * 1024


class TestSpecProfiles:
    def test_eight_applications(self):
        assert len(SPEC_PROFILES) == 8
        assert {"mcf", "lbm", "bwaves", "gcc"} <= set(SPEC_PROFILES)

    @pytest.mark.parametrize("app", sorted(SPEC_PROFILES))
    def test_trace_deterministic(self, app):
        a = list(SpecWorkload(app, CAP, 500, seed=1).trace())
        b = list(SpecWorkload(app, CAP, 500, seed=1).trace())
        assert a == b

    @pytest.mark.parametrize("app", sorted(SPEC_PROFILES))
    def test_write_fraction_approximates_profile(self, app):
        stats = collect_stats(SpecWorkload(app, CAP, 4000, seed=1).trace())
        expected = SPEC_PROFILES[app].write_fraction
        measured = stats.writes / stats.memory_instructions
        assert abs(measured - expected) < 0.05

    def test_streaming_profile_has_sequential_runs(self):
        trace = list(SpecWorkload("lbm", CAP, 2000, seed=1).trace())
        sequential = sum(
            1 for a, b in zip(trace, trace[1:]) if b.addr - a.addr == 64)
        assert sequential > len(trace) * 0.6

    def test_random_profile_has_wide_footprint(self):
        stats = collect_stats(SpecWorkload("mcf", CAP, 3000, seed=1).trace())
        assert len(stats.footprint) > 2500

    def test_skewed_profile_concentrates(self):
        stats = collect_stats(SpecWorkload("gcc", CAP, 3000, seed=1).trace())
        mcf = collect_stats(SpecWorkload("mcf", CAP, 3000, seed=1).trace())
        assert len(stats.footprint) < len(mcf.footprint)

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            SpecWorkload("quake", CAP, 10)

    def test_no_persists_in_spec(self):
        trace = SpecWorkload("milc", CAP, 500, seed=1).trace()
        assert all(r.kind is not AccessType.PERSIST for r in trace)


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(100, 1.0, random.Random(1))
        assert all(0 <= sampler.sample() < 100 for _ in range(500))

    def test_skew_concentrates_mass(self):
        sampler = ZipfSampler(1000, 1.2, random.Random(1))
        samples = [sampler.sample() for _ in range(3000)]
        top = sum(1 for s in samples if s < 10)
        assert top > len(samples) * 0.3

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(ConfigError):
            ZipfSampler(10, 0.0, random.Random(1))


class TestSyntheticWorkloads:
    def test_stream_wraps_at_footprint(self):
        workload = StreamWorkload("s", footprint=64 * 4, accesses=10)
        addrs = [r.addr for r in workload.trace()]
        assert addrs[:5] == [0, 64, 128, 192, 0]

    def test_stream_write_fraction(self):
        workload = StreamWorkload("s", 64 * 1024, 1000, write_fraction=0.25)
        stats = collect_stats(workload.trace())
        assert abs(stats.writes / 1000 - 0.25) < 0.02

    def test_uniform_persist_fraction(self):
        workload = UniformRandomWorkload("u", 64 * 1024, 1000,
                                         persist_fraction=0.3, seed=2)
        stats = collect_stats(workload.trace())
        assert abs(stats.persists / 1000 - 0.3) < 0.06

    def test_zipf_workload_hot_lines(self):
        workload = ZipfWorkload("z", 64 * 1024, 2000, alpha=1.2, seed=2)
        from collections import Counter
        counts = Counter(r.addr for r in workload.trace())
        hottest = counts.most_common(1)[0][1]
        assert hottest > 2000 / 100

    def test_stream_footprint_validation(self):
        with pytest.raises(ConfigError):
            StreamWorkload("s", footprint=32, accesses=1)
