"""The five persistent data-structure workloads: functional correctness
of the structures themselves plus the shape of the traces they emit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.trace import AccessType, collect_stats
from repro.workloads import make_workload
from repro.workloads.base import NullRecorder
from repro.workloads.persistent import (
    ArrayWorkload,
    BTreeWorkload,
    HashWorkload,
    QueueWorkload,
    RBTreeWorkload,
)

CAP = 4 * 1024 * 1024
NAMES = ("array", "btree", "hash", "queue", "rbtree")


@pytest.mark.parametrize("name", NAMES)
class TestCommonProperties:
    def test_trace_is_restartable_and_identical(self, name):
        workload = make_workload(name, CAP, operations=50, seed=1)
        assert list(workload.trace()) == list(workload.trace())

    def test_same_seed_same_trace(self, name):
        a = make_workload(name, CAP, operations=50, seed=1)
        b = make_workload(name, CAP, operations=50, seed=1)
        assert list(a.trace()) == list(b.trace())

    def test_different_seed_different_trace(self, name):
        a = make_workload(name, CAP, operations=50, seed=1)
        b = make_workload(name, CAP, operations=50, seed=2)
        assert list(a.trace()) != list(b.trace())

    def test_contains_persists(self, name):
        workload = make_workload(name, CAP, operations=50, seed=1)
        stats = collect_stats(workload.trace())
        assert stats.persists > 0

    def test_addresses_within_capacity(self, name):
        workload = make_workload(name, CAP, operations=50, seed=1)
        assert all(0 <= r.addr < CAP for r in workload.trace())


class TestArray:
    def test_footprint_spans_working_set(self):
        workload = ArrayWorkload(CAP, operations=500, seed=1)
        stats = collect_stats(workload.trace())
        assert len(stats.footprint) > 200

    def test_updates_read_before_persisting(self):
        workload = ArrayWorkload(CAP, operations=20, seed=1,
                                 read_fraction=0.0)
        trace = list(workload.trace())
        persist_positions = [i for i, r in enumerate(trace)
                             if r.kind is AccessType.PERSIST]
        for pos in persist_positions:
            assert trace[pos - 1].kind is AccessType.READ
            assert trace[pos - 1].addr == trace[pos].addr

    def test_entry_addr_bounds(self):
        workload = ArrayWorkload(CAP, operations=1)
        with pytest.raises(Exception):
            workload.entry_addr(workload.entries)


class TestQueue:
    def test_publication_order_entry_before_tail(self):
        """Crash consistency discipline: the entry line persists before
        the metadata line on every enqueue."""
        workload = QueueWorkload(CAP, operations=30, seed=1,
                                 enqueue_bias=0.99)
        trace = list(workload.trace())
        persists = [r for r in trace if r.kind is AccessType.PERSIST]
        meta_addr = workload._meta
        # Persists alternate entry, meta, entry, meta ...
        for entry, meta in zip(persists[0::2], persists[1::2]):
            assert entry.addr != meta_addr
            assert meta.addr == meta_addr

    def test_fifo_capacity_respected(self):
        workload = QueueWorkload(CAP, operations=200, seed=1)
        list(workload.trace())  # must not overflow the ring


class TestHash:
    def test_probing_really_probes(self):
        """With a small table, collisions force multi-read probe chains."""
        workload = HashWorkload(1024 * 64, operations=300, seed=1,
                                table_fraction=0.02)
        stats = collect_stats(workload.trace())
        assert stats.reads > stats.persists

    def test_load_factor_bounded(self):
        workload = HashWorkload(1024 * 64, operations=400, seed=1,
                                table_fraction=0.02, insert_bias=1.0,
                                max_load_factor=0.5)
        list(workload.trace())
        live = sum(1 for k in workload._keys if k is not None)
        assert live <= int(workload.slots * 0.5) + 1


class TestBTree:
    def test_inserted_keys_are_found(self):
        workload = BTreeWorkload(CAP, operations=200, seed=3,
                                 insert_bias=1.0)
        recorder = NullRecorder()
        keys = list(range(1, 100))
        for key in keys:
            workload._insert(recorder, key)
        assert all(workload.contains(k) for k in keys)
        assert not workload.contains(100000)

    def test_duplicate_insert_does_not_grow(self):
        workload = BTreeWorkload(CAP, operations=1, seed=3)
        recorder = NullRecorder()
        workload._insert(recorder, 42)
        workload._insert(recorder, 42)
        assert workload.size == 1

    def test_splits_generate_persist_bursts(self):
        workload = BTreeWorkload(CAP, operations=120, seed=3,
                                 insert_bias=1.0)
        stats = collect_stats(workload.trace())
        # More persists than operations: split cascades add extra.
        assert stats.persists > 120

    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=150))
    @settings(max_examples=20, deadline=None)
    def test_btree_is_a_set(self, keys):
        workload = BTreeWorkload(CAP, operations=1, seed=3)
        recorder = NullRecorder()
        for key in keys:
            workload._insert(recorder, key)
        assert workload.size == len(set(keys))
        assert all(workload.contains(k) for k in keys)


class TestRBTree:
    def test_inserted_keys_found(self):
        workload = RBTreeWorkload(CAP, operations=1, seed=4)
        recorder = NullRecorder()
        for key in range(1, 80):
            workload._insert(recorder, key)
        assert all(workload.contains(k) for k in range(1, 80))
        assert not workload.contains(999)

    def test_red_black_invariants_hold(self):
        workload = RBTreeWorkload(CAP, operations=1, seed=4)
        recorder = NullRecorder()
        for key in [50, 25, 75, 10, 30, 60, 90, 5, 15, 27, 35]:
            workload._insert(recorder, key)
        assert workload.black_height_valid()

    @given(st.lists(st.integers(1, 100_000), min_size=1, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_invariants_over_arbitrary_inserts(self, keys):
        workload = RBTreeWorkload(CAP, operations=1, seed=4)
        recorder = NullRecorder()
        for key in keys:
            workload._insert(recorder, key)
        assert workload.black_height_valid()
        assert workload.size == len(set(keys))

    def test_rotations_emit_persists(self):
        workload = RBTreeWorkload(CAP, operations=60, seed=4,
                                  insert_bias=1.0)
        stats = collect_stats(workload.trace())
        assert stats.persists > 60  # fixups persist extra nodes


class TestPrepopulation:
    def test_prepopulated_structures_are_larger(self):
        cold = BTreeWorkload(CAP, operations=30, seed=5, prepopulate=0)
        warm = BTreeWorkload(CAP, operations=30, seed=5, prepopulate=500)
        list(cold.trace())
        list(warm.trace())
        assert warm.size > cold.size

    def test_prepopulation_not_in_trace(self):
        warm = BTreeWorkload(CAP, operations=30, seed=5, prepopulate=500)
        cold = BTreeWorkload(CAP, operations=30, seed=5, prepopulate=0)
        # The warm trace covers 30 measured ops, not 530.
        assert len(list(warm.trace())) < 3 * len(list(cold.trace())) + 500
