"""Root registers: the on-chip non-volatile trust base."""

import pytest

from repro.errors import ConfigError
from repro.secure.roots import ROOT_REGISTER_BYTES, RootRegister
from repro.tree.node import COUNTER_MASK


class TestRootRegister:
    def test_starts_zero(self):
        assert RootRegister("r").counters == [0] * 8

    def test_add(self):
        root = RootRegister("r")
        root.add(3)
        root.add(3, 4)
        assert root.counter(3) == 5

    def test_add_wraps_modularly(self):
        root = RootRegister("r")
        root.set(0, COUNTER_MASK)
        root.add(0, 2)
        assert root.counter(0) == 1

    def test_set(self):
        root = RootRegister("r")
        root.set(1, 99)
        assert root.counter(1) == 99

    def test_set_masks_to_56_bits(self):
        root = RootRegister("r")
        root.set(0, 1 << 56)
        assert root.counter(0) == 0

    def test_matches(self):
        root = RootRegister("r")
        root.add(0, 7)
        assert root.matches([7, 0, 0, 0, 0, 0, 0, 0])
        assert not root.matches([8, 0, 0, 0, 0, 0, 0, 0])

    def test_matches_requires_eight(self):
        with pytest.raises(ConfigError):
            RootRegister("r").matches([0])

    def test_snapshot_restore(self):
        root = RootRegister("r")
        root.add(2, 5)
        snap = root.snapshot()
        root.add(2, 1)
        root.restore(snap)
        assert root.counter(2) == 5

    def test_counters_returns_copy(self):
        root = RootRegister("r")
        root.counters.append(999)  # must not mutate internal state
        assert len(root.counters) == 8

    def test_slot_bounds(self):
        root = RootRegister("r")
        with pytest.raises(ConfigError):
            root.add(8)
        with pytest.raises(ConfigError):
            root.counter(-1)

    def test_register_is_64_bytes(self):
        assert ROOT_REGISTER_BYTES == 64
