"""VAULT/MorphCtr-style wide tree nodes (§VII): arity 16/32 with
correspondingly narrower counters, threaded through the whole stack."""

import random

import pytest

from repro.crash.attacks import replay_leaf, roll_forward_leaf, snapshot_leaf
from repro.errors import ConfigError
from repro.mem.address import AddressMap, COUNTER_BITS_FOR_ARITY
from repro.secure import SCHEMES, make_controller
from repro.sim.config import SystemConfig
from repro.tree.node import SITNode

from tests.conftest import small_config

ARITIES = (8, 16, 32)


class TestGeometry:
    def test_counter_widths_fill_the_line(self):
        for arity, bits in COUNTER_BITS_FOR_ARITY.items():
            assert arity * bits + 64 == 512

    @pytest.mark.parametrize("arity", ARITIES)
    def test_wider_nodes_make_shorter_trees(self, arity):
        amap = AddressMap(4 * 1024 * 1024, arity=arity)
        baseline = AddressMap(4 * 1024 * 1024, arity=8)
        assert amap.tree_levels <= baseline.tree_levels

    def test_unsupported_arity_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(1024 * 1024, arity=12)

    @pytest.mark.parametrize("arity", (16, 32))
    def test_parent_child_relations_scale(self, arity):
        amap = AddressMap(4 * 1024 * 1024, arity=arity)
        for level in range(1, amap.tree_levels):
            for index in range(amap.level_width(level)):
                children = amap.child_coords(level, index)
                assert len(children) <= arity
                for child in children:
                    assert amap.parent_coords(*child) == (level, index)


class TestWideNodes:
    @pytest.mark.parametrize("arity", (16, 32))
    def test_serialisation_roundtrip(self, arity):
        bits = COUNTER_BITS_FOR_ARITY[arity]
        counters = [(i * 37) % (1 << bits) for i in range(arity)]
        node = SITNode(1, 0, counters=counters, hmac=0xFEED, arity=arity)
        restored = SITNode.from_bytes(1, 0, node.to_bytes(), arity=arity)
        assert restored.counters == counters
        assert restored.hmac == 0xFEED

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            SITNode(1, 0, counters=[0] * 8, arity=16)

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigError):
            SITNode(1, 0, arity=16, counter_bits=56)

    @pytest.mark.parametrize("arity", (16, 32))
    def test_dummy_counter_wraps_at_width(self, arity):
        bits = COUNTER_BITS_FOR_ARITY[arity]
        node = SITNode(1, 0, arity=arity)
        node.set_counter(0, (1 << bits) - 1)
        node.bump_counter(1, 2)
        assert node.dummy_counter() == 1


@pytest.mark.parametrize("arity", (16, 32))
class TestWideSystems:
    def _run(self, scheme, arity, n=80, **overrides):
        controller = make_controller(small_config(
            scheme, tree_arity=arity, **overrides))
        rng = random.Random(6)
        for i in range(n):
            controller.write_data(
                rng.randrange(0, controller.config.data_capacity, 64),
                None, cycle=i * 100)
        return controller

    def test_scue_crash_recovery(self, arity):
        controller = self._run("scue", arity)
        controller.crash()
        report = controller.recover()
        assert report.success

    def test_replay_detected(self, arity):
        controller = self._run("scue", arity)
        controller.write_data(0, None, cycle=10**8)
        snap = snapshot_leaf(controller.store, 0)
        controller.write_data(0, None, cycle=10**8 + 100)
        controller.crash()
        replay_leaf(controller.store, snap)
        report = controller.recover()
        assert not report.success
        assert not report.root_matched

    def test_roll_forward_detected(self, arity):
        controller = self._run("scue", arity)
        controller.crash()
        roll_forward_leaf(controller.store, 0, slot=1)
        report = controller.recover()
        assert 0 in report.leaf_hmac_failures

    def test_lazy_still_fails_after_crash(self, arity):
        controller = self._run("lazy", arity)
        controller.crash()
        assert not controller.recover().success

    def test_functional_data_roundtrip(self, arity):
        controller = make_controller(small_config(
            "scue", tree_arity=arity, check_data=True))
        controller.write_data(0x3000, b"\x5B" * 64, cycle=0)
        assert controller.read_data(0x3000, cycle=500).plaintext \
            == b"\x5B" * 64


def test_all_schemes_run_at_arity_16():
    for scheme in sorted(SCHEMES):
        if scheme == "bmt-eager":
            continue  # the BMT comparison point is 8-ary by design
        controller = make_controller(small_config(scheme, tree_arity=16))
        for i in range(25):
            controller.write_data(i * 4096, None, cycle=i * 100)
        controller.read_data(0, cycle=10**6)


def test_config_threads_arity():
    config = SystemConfig(data_capacity=1024 * 1024, tree_arity=16)
    assert config.address_map().arity == 16
    assert config.address_map().counter_bits == 28
