"""`repro.secure.vector` kernels vs the scalar reference, byte for byte.

The epoch planner's equivalence argument rests on each kernel being an
exact re-expression of the scalar layout code (docs/performance.md);
these tests prove it per kernel against randomized counter states, so a
layout drift is caught at the kernel boundary — not as an opaque digest
mismatch three layers up.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.cme.counters import (
    COUNTER_SUM_BITS,
    MINOR_LIMIT,
    MINORS_PER_BLOCK,
    CounterBlock,
)
from repro.secure import vector
from repro.util.crypto import KeyedMac, make_otp, xor_bytes

pytestmark = pytest.mark.skipif(not vector.HAVE_NUMPY,
                                reason="kernels require numpy")

K = 37  # odd batch size: exercises non-aligned shapes


@pytest.fixture(scope="module")
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="module")
def blocks(rng):
    return [
        CounterBlock(index=i, major=rng.getrandbits(30),
                     minors=[rng.randrange(MINOR_LIMIT)
                             for _ in range(MINORS_PER_BLOCK)],
                     hmac=rng.getrandbits(64))
        for i in range(K)
    ]


def as_arrays(blocks):
    np = vector.np
    majors = np.array([b.major for b in blocks], dtype=np.uint64)
    minors = np.array([b.minors for b in blocks], dtype=np.uint64)
    return majors, minors


def test_u64_le_bytes(rng):
    np = vector.np
    values = [rng.getrandbits(64) for _ in range(K)]
    out = vector.u64_le_bytes(np.array(values, dtype=np.uint64))
    assert out.tobytes() == b"".join(
        v.to_bytes(8, "little") for v in values)


def test_pack_counter_images(blocks):
    images = vector.pack_counter_images(*as_arrays(blocks))
    assert images.shape == (K, 56)
    for row, block in zip(images, blocks):
        assert row.tobytes() == block._counter_image()


def test_pack_leaf_media(blocks):
    np = vector.np
    majors, minors = as_arrays(blocks)
    hmacs = np.array([b.hmac for b in blocks], dtype=np.uint64)
    media = vector.pack_leaf_media(
        vector.pack_counter_images(majors, minors), hmacs)
    for row, block in zip(media, blocks):
        assert row.tobytes() == block.to_bytes()


@pytest.mark.parametrize("bits", (COUNTER_SUM_BITS, 16, 64))
def test_dummy_counters(blocks, bits):
    dummies = vector.dummy_counters(*as_arrays(blocks), bits)
    assert dummies.tolist() == [b.dummy_counter(bits) for b in blocks]


def test_apply_bumps_accumulates_duplicates(rng):
    np = vector.np
    minors = np.zeros((4, MINORS_PER_BLOCK), dtype=np.uint64)
    pairs = [(rng.randrange(4), rng.randrange(MINORS_PER_BLOCK))
             for _ in range(50)]
    vector.apply_bumps(minors,
                       np.array([p[0] for p in pairs]),
                       np.array([p[1] for p in pairs]))
    for row in range(4):
        for slot in range(MINORS_PER_BLOCK):
            assert minors[row][slot] == pairs.count((row, slot))


def test_occurrence_index(rng):
    np = vector.np
    keys = [rng.randrange(8) for _ in range(64)]
    occ = vector.occurrence_index(np.array(keys, dtype=np.int64))
    assert occ.tolist() == [keys[:i].count(k)
                            for i, k in enumerate(keys)]


def test_otp_messages_and_batch_otps(rng):
    np = vector.np
    key = b"repro-cme-key"
    rows = [(rng.getrandbits(40) & ~0x3F, rng.getrandbits(30),
             rng.randrange(MINOR_LIMIT)) for _ in range(K)]
    messages = vector.otp_messages(
        np.array([r[0] for r in rows], dtype=np.uint64),
        np.array([r[1] for r in rows], dtype=np.uint64),
        np.array([r[2] for r in rows], dtype=np.uint64))
    derived = hashlib.blake2b(key, digest_size=32).digest()
    pads = vector.batch_otps(derived, messages)
    for pad, (line, major, minor) in zip(pads, rows):
        assert pad.tobytes() == make_otp(key, line, major, minor)


def test_data_mac_messages_and_batch_hash(rng):
    np = vector.np
    mac = KeyedMac(b"repro-data-key")
    rows = [(rng.getrandbits(40) & ~0x3F, rng.randbytes(64),
             rng.getrandbits(30), rng.randrange(MINOR_LIMIT))
            for _ in range(K)]
    messages = vector.data_mac_messages(
        np.array([r[0] for r in rows], dtype=np.uint64),
        np.frombuffer(b"".join(r[1] for r in rows),
                      dtype=np.uint8).reshape(K, 64),
        np.array([r[2] for r in rows], dtype=np.uint64),
        np.array([r[3] for r in rows], dtype=np.uint64))
    macs = vector.batch_keyed_hash8(mac._key, messages)
    assert macs == [mac.mac_uncached(line, ct, major, minor)
                    for line, ct, major, minor in rows]


def test_seal_messages_match_leaf_hmacs(rng, blocks):
    np = vector.np
    mac = KeyedMac(b"repro-seal-key")
    addrs = [1 << 26 | (b.index << 6) for b in blocks]
    parents = [rng.getrandbits(COUNTER_SUM_BITS) for _ in blocks]
    messages = vector.seal_messages(
        np.array(addrs, dtype=np.uint64),
        vector.pack_counter_images(*as_arrays(blocks)),
        np.array(parents, dtype=np.uint64))
    macs = vector.batch_keyed_hash8(mac._key, messages)
    assert macs == [b.compute_hmac(mac, addr, parent)
                    for b, addr, parent in zip(blocks, addrs, parents)]


def test_xor_lines(rng):
    np = vector.np
    a = rng.randbytes(K * 64)
    b = rng.randbytes(K * 64)
    out = vector.xor_lines(
        np.frombuffer(a, dtype=np.uint8).reshape(K, 64),
        np.frombuffer(b, dtype=np.uint8).reshape(K, 64))
    assert out.tobytes() == xor_bytes(a, b)
