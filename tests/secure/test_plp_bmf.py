"""PLP-on-SIT and BMF-ideal: the crash-consistent baselines and their
costs (§V-A, §VI)."""

import random

import pytest

from repro.errors import SimulationError
from repro.secure.bmf import BMFIdealController
from repro.secure.plp import PLPController

from tests.conftest import small_config


def run_writes(controller, n=60, seed=2):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


class TestPLP:
    def test_root_updated_immediately(self):
        controller = PLPController(small_config("plp"))
        controller.write_data(0, None, cycle=0)
        assert controller.running_root.counter(0) == 1

    def test_whole_branch_persisted_per_write(self):
        controller = PLPController(small_config("plp"))
        controller.write_data(0, None, cycle=0)
        # Leaf + every intermediate level, plus shadow copies.
        levels = controller.amap.tree_levels
        assert controller.stats.counter("meta_writes").value \
            >= 2 * levels - 2

    def test_shadow_writes_counted(self):
        controller = PLPController(small_config("plp"))
        controller.write_data(0, None, cycle=0)
        assert controller.stats.counter("shadow_writes").value \
            == controller.amap.tree_levels - 1

    def test_crash_recovery_succeeds(self):
        controller = run_writes(PLPController(small_config("plp")))
        controller.crash()
        report = controller.recover()
        assert report.success
        assert report.root_matched

    def test_writes_cost_more_than_scue(self):
        """Back-to-back writes at the paper's 9-level geometry: PLP's
        whole-branch persists back-pressure the 10-entry metadata WPQ,
        SCUE's shortcut does not (Fig 9)."""
        from repro.secure.scue import SCUEController
        plp = PLPController(small_config("plp", tree_levels=9))
        scue = SCUEController(small_config("scue", tree_levels=9))
        costs = {}
        for name, controller in (("plp", plp), ("scue", scue)):
            total = 0
            for i in range(10):
                total += controller.write_data(i * 64, None,
                                               cycle=i * 10).latency
            costs[name] = total
        assert costs["plp"] > 1.5 * costs["scue"]

    def test_onchip_overhead_includes_ptt_ett(self):
        controller = PLPController(small_config("plp"))
        assert controller.onchip_overhead_bytes() == 64 + 616 + 6

    def test_runs_under_metadata_pressure(self):
        run_writes(PLPController(
            small_config("plp", metadata_cache_size=1024)), n=150, seed=5)


class TestBMFIdeal:
    def test_no_tree_above_level_one(self):
        controller = BMFIdealController(small_config("bmf-ideal"))
        with pytest.raises(SimulationError):
            controller.fetch_node(2, 0)

    def test_persistent_root_tracks_leaf(self):
        controller = BMFIdealController(small_config("bmf-ideal"))
        controller.write_data(0, None, cycle=0)
        controller.write_data(0, None, cycle=200)
        assert controller._persistent_root(0).counter(0) == 2

    def test_no_intermediate_metadata_writes(self):
        """The whole point: persistent roots never touch media."""
        controller = BMFIdealController(small_config("bmf-ideal"))
        run_writes(controller, n=40)
        amap = controller.amap
        for level in range(1, amap.tree_levels):
            for index in range(amap.level_width(level)):
                addr = amap.tree_node_addr(level, index)
                assert not any(controller.nvm.peek_line(addr))

    def test_nvmc_survives_crash(self):
        controller = run_writes(BMFIdealController(
            small_config("bmf-ideal")))
        before = {i: node.counters[:] for i, node
                  in controller._nvmc.items()}
        controller.crash()
        after = {i: node.counters[:] for i, node in controller._nvmc.items()}
        assert before == after

    def test_crash_recovery_succeeds(self):
        controller = run_writes(BMFIdealController(
            small_config("bmf-ideal")))
        controller.crash()
        assert controller.recover().success

    def test_tampered_leaf_detected_at_recovery(self):
        from repro.crash.attacks import roll_forward_leaf
        controller = BMFIdealController(small_config("bmf-ideal"))
        controller.write_data(0, None, cycle=0)
        controller.crash()
        roll_forward_leaf(controller.store, 0, slot=0)
        report = controller.recover()
        assert not report.success
        assert report.leaf_hmac_failures == [0]

    def test_nvmc_overhead_scales_with_capacity(self):
        small = BMFIdealController(small_config("bmf-ideal"))
        big = BMFIdealController(small_config(
            "bmf-ideal", data_capacity=4 * 1024 * 1024))
        assert big.onchip_overhead_bytes() \
            == 4 * small.onchip_overhead_bytes()

    def test_runs_under_metadata_pressure(self):
        run_writes(BMFIdealController(
            small_config("bmf-ideal", metadata_cache_size=1024)),
            n=150, seed=5)
