"""The lazy and eager baselines: correct during runtime, root crash
inconsistent after failures (§II-D4, §III-B)."""

import random

import pytest

from repro.secure.eager import EagerController
from repro.secure.lazy import LazyController

from tests.conftest import small_config


def run_writes(controller, n=60, seed=2, spacing=100):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * spacing)
    return controller


class TestLazyRuntime:
    def test_reads_and_writes_work(self):
        controller = LazyController(small_config("lazy"))
        controller.write_data(0, b"\x42" * 64, cycle=0)
        assert controller.read_data(0, cycle=500).plaintext == b"\x42" * 64

    def test_parent_counter_counts_leaf_flushes(self):
        controller = LazyController(small_config("lazy"))
        controller.write_data(0, None, cycle=0)
        controller.write_data(0, None, cycle=200)
        parent, _ = controller.fetch_node(1, 0, charge=False)
        assert parent.counter(0) == 2

    def test_root_lags_leaves(self):
        """The lazy root only moves when top-level nodes flush: after a
        few writes it is still zero — the crash-inconsistency source."""
        controller = run_writes(LazyController(small_config("lazy")), n=5)
        assert controller.running_root.counters == [0] * 8

    def test_survives_metadata_pressure(self):
        controller = LazyController(
            small_config("lazy", metadata_cache_size=1024))
        run_writes(controller, n=200, seed=8)


class TestLazyRecovery:
    def test_recovery_fails_after_crash_with_writes(self):
        controller = run_writes(LazyController(small_config("lazy")))
        controller.crash()
        report = controller.recover()
        assert not report.success
        assert not report.root_matched
        assert report.attack_reported  # the false positive of §III-B

    def test_recovery_succeeds_with_no_writes(self):
        controller = LazyController(small_config("lazy"))
        controller.crash()
        assert controller.recover().success


class TestEagerRuntime:
    def test_reads_and_writes_work(self):
        controller = EagerController(small_config("eager"))
        controller.write_data(0, b"\x24" * 64, cycle=0)
        assert controller.read_data(0, cycle=10**6).plaintext == b"\x24" * 64

    def test_root_update_pends_during_window(self):
        controller = EagerController(small_config("eager"))
        controller.write_data(0, None, cycle=0)
        assert controller.in_window
        # The architectural (effective) root already reflects the write.
        assert controller._root_counter(0) == 1
        # The register itself has not landed yet.
        assert controller.running_root.counter(0) == 0

    def test_pending_update_lands_after_window(self):
        controller = EagerController(small_config("eager"))
        controller.write_data(0, None, cycle=0)
        controller.read_data(64, cycle=10**6)   # far past the window
        assert not controller.in_window
        assert controller.running_root.counter(0) == 1

    def test_effective_root_verifies_mid_window(self):
        """Back-to-back writes: the second write's verification happens
        while the first root update is still in flight."""
        controller = EagerController(small_config("eager"))
        controller.write_data(0, None, cycle=0)
        controller.write_data(64 * 64 * 3, None, cycle=1)  # other leaf
        controller.read_data(0, cycle=2)

    def test_survives_metadata_pressure(self):
        controller = EagerController(
            small_config("eager", metadata_cache_size=1024))
        run_writes(controller, n=200, seed=8)


class TestEagerCrashWindow:
    def test_crash_in_window_fails_recovery(self):
        controller = EagerController(small_config("eager"))
        controller.write_data(0, None, cycle=0)
        assert controller.in_window
        controller.crash()
        report = controller.recover()
        assert not report.success
        assert controller.stats.counter("window_lost_updates").value == 1

    def test_crash_outside_window_recovers(self):
        controller = EagerController(small_config("eager"))
        controller.write_data(0, None, cycle=0)
        controller.read_data(64, cycle=10**6)   # window closes
        assert not controller.in_window
        controller.crash()
        assert controller.recover().success

    def test_eadr_does_not_save_eager(self):
        """§III-C: eADR flushes caches but cannot update the root."""
        controller = EagerController(small_config("eager", eadr=True))
        controller.write_data(0, None, cycle=0)
        assert controller.in_window
        controller.crash()
        assert not controller.recover().success


@pytest.mark.parametrize("cls,scheme", [(LazyController, "lazy"),
                                        (EagerController, "eager")])
def test_single_root_register_overhead(cls, scheme):
    assert cls(small_config(scheme)).onchip_overhead_bytes() == 64
