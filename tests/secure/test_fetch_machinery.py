"""The metadata fetch-and-verify machinery: chain latency semantics,
the eviction (victim) buffer, and regression tests for the
consistency hazards found during bring-up (stale re-fetch TOCTOU,
flush-in-progress snooping)."""

import random

import pytest

from repro.secure.lazy import LazyController
from repro.secure.scue import SCUEController
from repro.tree.node import SITNode

from tests.conftest import small_config


def scue(**overrides) -> SCUEController:
    return SCUEController(small_config("scue", **overrides))


class TestChainLatency:
    def test_cached_fetch_is_free(self):
        controller = scue()
        controller.fetch_node(0, 0)
        node, latency = controller.fetch_node(0, 0)
        assert latency == 0

    def test_chain_reads_overlap(self):
        """Verification-chain reads issue in parallel: a deep chain costs
        ~one read latency plus one hash burst, not a sum of reads."""
        controller = scue(tree_levels=9)
        _, latency = controller.fetch_node(0, 0)
        one_read = controller.timing.read_cycles
        one_hash = controller.hash_engine.latency_cycles
        assert latency <= one_read + one_hash

    def test_speculative_fetch_hides_hash_only(self):
        controller = scue(tree_levels=9)
        _, eager_latency = controller.fetch_node(0, 0)
        controller2 = scue(tree_levels=9)
        _, spec_latency = controller2.fetch_node(0, 0, speculative=True)
        assert spec_latency == eager_latency \
            - controller.hash_engine.latency_cycles

    def test_uncharged_fetch_reports_zero(self):
        controller = scue()
        _, latency = controller.fetch_node(0, 3, charge=False)
        assert latency == 0
        # ...but the work happened (reads counted).
        assert controller.stats.counter("meta_reads").value > 0

    def test_verification_hashes_counted_per_fetched_node(self):
        controller = scue(tree_levels=9)
        before = controller.hash_engine.stats.counter("hashes").value
        controller.fetch_node(0, 0)
        fetched_hashes = controller.hash_engine.stats.counter(
            "hashes").value - before
        assert fetched_hashes == controller.amap.tree_levels


class TestVictimBufferRegressions:
    """The two bring-up bugs: (1) a dirty victim's updates must never be
    lost to a stale NVM re-fetch mid-flush; (2) a fetch racing a nested
    flush must re-check on-chip state before trusting media."""

    @pytest.mark.parametrize("scheme_cls,scheme",
                             [(SCUEController, "scue"),
                              (LazyController, "lazy")])
    def test_no_counter_loss_under_extreme_thrash(self, scheme_cls,
                                                  scheme):
        """A 512 B metadata cache (8 lines) with a 9-level tree: every
        operation cascades evictions.  Any lost counter bump surfaces as
        an IntegrityError within a few hundred operations."""
        controller = scheme_cls(small_config(
            scheme, metadata_cache_size=512, tree_levels=9))
        rng = random.Random(13)
        for i in range(400):
            addr = rng.randrange(0, controller.config.data_capacity, 64)
            if rng.random() < 0.6:
                controller.write_data(addr, None, cycle=i * 50)
            else:
                controller.read_data(addr, cycle=i * 50)

    def test_scue_invariant_survives_thrash(self):
        """After the thrash, the Recovery_root must still equal the leaf
        dummy sums — the invariant a lost bump would break."""
        controller = scue(metadata_cache_size=512, tree_levels=9)
        rng = random.Random(14)
        for i in range(300):
            controller.write_data(
                rng.randrange(0, controller.config.data_capacity, 64),
                None, cycle=i * 50)
        controller.crash()
        assert controller.recover().success

    def test_buffered_victim_is_snoopable(self):
        """Direct check of the eviction buffer: while a node sits in it,
        a fetch returns the buffered (current) object, not stale media."""
        controller = scue()
        node = SITNode(1, 5, counters=[9, 0, 0, 0, 0, 0, 0, 0])
        line = controller.store.node_addr(1, 5)
        controller._victim_buffer[line] = node
        fetched, latency = controller.fetch_node(1, 5)
        assert fetched is node
        assert latency == 0
        del controller._victim_buffer[line]


class TestWriteOutcomeSemantics:
    def test_persist_stall_excludes_service_time(self):
        controller = scue()
        outcome = controller.write_data(0, None, cycle=0, persist=True)
        assert outcome.latency == outcome.cpu_stall \
            + controller.timing.write_service_cycles

    def test_writeback_never_stalls_cpu(self):
        controller = scue()
        outcome = controller.write_data(0, None, cycle=0, persist=False)
        assert outcome.cpu_stall == 0
        assert outcome.latency > 0

    def test_latency_components_non_negative(self):
        controller = scue(metadata_cache_size=1024)
        rng = random.Random(15)
        for i in range(100):
            outcome = controller.write_data(
                rng.randrange(0, controller.config.data_capacity, 64),
                None, cycle=i * 100)
            assert outcome.critical_cycles >= 0
            assert outcome.wpq_stall >= 0
