"""Runtime (non-recovery) attack detection, scheme by scheme: tampering
media while the system runs must be caught at the next fetch by every
secure scheme — and silently swallowed by the insecure baseline, which
is the point of the comparison."""

import random

import pytest

from repro.errors import IntegrityError
from repro.secure import SCHEMES, make_controller

from tests.conftest import small_config

SECURE = [s for s in sorted(SCHEMES) if s != "baseline"]


def warmed(scheme, **overrides):
    controller = make_controller(small_config(
        scheme, metadata_cache_size=1024, **overrides))
    rng = random.Random(21)
    for i in range(120):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


def force_refetch(controller):
    """Flush all dirty metadata through the scheme's own flush path, then
    drop the cache, so the next access re-fetches consistent (or
    deliberately tampered) media.  Dropping without flushing would lose
    updates — that is a crash, not a refetch."""
    for _ in range(64):
        dirty = controller.meta_cache.dirty_lines()
        if not dirty:
            break
        for line in dirty:
            if line.dirty:
                line.dirty = False
                controller._flush_node(line.payload, 10**7)
    controller.meta_cache.drop_all()


@pytest.mark.parametrize("scheme", SECURE)
class TestTamperedCounterBlock:
    def test_detected_on_next_fetch(self, scheme):
        controller = warmed(scheme)
        addr = controller.amap.counter_block_addr(0)
        image = bytearray(controller.nvm.peek_line(addr))
        image[4] ^= 0x40
        controller.nvm.poke_line(addr, bytes(image))
        force_refetch(controller)
        with pytest.raises(IntegrityError):
            controller.read_data(0, cycle=10**8)


@pytest.mark.parametrize("scheme", [s for s in SECURE
                                    if s not in ("bmf-ideal",)])
class TestTamperedIntermediateNode:
    def test_detected_on_next_fetch(self, scheme):
        """Tree nodes above the leaves are also covered (BMF-ideal is
        excluded: it has no media-resident intermediate nodes at all —
        its defence is that there is nothing to tamper)."""
        controller = warmed(scheme)
        addr = controller.store.node_addr(1, 0)
        image = bytearray(controller.nvm.peek_line(addr))
        if not any(image):
            pytest.skip("node never persisted in this run")
        image[0] ^= 0xFF
        controller.nvm.poke_line(addr, bytes(image))
        force_refetch(controller)
        with pytest.raises(IntegrityError):
            controller.read_data(0, cycle=10**8)


class TestBaselineBlindness:
    def test_counter_tamper_goes_unnoticed_at_fetch(self):
        """The baseline fetches without verification; the tamper surfaces
        only as garbage plaintext (caught here by the data MAC, which a
        real CME-only system would not have either)."""
        controller = warmed("baseline")
        addr = controller.amap.counter_block_addr(0)
        image = bytearray(controller.nvm.peek_line(addr))
        image[4] ^= 0x40
        controller.nvm.poke_line(addr, bytes(image))
        force_refetch(controller)
        # The fetch itself must NOT raise — no verification happens.
        controller.fetch_node(0, 0)


@pytest.mark.parametrize("scheme", SECURE)
class TestHonestMediaPasses:
    def test_refetch_of_untampered_media_verifies(self, scheme):
        """No false positives: dropping the cache and re-reading honest
        media must always verify."""
        controller = warmed(scheme)
        force_refetch(controller)
        rng = random.Random(22)
        for i in range(60):
            controller.read_data(
                rng.randrange(0, controller.config.data_capacity, 64),
                cycle=10**8 + i * 100)
