"""SCUE-specific behaviour: the shortcut root update, the counter-summing
invariant, read-free flushes, and crash recovery."""

import random

from hypothesis import given, settings, strategies as st

from repro.crash.attacks import replay_leaf, snapshot_leaf
from repro.secure.scue import SCUEController
from repro.util.bitfield import checked_sum

from tests.conftest import small_config


def scue(**overrides) -> SCUEController:
    return SCUEController(small_config("scue", **overrides))


def leaf_dummy_sum(controller) -> list[int]:
    """Recompute what the Recovery_root should hold: the per-subtree sum
    of persisted leaf dummy counters."""
    amap = controller.amap
    sums = [0] * 8
    span = 8 ** (amap.tree_levels - 1)
    for index in range(amap.num_counter_blocks):
        leaf = controller.store.load(0, index, counted=False)
        slot = (index // span) % 8
        sums[slot] = checked_sum([sums[slot], leaf.dummy_counter()], 56)
    return sums


class TestShortcutRootUpdate:
    def test_recovery_root_tracks_every_persist(self):
        controller = scue()
        rng = random.Random(4)
        for i in range(100):
            addr = rng.randrange(0, controller.config.data_capacity, 64)
            controller.write_data(addr, None, cycle=i * 100)
        assert controller.recovery_root.counters == \
            leaf_dummy_sum(controller)

    def test_shortcut_counter_increments(self):
        controller = scue()
        controller.write_data(0, None, cycle=0)
        assert controller.stats.counter("shortcut_root_updates").value == 1

    def test_root_update_is_constant_cost(self):
        """The write critical path must not contain node reads: one hash
        plus register work, independent of tree height."""
        shallow = scue()
        tall = scue(tree_levels=9)
        for controller in (shallow, tall):
            controller.write_data(0, None, cycle=0)  # warm leaf
        a = shallow.write_data(0, None, cycle=10_000).critical_cycles
        b = tall.write_data(0, None, cycle=10_000).critical_cycles
        assert a == b

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_invariant_over_arbitrary_write_sequences(self, lines):
        controller = scue()
        for i, line in enumerate(lines):
            controller.write_data(line * 64, None, cycle=i * 100)
        assert controller.recovery_root.counters == \
            leaf_dummy_sum(controller)


class TestDummyCounterFlush:
    def test_flush_performs_no_reads(self):
        """Evicting a dirty tree node must not read NVM (the dummy
        counter makes the parent input local) — §IV-A2."""
        controller = scue(metadata_cache_size=1024)
        rng = random.Random(5)
        # Generate traffic, then measure reads attributable to flushes.
        for i in range(50):
            controller.write_data(rng.randrange(0, 2**20, 64), None,
                                  cycle=i * 100)
        from repro.tree.node import SITNode
        node = SITNode(1, 0, counters=[1] * 8)
        reads_before = controller.nvm.stats.counter("reads").value
        # _flush_node itself: seal + persist, no fetches.
        meta_reads_before = controller.stats.counter("meta_reads").value
        controller._flush_node(node, cycle=10**6)
        # The parent update afterwards may read (off critical path), but
        # the flush return value charges only hash + WPQ.
        assert controller.stats.counter("meta_writes").value > 0
        del reads_before, meta_reads_before

    def test_flush_cost_is_single_hash(self):
        controller = scue()
        from repro.tree.node import SITNode
        node = SITNode(1, 0, counters=[1] * 8)
        cycles = controller._flush_node(node, cycle=0)
        assert cycles <= controller.hash_engine.latency_cycles + 10


class TestRecovery:
    def run_crash(self, n=80, **overrides) -> SCUEController:
        controller = scue(**overrides)
        rng = random.Random(11)
        for i in range(n):
            controller.write_data(
                rng.randrange(0, controller.config.data_capacity, 64),
                None, cycle=i * 100)
        controller.crash()
        return controller

    def test_clean_crash_recovers(self):
        controller = self.run_crash()
        report = controller.recover()
        assert report.success
        assert report.root_matched
        assert not report.leaf_hmac_failures

    def test_running_root_restored_after_recovery(self):
        controller = self.run_crash()
        controller.recover()
        # Runtime must continue: fetches verify against the restored
        # Running_root.
        controller.read_data(0, cycle=10**7)
        controller.write_data(0, None, cycle=10**7 + 100)

    def test_recovery_is_repeatable(self):
        controller = self.run_crash()
        assert controller.recover().success
        controller.crash()
        assert controller.recover().success

    def test_replay_detected_by_root(self):
        controller = scue()
        controller.write_data(0, None, cycle=0)
        snap = snapshot_leaf(controller.store, 0)
        controller.write_data(0, None, cycle=100)
        controller.crash()
        replay_leaf(controller.store, snap)
        report = controller.recover()
        assert not report.success
        assert not report.root_matched
        assert not report.leaf_hmac_failures  # replay passes HMACs

    def test_failed_recovery_does_not_write_back(self):
        controller = scue()
        controller.write_data(0, None, cycle=0)
        snap = snapshot_leaf(controller.store, 0)
        controller.write_data(0, None, cycle=100)
        controller.crash()
        replay_leaf(controller.store, snap)
        report = controller.recover()
        assert report.metadata_writes == 0

    def test_recovery_with_eadr_stale_hmacs(self):
        """eADR flushes dirty intermediate nodes with stale HMACs — the
        counter-summing recovery must not care (§III-C)."""
        controller = self.run_crash(eadr=True)
        assert controller.recover().success


class TestTrackers:
    def test_star_tracker_wired(self):
        controller = scue(recovery_tracker="star",
                          leaf_write_through=False)
        rng = random.Random(3)
        for i in range(60):
            controller.write_data(rng.randrange(0, 2**20, 64), None,
                                  cycle=i * 100)
        assert controller.tracker.stale_nodes > 0

    def test_agit_tracker_counts_runtime_writes(self):
        controller = scue(recovery_tracker="agit",
                          leaf_write_through=False)
        for i in range(30):
            controller.write_data(i * 64 * 64, None, cycle=i * 100)
        assert controller.tracker.runtime_write_overhead > 0

    def test_tracker_reset_after_successful_recovery(self):
        controller = scue(recovery_tracker="star")
        controller.write_data(0, None, cycle=0)
        controller.crash()
        report = controller.recover()
        assert report.success
        assert controller.tracker.stale_nodes == 0

    def test_no_tracker_by_default(self):
        assert scue().tracker is None


class TestOverheads:
    def test_two_registers(self):
        assert scue().onchip_overhead_bytes() == 128
