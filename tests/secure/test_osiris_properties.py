"""Property-based checks on the Osiris counter-recovery search itself."""

import random

from hypothesis import given, settings, strategies as st

from repro.crash.osiris import OsirisReport, _candidates
from repro.cme.counters import MINOR_LIMIT
from repro.secure.scue import SCUEController

from tests.conftest import small_config


class TestCandidates:
    def test_starts_at_stored_value(self):
        assert next(_candidates(2, 10, 4)) == (2, 10)

    def test_count_bounded_by_limit(self):
        candidates = list(_candidates(0, 0, 6))
        assert len(candidates) == 7
        assert candidates[-1] == (0, 6)

    def test_never_crosses_minor_overflow(self):
        candidates = list(_candidates(1, MINOR_LIMIT - 2, 8))
        assert all(minor < MINOR_LIMIT for _, minor in candidates)
        assert all(major == 1 for major, _ in candidates)

    @given(st.integers(0, 100), st.integers(0, MINOR_LIMIT - 1),
           st.integers(0, 16))
    def test_candidates_are_monotone(self, major, minor, limit):
        minors = [m for _, m in _candidates(major, minor, limit)]
        assert minors == sorted(minors)
        assert all(minor <= m <= minor + limit for m in minors)


class TestReport:
    def test_success_iff_no_unrecoverable(self):
        report = OsirisReport()
        assert report.success
        report.unrecoverable.append((0, 1))
        assert not report.success


class TestSearchProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_any_history_within_limit_recovers(self, seed, limit):
        """Whatever the write history, the forced-writeback discipline
        keeps every slot's stale distance within the search window, so
        recovery always succeeds on honest media."""
        controller = SCUEController(small_config(
            "scue", leaf_write_through=False, osiris_limit=limit))
        rng = random.Random(seed)
        for i in range(60):
            controller.write_data(
                rng.randrange(0, controller.config.data_capacity, 64),
                None, cycle=i * 100)
        controller.crash()
        assert controller.recover().success

    def test_hot_line_hammering_recovers(self):
        """All writes to ONE line: per-slot distance == per-leaf pending,
        the tightest case for the limit discipline."""
        controller = SCUEController(small_config(
            "scue", leaf_write_through=False, osiris_limit=4))
        for i in range(23):   # not a multiple of the limit: stale tail
            controller.write_data(0, None, cycle=i * 100)
        controller.crash()
        report = controller.recover()
        assert report.success
        leaf = controller.store.load(0, 0, counted=False)
        assert leaf.minors[0] == 23
