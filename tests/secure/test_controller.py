"""Shared controller machinery, exercised through every scheme: the data
path (encrypt/persist/read/verify), counter overflow, metadata-cache
consistency under pressure, and the timing outcomes."""

import pytest

from repro.errors import IntegrityError
from repro.secure import SCHEMES, make_controller
from repro.crash.attacks import tamper_data_line

from tests.conftest import small_config

ALL = sorted(SCHEMES)
SECURE = [s for s in ALL if s != "baseline"]


@pytest.fixture(params=ALL)
def controller(request):
    return make_controller(small_config(request.param))


class TestDataPath:
    def test_write_then_read_roundtrip(self, controller):
        payload = bytes(range(64))
        controller.write_data(0x1000, payload, cycle=0)
        outcome = controller.read_data(0x1000, cycle=100)
        assert outcome.plaintext == payload

    def test_data_is_encrypted_on_media(self, controller):
        payload = b"\x5A" * 64
        controller.write_data(0x2000, payload, cycle=0)
        assert controller.nvm.peek_line(0x2000) != payload

    def test_fresh_line_reads_zero(self, controller):
        outcome = controller.read_data(0x3000, cycle=0)
        assert outcome.plaintext == bytes(64)

    def test_overwrite_returns_latest(self, controller):
        controller.write_data(0, b"\x01" * 64, cycle=0)
        controller.write_data(0, b"\x02" * 64, cycle=50)
        assert controller.read_data(0, cycle=100).plaintext == b"\x02" * 64

    def test_writeback_vs_persist_latency_accounting(self, controller):
        persist = controller.write_data(0, None, cycle=0, persist=True)
        writeback = controller.write_data(64, None, cycle=10, persist=False)
        assert persist.cpu_stall >= 0
        assert writeback.cpu_stall == 0
        assert writeback.latency > 0

    def test_write_latency_includes_service_time(self, controller):
        outcome = controller.write_data(0, None, cycle=0)
        assert outcome.latency >= controller.timing.write_service_cycles


@pytest.mark.parametrize("scheme", SECURE)
class TestDataIntegrity:
    def test_tampered_data_detected_on_read(self, scheme):
        controller = make_controller(small_config(scheme))
        controller.write_data(0x1000, b"\x11" * 64, cycle=0)
        tamper_data_line(controller.nvm, controller.amap, 0x1000)
        with pytest.raises(IntegrityError):
            controller.read_data(0x1000, cycle=100)

    def test_untampered_data_passes(self, scheme):
        controller = make_controller(small_config(scheme))
        controller.write_data(0x1000, b"\x11" * 64, cycle=0)
        controller.read_data(0x1000, cycle=100)


class TestCounterOverflow:
    @pytest.mark.parametrize("scheme", ["baseline", "scue", "lazy"])
    def test_overflow_reencrypts_and_data_survives(self, scheme):
        controller = make_controller(small_config(scheme))
        addr = 0
        neighbour = 64 * 5  # same counter block, different line
        controller.write_data(neighbour, b"\x77" * 64, cycle=0)
        minor_limit = 1 << 6
        for i in range(minor_limit + 2):
            controller.write_data(addr, bytes([i % 256]) * 64,
                                  cycle=1000 * (i + 1))
        assert controller.stats.counter("counter_overflows").value >= 1
        # Both the hammered line and its neighbour must still decrypt.
        got = controller.read_data(neighbour, cycle=10**9)
        assert got.plaintext == b"\x77" * 64
        got = controller.read_data(addr, cycle=10**9 + 10)
        assert got.plaintext == bytes([(minor_limit + 1) % 256]) * 64


@pytest.mark.parametrize("scheme", SECURE)
class TestMetadataConsistencyUnderPressure:
    """Stress the eviction machinery: a tiny metadata cache forces
    constant flush/refetch; verification must never misfire."""

    def test_wide_random_traffic(self, scheme):
        controller = make_controller(small_config(
            scheme, metadata_cache_size=1024))  # 16 lines only
        import random
        rng = random.Random(9)
        for i in range(400):
            addr = rng.randrange(0, controller.config.data_capacity, 64)
            if rng.random() < 0.5:
                controller.write_data(addr, None, cycle=i * 50)
            else:
                controller.read_data(addr, cycle=i * 50)

    def test_sequential_sweep(self, scheme):
        controller = make_controller(small_config(
            scheme, metadata_cache_size=1024))
        for i in range(300):
            controller.write_data((i * 64) % controller.config.data_capacity,
                                  None, cycle=i * 40)


class TestStats:
    def test_write_latency_recorded(self, controller):
        controller.write_data(0, None, cycle=0)
        assert controller.stats.histogram("write_latency").count == 1

    def test_region_classified_counts(self, controller):
        controller.write_data(0, None, cycle=0)
        controller.read_data(64 * 100, cycle=100)
        stats = controller.stats_dict()
        assert stats["controller.data_writes"] == 1
        assert stats["controller.data_reads"] == 1

    def test_onchip_overheads_ranked(self):
        """§V-F sanity: SCUE tiny, PLP small, BMF huge."""
        sizes = {scheme: make_controller(
            small_config(scheme)).onchip_overhead_bytes()
            for scheme in ALL}
        assert sizes["baseline"] == 0
        assert sizes["scue"] == 128
        assert sizes["lazy"] == 64
        assert sizes["plp"] > sizes["scue"]
        # BMF's nvMC dwarfs SCUE even at this tiny 1 MB capacity, and it
        # grows linearly with the NVM while SCUE stays at 128 B.
        assert sizes["bmf-ideal"] > 10 * sizes["scue"]
