"""The insecure baseline: encryption only, no integrity machinery."""

import random

from repro.secure.baseline import BaselineController

from tests.conftest import small_config


def controller(**overrides) -> BaselineController:
    return BaselineController(small_config("baseline", **overrides))


class TestBaseline:
    def test_data_roundtrip(self):
        ctl = controller()
        ctl.write_data(0, b"\x33" * 64, cycle=0)
        assert ctl.read_data(0, cycle=100).plaintext == b"\x33" * 64

    def test_no_hashes_ever(self):
        ctl = controller()
        for i in range(20):
            ctl.write_data(i * 64, None, cycle=i * 100)
            ctl.read_data(i * 64, cycle=i * 100 + 50)
        # CME + data MACs are modelled as ECC-resident and verified with
        # the read, but the *tree* hash engine is what schemes pay for:
        # baseline never touches tree nodes.
        assert ctl.stats.counter("meta_writes").value <= 20 + 5

    def test_no_tree_nodes_touched(self):
        ctl = controller()
        rng = random.Random(1)
        for i in range(60):
            ctl.write_data(rng.randrange(0, 2**20, 64), None, cycle=i * 100)
        amap = ctl.amap
        for level in range(1, amap.tree_levels):
            for index in range(amap.level_width(level)):
                assert not any(ctl.nvm.peek_line(
                    amap.tree_node_addr(level, index)))

    def test_fetch_does_not_verify(self):
        """Baseline trusts whatever it reads — by construction."""
        ctl = controller()
        ctl.write_data(0, None, cycle=0)
        ctl.crash()
        # Corrupt the counter block wholesale: baseline won't notice on
        # fetch (data decryption will just produce garbage — that is the
        # vulnerability the secure schemes close).
        addr = ctl.amap.counter_block_addr(0)
        ctl.nvm.poke_line(addr, b"\xFF" * 64)
        ctl.fetch_node(0, 0)  # must not raise

    def test_recovery_trivially_succeeds(self):
        ctl = controller()
        ctl.write_data(0, None, cycle=0)
        ctl.crash()
        report = ctl.recover()
        assert report.success
        assert "insecure" in report.detail

    def test_zero_onchip_overhead(self):
        assert controller().onchip_overhead_bytes() == 0

    def test_write_through_config_respected(self):
        through = controller(leaf_write_through=True)
        through.write_data(0, None, cycle=0)
        assert through.stats.counter("meta_writes").value == 1
        lazy_leaf = controller(leaf_write_through=False)
        lazy_leaf.write_data(0, None, cycle=0)
        assert lazy_leaf.stats.counter("meta_writes").value == 0
