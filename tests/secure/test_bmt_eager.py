"""The eager BMT controller — the §II-D4 cross-tree comparison point."""

import random

import pytest

from repro.crash.attacks import snapshot_leaf, replay_leaf
from repro.errors import ConfigError, IntegrityError
from repro.secure.bmt_eager import BMTEagerController, BMTMediaNode

from tests.conftest import small_config


def bmt(**overrides) -> BMTEagerController:
    return BMTEagerController(small_config("bmt-eager", **overrides))


def run_writes(controller, n=80, seed=3):
    rng = random.Random(seed)
    for i in range(n):
        controller.write_data(
            rng.randrange(0, controller.config.data_capacity, 64),
            None, cycle=i * 100)
    return controller


class TestBMTMediaNode:
    def test_roundtrip(self):
        node = BMTMediaNode(1, 2, digests=[i * 1000 for i in range(8)])
        restored = BMTMediaNode.from_bytes(1, 2, node.to_bytes())
        assert restored.digests == node.digests

    def test_blank(self):
        assert BMTMediaNode(1, 0).is_blank
        node = BMTMediaNode(1, 0)
        node.set_digest(3, 42)
        assert not node.is_blank

    def test_digest_masked_to_64_bits(self):
        node = BMTMediaNode(1, 0)
        node.set_digest(0, 1 << 64)
        assert node.digest(0) == 0

    def test_wrong_count_rejected(self):
        with pytest.raises(ConfigError):
            BMTMediaNode(1, 0, digests=[0] * 4)


class TestRuntime:
    def test_data_roundtrip(self):
        controller = bmt(check_data=True)
        controller.write_data(0, b"\x1F" * 64, cycle=0)
        assert controller.read_data(0, cycle=500).plaintext == b"\x1F" * 64

    def test_sequential_hash_cost_scales_with_height(self):
        """The BMT signature: write cost grows with tree height."""
        short = bmt()
        tall = bmt(tree_levels=9)
        for controller in (short, tall):
            controller.write_data(0, None, cycle=0)  # warm the branch
        a = short.write_data(0, None, cycle=10**6).critical_cycles
        b = tall.write_data(0, None, cycle=10**6).critical_cycles
        assert b > a + 4 * short.hash_engine.latency_cycles

    def test_costlier_than_eager_sit_at_high_hash_latency(self):
        from repro.secure.eager import EagerController
        sit = EagerController(small_config("eager", hash_latency=160,
                                           tree_levels=9))
        tree = bmt(hash_latency=160, tree_levels=9)
        for controller in (sit, tree):
            controller.write_data(0, None, cycle=0)
        sit_cost = sit.write_data(0, None, cycle=10**6).critical_cycles
        bmt_cost = tree.write_data(0, None, cycle=10**6).critical_cycles
        assert bmt_cost > 3 * sit_cost

    def test_survives_metadata_pressure(self):
        run_writes(bmt(metadata_cache_size=1024), n=200, seed=8)

    def test_wide_arity_rejected(self):
        with pytest.raises(ConfigError):
            bmt(tree_arity=16)


class TestRecoveryAndAttacks:
    def test_crash_recovery_succeeds(self):
        controller = run_writes(bmt())
        controller.crash()
        report = controller.recover()
        assert report.success
        run_writes(controller, n=20, seed=9)   # keeps running

    def test_failed_recovery_does_not_write_back(self):
        controller = run_writes(bmt())
        controller.root_digests[0] ^= 1        # poison the register
        controller.crash()
        report = controller.recover()
        assert not report.success
        assert report.metadata_writes == 0

    def test_replay_detected_at_recovery(self):
        controller = bmt()
        controller.write_data(0, None, cycle=0)
        snap = snapshot_leaf(controller.store, 0)
        controller.write_data(0, None, cycle=100)
        controller.crash()
        replay_leaf(controller.store, snap)
        assert not controller.recover().success

    def test_tampered_node_detected_at_runtime(self):
        controller = run_writes(bmt(metadata_cache_size=1024), n=60)
        # Corrupt a level-1 node on media, drop caches, force re-fetch.
        addr = controller.store.node_addr(1, 0)
        image = bytearray(controller.nvm.peek_line(addr))
        image[0] ^= 0xFF
        controller.nvm.poke_line(addr, bytes(image))
        controller.meta_cache.drop_all()
        with pytest.raises(IntegrityError):
            controller.read_data(0, cycle=10**8)

    def test_onchip_overhead_is_one_register(self):
        assert bmt().onchip_overhead_bytes() == 64
