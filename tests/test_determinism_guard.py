"""Golden-digest determinism guard for the hot-path optimizations.

These digests were captured on the pre-optimization tree (before the MAC
memos, branch-chain interning and allocation-free packing landed) over
the exact fig10-quick recipe, with the persist-ordering sanitizer
attached.  They are the PR's byte-identical contract in executable form:
if any optimization — present or future — changes the simulated
behaviour by even one counter value, the exported ``RunResult`` JSON
changes and this test fails.

Recompute a digest (only after deliberately changing simulation
semantics!) with the ``fig10_quick_digest`` helper below.
"""

import hashlib
import json

import pytest

from repro.analysis.sanitizer import attach_sanitizer
from repro.bench.export import to_jsonable
from repro.bench.harness import BenchScale
from repro.sim.system import System
from repro.workloads import make_workload

#: sha256 over the canonical JSON of ``System.result`` for fig10-quick
#: (array workload, seed 42), captured before the optimization layers.
GOLDEN = {
    "scue":
        "02502bebfc68649f032b37c59563706df9e4daa5a56a2a7d4fbd90418c3af3e0",
    "eager":
        "8b556ac50af1aa20c7dc2fd249057e1a328e73d17e91aaaebc6d60ff5d270d2f",
}


def fig10_quick_digest(scheme: str) -> str:
    scale = BenchScale.quick()
    system = System(scale.config(scheme))
    # The sanitizer hooks the controller's persist seams; running with it
    # attached also proves the optimizations kept those seams patchable.
    attach_sanitizer(system.controller)
    workload = make_workload("array", scale.data_capacity,
                             scale.operations, seed=42)
    system.run(workload.trace())
    payload = json.dumps(to_jsonable(system.result("array")),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_fig10_quick_result_matches_pre_optimization_golden(scheme):
    assert fig10_quick_digest(scheme) == GOLDEN[scheme]


def test_digest_is_stable_across_runs_in_one_process():
    """Warm memos (second run) must not change the exported result."""
    assert fig10_quick_digest("scue") == fig10_quick_digest("scue")
