"""The repro-sim command-line interface (invoked in-process)."""

import pytest

from repro.cli import main

FAST = ["--capacity", str(1024 * 1024), "--operations", "60",
        "--metadata-cache", "4096"]


class TestInfo:
    def test_lists_schemes_and_workloads(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "scue" in out
        assert "rbtree" in out


class TestRun:
    def test_default_run(self, capsys):
        assert main(["run", "--workload", "queue", *FAST]) == 0
        out = capsys.readouterr().out
        assert "avg write latency" in out
        assert "scheme            : scue" in out

    def test_scheme_selection(self, capsys):
        assert main(["run", "--scheme", "plp", "--workload", "array",
                     *FAST]) == 0
        assert "plp" in capsys.readouterr().out

    def test_arity_option(self, capsys):
        assert main(["run", "--tree-arity", "16", "--workload", "array",
                     *FAST]) == 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "nonsense"])


class TestCompare:
    def test_table_covers_all_schemes(self, capsys):
        assert main(["compare", "--workload", "queue", *FAST]) == 0
        out = capsys.readouterr().out
        for scheme in ("baseline", "lazy", "plp", "bmf-ideal", "scue"):
            assert scheme in out


class TestCrash:
    def test_scue_recovers_exit_zero(self, capsys):
        code = main(["crash", "--scheme", "scue", "--workload", "array",
                     "--crash-after", "30", *FAST])
        assert code == 0
        assert "SUCCESS" in capsys.readouterr().out

    def test_lazy_fails_exit_nonzero(self, capsys):
        code = main(["crash", "--scheme", "lazy", "--workload", "array",
                     "--crash-after", "30", *FAST])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestRecordReplay:
    def test_record_then_replay(self, tmp_path, capsys):
        trace_file = str(tmp_path / "w.trc")
        assert main(["record", "--workload", "queue", "--operations",
                     "40", "--capacity", str(1024 * 1024),
                     "-o", trace_file]) == 0
        assert main(["replay", trace_file, "--capacity",
                     str(1024 * 1024), "--metadata-cache", "4096"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "replay:" in out

    def test_record_compressed(self, tmp_path):
        trace_file = str(tmp_path / "w.trc.gz")
        assert main(["record", "--workload", "array", "--operations",
                     "30", "--capacity", str(1024 * 1024),
                     "-o", trace_file, "--compress"]) == 0
