"""The repro-sim command-line interface (invoked in-process)."""

import pytest

from repro.cli import main

FAST = ["--capacity", str(1024 * 1024), "--operations", "60",
        "--metadata-cache", "4096"]


class TestInfo:
    def test_lists_schemes_and_workloads(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "scue" in out
        assert "rbtree" in out


class TestRun:
    def test_default_run(self, capsys):
        assert main(["run", "--workload", "queue", *FAST]) == 0
        out = capsys.readouterr().out
        assert "avg write latency" in out
        assert "scheme            : scue" in out

    def test_scheme_selection(self, capsys):
        assert main(["run", "--scheme", "plp", "--workload", "array",
                     *FAST]) == 0
        assert "plp" in capsys.readouterr().out

    def test_arity_option(self, capsys):
        assert main(["run", "--tree-arity", "16", "--workload", "array",
                     *FAST]) == 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "nonsense"])


class TestCompare:
    def test_table_covers_all_schemes(self, capsys):
        assert main(["compare", "--workload", "queue", *FAST]) == 0
        out = capsys.readouterr().out
        for scheme in ("baseline", "lazy", "plp", "bmf-ideal", "scue"):
            assert scheme in out


class TestCrash:
    def test_scue_recovers_exit_zero(self, capsys):
        code = main(["crash", "--scheme", "scue", "--workload", "array",
                     "--crash-after", "30", *FAST])
        assert code == 0
        assert "SUCCESS" in capsys.readouterr().out

    def test_lazy_fails_exit_nonzero(self, capsys):
        code = main(["crash", "--scheme", "lazy", "--workload", "array",
                     "--crash-after", "30", *FAST])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestRecordReplay:
    def test_record_then_replay(self, tmp_path, capsys):
        trace_file = str(tmp_path / "w.trc")
        assert main(["record", "--workload", "queue", "--operations",
                     "40", "--capacity", str(1024 * 1024),
                     "-o", trace_file]) == 0
        assert main(["replay", trace_file, "--capacity",
                     str(1024 * 1024), "--metadata-cache", "4096"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "replay:" in out

    def test_record_compressed(self, tmp_path):
        trace_file = str(tmp_path / "w.trc.gz")
        assert main(["record", "--workload", "array", "--operations",
                     "30", "--capacity", str(1024 * 1024),
                     "-o", trace_file, "--compress"]) == 0


class TestTrace:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        import json

        from repro.obs.validate import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert main(["trace", "--workload", "queue", *FAST,
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        assert "OK" in out              # attribution sums exactly
        assert "MISMATCH" not in out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["total_cycles"] > 0

    def test_trace_ring_mode_bounds_events(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--workload", "queue", *FAST,
                     "--ring", "50", "--out", str(out_path)]) == 0
        assert "wrote 50 events" in capsys.readouterr().out

    def test_trace_result_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        result_path = tmp_path / "result.json"
        assert main(["trace", "--workload", "queue", *FAST,
                     "--out", str(out_path),
                     "--result-json", str(result_path)]) == 0
        data = json.loads(result_path.read_text())
        assert data["scheme"] == "scue"
        assert sum(data["attribution"].values()) == data["cycles"]


class TestStatsDiff:
    def _result_json(self, tmp_path, scheme):
        path = tmp_path / f"{scheme}.json"
        assert main(["run", "--scheme", scheme, "--workload", "queue",
                     *FAST, "--json", str(path)]) == 0
        return str(path)

    def test_diff_two_schemes(self, tmp_path, capsys):
        a = self._result_json(tmp_path, "scue")
        b = self._result_json(tmp_path, "plp")
        capsys.readouterr()
        assert main(["stats", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "scue/queue" in out
        assert "plp/queue" in out
        assert "write_scheme" in out
        assert "attribution" in out

    def test_diff_rejects_non_result_json(self, tmp_path):
        import json

        from repro.errors import ObservabilityError

        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"not": "a result"}))
        with pytest.raises(ObservabilityError):
            main(["stats", "diff", str(bogus), str(bogus)])
