"""Multi-programmed simulation: shared-controller contention and crash
semantics across cores."""

import pytest

from repro.errors import ConfigError
from repro.mem.trace import AccessType, MemoryAccess
from repro.sim.multicore import (
    MultiProgramSystem,
    offset_trace,
    partitioned_workloads,
)

from tests.conftest import persist_trace, small_config


def make_mp(scheme="scue", cores=4, **overrides) -> MultiProgramSystem:
    return MultiProgramSystem(small_config(scheme, **overrides),
                              cores=cores)


class TestOffsetTrace:
    def test_addresses_shift(self):
        base = [MemoryAccess(AccessType.READ, 0, gap=2),
                MemoryAccess(AccessType.PERSIST, 64, data=b"x")]
        shifted = list(offset_trace(base, 4096))
        assert [a.addr for a in shifted] == [4096, 4160]
        assert shifted[0].gap == 2
        assert shifted[1].data == b"x"


class TestPartitionedWorkloads:
    def test_slices_are_disjoint(self):
        config = small_config()
        traces = partitioned_workloads(config, ["array", "queue"], 40)
        spans = {}
        for name, trace in traces.items():
            addrs = [a.addr for a in trace]
            spans[name] = (min(addrs), max(addrs))
        (lo_a, hi_a), (lo_b, hi_b) = spans.values()
        assert hi_a < lo_b or hi_b < lo_a

    def test_all_addresses_in_bounds(self):
        config = small_config()
        traces = partitioned_workloads(config,
                                       ["array", "hash", "queue"], 40)
        for trace in traces.values():
            assert all(0 <= a.addr < config.data_capacity for a in trace)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            partitioned_workloads(small_config(), [], 10)


class TestMultiProgramRun:
    def test_runs_per_core_results(self):
        system = make_mp(cores=2)
        traces = partitioned_workloads(system.config, ["array", "queue"],
                                       40)
        system.run(traces)
        results = system.results()
        assert len(results) == 2
        assert all(r.cycles > 0 for r in results)
        assert all(r.accesses > 0 for r in results)
        assert system.makespan == max(r.cycles for r in results)

    def test_too_many_traces_rejected(self):
        system = make_mp(cores=1)
        with pytest.raises(ConfigError):
            system.run({"a": persist_trace(5), "b": persist_trace(5)})

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            make_mp(cores=0)

    def test_contention_slows_corun(self):
        """The same workload co-running with three writers must not be
        faster than running alone (shared WPQ + metadata cache)."""
        alone = make_mp(cores=4)
        alone.run(partitioned_workloads(alone.config, ["array"], 80))
        alone_cycles = alone.results()[0].cycles

        shared = make_mp(cores=4)
        shared.run(partitioned_workloads(
            shared.config, ["array", "array", "array", "array"], 80))
        shared_cycles = shared.results()[0].cycles
        assert shared_cycles >= alone_cycles * 0.98

    def test_interleave_is_deterministic(self):
        def run_once():
            system = make_mp(cores=3)
            system.run(partitioned_workloads(
                system.config, ["array", "hash", "queue"], 50))
            return [r.cycles for r in system.results()]
        assert run_once() == run_once()


class TestMultiProgramCrash:
    @pytest.mark.parametrize("scheme,expected", [("scue", True),
                                                 ("plp", True),
                                                 ("lazy", False)])
    def test_crash_recovery_truth(self, scheme, expected):
        system = make_mp(scheme=scheme, cores=2)
        system.run(partitioned_workloads(system.config,
                                         ["array", "queue"], 40))
        system.crash()
        assert system.recover().success is expected

    def test_all_cores_drop_caches(self):
        system = make_mp(cores=2)
        system.run(partitioned_workloads(system.config,
                                         ["array", "queue"], 30))
        system.crash()
        for core in system._cores:
            assert core.hierarchy.load(0).miss_to_memory
