"""The full system: CPU timing, access dispatch, crash semantics."""

import pytest

from repro.errors import AddressError
from repro.mem.trace import AccessType, MemoryAccess
from repro.sim.system import System

from tests.conftest import persist_trace, random_trace, small_config


class TestExecution:
    def test_instructions_counted(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.READ, 0, gap=4)])
        assert system.result().instructions == 5  # gap + the access

    def test_access_kinds_counted(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.READ, 0),
                    MemoryAccess(AccessType.WRITE, 64),
                    MemoryAccess(AccessType.PERSIST, 128)])
        result = system.result()
        assert (result.loads, result.stores, result.persists) == (1, 1, 1)

    def test_load_miss_stalls(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.READ, 0, gap=0)])
        assert system.result().load_stall_cycles > 0

    def test_cached_load_does_not_stall(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.READ, 0, gap=0)] * 2)
        first = system.result().load_stall_cycles
        system.run([MemoryAccess(AccessType.READ, 0, gap=0)])
        assert system.result().load_stall_cycles == first

    def test_persist_stalls(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.PERSIST, 0, gap=0)])
        assert system.result().persist_stall_cycles > 0

    def test_plain_store_does_not_stall(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.WRITE, 0, gap=0)])
        result = system.result()
        assert result.persist_stall_cycles == 0

    def test_store_data_flows_to_writeback(self):
        """A stored payload must survive eviction + writeback + re-read."""
        system = System(small_config())
        payload = b"\x3C" * 64
        system.run([MemoryAccess(AccessType.WRITE, 0, data=payload)])
        # Force line 0 out of the (tiny) hierarchy with conflicting loads.
        system.run([MemoryAccess(AccessType.READ, i * 4096)
                    for i in range(1, 40)])
        system.run([MemoryAccess(AccessType.READ, 0)])
        assert system.controller._plaintexts[0] == payload

    def test_address_beyond_data_region_rejected(self):
        system = System(small_config())
        with pytest.raises(AddressError):
            system.run([MemoryAccess(
                AccessType.READ, system.config.data_capacity)])

    def test_cycles_monotone(self):
        system = System(small_config())
        trace = random_trace(50)
        checkpoints = []
        for access in trace:
            system.execute(access)
            checkpoints.append(system.cycle)
        assert checkpoints == sorted(checkpoints)


class TestWarmupReset:
    def test_reset_stats_zeroes_measurements(self):
        system = System(small_config())
        system.run(random_trace(30))
        system.reset_stats()
        result = system.result()
        assert result.instructions == 0
        assert result.cycles == 0
        assert result.nvm_data_writes == 0

    def test_state_survives_reset(self):
        system = System(small_config())
        system.run([MemoryAccess(AccessType.PERSIST, 0,
                                 data=b"\x77" * 64)])
        system.reset_stats()
        system.run([MemoryAccess(AccessType.READ, 0)])
        assert system.controller._plaintexts[0] == b"\x77" * 64


class TestCrash:
    def test_crash_drops_cpu_caches(self):
        system = System(small_config())
        system.run(random_trace(20))
        system.crash()
        assert system.hierarchy.load(0).miss_to_memory

    def test_crash_then_recover_then_continue(self):
        system = System(small_config())
        system.run(persist_trace(25))
        system.crash()
        assert system.recover().success
        system.run(persist_trace(25, seed=9))  # must not raise

    def test_eadr_flushes_dirty_data(self):
        config = small_config(eadr=True)
        system = System(config)
        system.run([MemoryAccess(AccessType.WRITE, 0, data=b"\x66" * 64)])
        writes_before = system.controller.stats.counter("data_writes").value
        system.crash()
        assert system.controller.stats.counter("data_writes").value \
            > writes_before

    def test_no_eadr_loses_dirty_data(self):
        system = System(small_config(eadr=False))
        system.run([MemoryAccess(AccessType.WRITE, 0, data=b"\x66" * 64)])
        writes_before = system.controller.stats.counter("data_writes").value
        system.crash()
        assert system.controller.stats.counter("data_writes").value \
            == writes_before
