"""System checkpointing: save/load/fork fidelity."""

import pytest

from repro.errors import ConfigError
from repro.sim.checkpoint import fork, load_checkpoint, save_checkpoint
from repro.sim.system import System

from tests.conftest import persist_trace, random_trace, small_config


def warmed_system() -> System:
    system = System(small_config(check_data=True))
    system.run(random_trace(150, seed=4))
    return system


class TestSaveLoad:
    def test_roundtrip_preserves_cycles_and_stats(self, tmp_path):
        system = warmed_system()
        path = tmp_path / "warm.ckpt"
        save_checkpoint(system, path)
        restored = load_checkpoint(path)
        assert restored.cycle == system.cycle
        assert restored.result().nvm_data_writes \
            == system.result().nvm_data_writes

    def test_restored_system_keeps_running(self, tmp_path):
        system = warmed_system()
        path = tmp_path / "warm.ckpt"
        save_checkpoint(system, path)
        restored = load_checkpoint(path)
        restored.run(persist_trace(40, seed=5))
        restored.crash()
        assert restored.recover().success

    def test_restored_data_contents_match(self, tmp_path):
        system = System(small_config())
        from repro.mem.trace import AccessType, MemoryAccess
        system.run([MemoryAccess(AccessType.PERSIST, 64,
                                 data=b"\x42" * 64)])
        path = tmp_path / "s.ckpt"
        save_checkpoint(system, path)
        restored = load_checkpoint(path)
        assert restored.controller.read_data(64, cycle=10**6).plaintext \
            == b"\x42" * 64

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(ConfigError):
            load_checkpoint(path)

    def test_wrong_format_rejected(self, tmp_path):
        import pickle
        path = tmp_path / "old"
        path.write_bytes(pickle.dumps({"format": "v0", "system": None}))
        with pytest.raises(ConfigError):
            load_checkpoint(path)


class TestFork:
    def test_fork_diverges_independently(self):
        system = warmed_system()
        branch = fork(system)
        branch.run(persist_trace(30, seed=6))
        assert branch.cycle > system.cycle
        # The original is untouched by the branch's writes.
        assert system.controller.stats.counter("data_writes").value \
            < branch.controller.stats.counter("data_writes").value

    def test_fork_branches_crash_differently(self):
        """The intended use: one warmed state, many futures."""
        system = warmed_system()
        crashed = fork(system)
        crashed.crash()
        assert crashed.recover().success
        # The original never crashed and keeps running normally.
        system.run(persist_trace(10, seed=8))

    def test_fork_preserves_root_registers(self):
        system = System(small_config())
        system.run(persist_trace(50, seed=2))
        branch = fork(system)
        assert branch.controller.recovery_root.counters \
            == system.controller.recovery_root.counters
