"""System configuration validation and helpers."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import SystemConfig


class TestValidation:
    def test_defaults_construct(self):
        config = SystemConfig()
        assert config.scheme == "scue"
        assert config.hash_latency == 40

    def test_bad_hash_latency(self):
        with pytest.raises(ConfigError):
            SystemConfig(hash_latency=0)

    def test_bad_tracker(self):
        with pytest.raises(ConfigError):
            SystemConfig(recovery_tracker="bogus")

    def test_address_map_respects_levels(self):
        config = SystemConfig(data_capacity=4 * 1024 * 1024, tree_levels=9)
        assert config.address_map().tree_levels == 9

    def test_timing_model_uses_clock(self):
        config = SystemConfig(cpu_ghz=1.0)
        assert config.timing_model().read_cycles == 63


class TestHelpers:
    def test_with_replaces_fields(self):
        config = SystemConfig(scheme="lazy")
        changed = config.with_(scheme="scue", hash_latency=80)
        assert changed.scheme == "scue"
        assert changed.hash_latency == 80
        assert config.scheme == "lazy"  # original untouched

    def test_paper_table2(self):
        config = SystemConfig.paper_table2("plp")
        assert config.scheme == "plp"
        assert config.tree_levels == 9
        assert config.metadata_cache_size == 256 * 1024

    def test_paper_table2_overrides(self):
        config = SystemConfig.paper_table2(hash_latency=160)
        assert config.hash_latency == 160
