"""The experiment driver and result arithmetic."""

from repro.sim.driver import run_schemes, run_workload
from repro.sim.results import RunResult

from tests.conftest import persist_trace, small_config


class TestRunWorkload:
    def test_returns_named_result(self):
        result = run_workload(small_config(), persist_trace(20),
                              workload_name="unit")
        assert result.workload == "unit"
        assert result.scheme == "scue"
        assert result.cycles > 0

    def test_accepts_factory(self):
        result = run_workload(small_config(), lambda: persist_trace(20))
        assert result.persists == 20

    def test_warmup_excluded_from_measurement(self):
        with_warmup = run_workload(small_config(), persist_trace(40),
                                   warmup_accesses=20)
        assert with_warmup.persists == 20

    def test_max_accesses_bounds_run(self):
        result = run_workload(small_config(), persist_trace(100),
                              max_accesses=10)
        assert result.persists == 10

    def test_deterministic(self):
        a = run_workload(small_config(), lambda: persist_trace(50))
        b = run_workload(small_config(), lambda: persist_trace(50))
        assert a.cycles == b.cycles
        assert a.avg_write_latency == b.avg_write_latency


class TestRunSchemes:
    def test_runs_identical_trace_per_scheme(self):
        results = run_schemes(small_config(), ["baseline", "scue"],
                              lambda: persist_trace(30))
        assert set(results) == {"baseline", "scue"}
        assert results["baseline"].persists == results["scue"].persists

    def test_secure_scheme_not_cheaper_than_baseline(self):
        results = run_schemes(small_config(), ["baseline", "plp"],
                              lambda: persist_trace(30))
        assert results["plp"].cycles >= results["baseline"].cycles


class TestRunResult:
    def _result(self, **overrides) -> RunResult:
        base = dict(workload="w", scheme="s", cycles=1000,
                    instructions=500, loads=10, stores=5, persists=5,
                    load_stall_cycles=100, persist_stall_cycles=50,
                    avg_write_latency=700.0, avg_read_latency=130.0,
                    nvm_data_reads=10, nvm_data_writes=10,
                    nvm_meta_reads=4, nvm_meta_writes=6, hashes=20)
        base.update(overrides)
        return RunResult(**base)

    def test_ipc(self):
        assert self._result().ipc == 0.5

    def test_access_totals(self):
        result = self._result()
        assert result.memory_accesses == 30
        assert result.metadata_accesses == 10

    def test_ratios(self):
        fast = self._result()
        slow = self._result(cycles=2000, avg_write_latency=1400.0)
        assert slow.execution_time_vs(fast) == 2.0
        assert slow.write_latency_vs(fast) == 2.0

    def test_zero_baseline_guarded(self):
        result = self._result()
        zero = self._result(cycles=0, avg_write_latency=0.0)
        assert result.write_latency_vs(zero) == 0.0
        assert result.execution_time_vs(zero) == 0.0
