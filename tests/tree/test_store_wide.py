"""SITStore dispatch under non-default tree arity: the store must
deserialise nodes with the address map's geometry, not the default."""

import pytest

from repro.mem.address import AddressMap
from repro.mem.nvm import NVMDevice
from repro.tree.node import SITNode
from repro.tree.store import SITStore


@pytest.mark.parametrize("arity", (16, 32))
def test_wide_node_roundtrip_through_store(arity):
    amap = AddressMap(1024 * 1024, arity=arity)
    store = SITStore(NVMDevice(amap.total_capacity), amap)
    counters = [i % (1 << amap.counter_bits) for i in range(arity)]
    node = SITNode(1, 2, counters=counters, hmac=77, arity=arity)
    store.save(node)
    loaded = store.load(1, 2)
    assert isinstance(loaded, SITNode)
    assert loaded.arity == arity
    assert loaded.counters == counters
    assert loaded.hmac == 77


@pytest.mark.parametrize("arity", (16, 32))
def test_blank_wide_node_loads_blank(arity):
    amap = AddressMap(1024 * 1024, arity=arity)
    store = SITStore(NVMDevice(amap.total_capacity), amap)
    node = store.load(1, 0)
    assert node.is_blank
    assert node.arity == arity
