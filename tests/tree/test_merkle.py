"""The reference Merkle tree (§II-D1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, IntegrityError
from repro.tree.merkle import MerkleTree


def leaves(n: int) -> list[bytes]:
    return [bytes([i]) * 64 for i in range(n)]


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree(leaves(1))
        assert tree.height == 0
        assert len(tree.root) == 8

    def test_height_grows_with_leaves(self):
        assert MerkleTree(leaves(8)).height == 1
        assert MerkleTree(leaves(9)).height == 2
        assert MerkleTree(leaves(64)).height == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            MerkleTree([])

    def test_bad_arity_rejected(self):
        with pytest.raises(ConfigError):
            MerkleTree(leaves(4), arity=1)

    def test_roots_differ_for_different_data(self):
        assert MerkleTree(leaves(8)).root != \
            MerkleTree(leaves(8)[::-1]).root


class TestUpdates:
    def test_update_changes_root(self):
        tree = MerkleTree(leaves(16))
        old_root = tree.root
        tree.update_leaf(3, b"\xff" * 64)
        assert tree.root != old_root

    def test_update_hash_count_is_branch_length(self):
        tree = MerkleTree(leaves(64))
        assert tree.update_leaf(0, b"x" * 64) == tree.height + 1

    def test_out_of_range_rejected(self):
        tree = MerkleTree(leaves(8))
        with pytest.raises(ConfigError):
            tree.update_leaf(8, b"x")

    def test_verify_after_update(self):
        tree = MerkleTree(leaves(16))
        tree.update_leaf(5, b"new" * 21 + b"!")
        assert tree.verify_leaf(5, b"new" * 21 + b"!")

    def test_verify_rejects_wrong_payload(self):
        tree = MerkleTree(leaves(16))
        assert not tree.verify_leaf(5, b"\xAB" * 64)

    def test_verify_rejects_replayed_digest(self):
        """A replay of an old digest at some level breaks the chain."""
        tree = MerkleTree(leaves(16))
        old_digest = tree.levels[1][0]
        tree.update_leaf(0, b"v2" * 32)
        tree.levels[1][0] = old_digest
        assert not tree.verify_leaf(0, b"v2" * 32)


class TestRecovery:
    def test_reconstruction_matches_after_updates(self):
        tree = MerkleTree(leaves(16))
        payloads = leaves(16)
        payloads[3] = b"\x99" * 64
        tree.update_leaf(3, payloads[3])
        assert tree.reconstruct_root(payloads) == tree.root
        tree.check_recovery(payloads)  # must not raise

    def test_tampered_leaf_detected(self):
        tree = MerkleTree(leaves(16))
        payloads = leaves(16)
        payloads[0] = b"\x66" * 64  # attacker modified media
        with pytest.raises(IntegrityError):
            tree.check_recovery(payloads)

    def test_swapped_leaves_detected(self):
        """Leaf digests are position-bound: swapping two equal-looking
        leaves must still fail."""
        payloads = leaves(16)
        tree = MerkleTree(payloads)
        swapped = list(payloads)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        with pytest.raises(IntegrityError):
            tree.check_recovery(swapped)

    @given(st.lists(st.tuples(st.integers(0, 15), st.binary(min_size=1,
                                                            max_size=64)),
                    min_size=0, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_recovery_consistent_over_any_update_sequence(self, updates):
        payloads = leaves(16)
        tree = MerkleTree(payloads)
        for index, data in updates:
            payloads[index] = bytes(data)
            tree.update_leaf(index, bytes(data))
        tree.check_recovery(payloads)
