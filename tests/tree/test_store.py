"""SITStore: typed (de)serialisation against media addresses."""

import pytest

from repro.cme.counters import CounterBlock
from repro.mem.address import AddressMap
from repro.mem.nvm import NVMDevice
from repro.tree.node import SITNode
from repro.tree.store import SITStore


@pytest.fixture
def store():
    amap = AddressMap(1024 * 1024)
    return SITStore(NVMDevice(amap.total_capacity), amap)


class TestRoundtrips:
    def test_leaf_roundtrip(self, store):
        leaf = CounterBlock(5)
        leaf.bump(7)
        leaf.hmac = 0x1234
        store.save(leaf)
        loaded = store.load(0, 5)
        assert isinstance(loaded, CounterBlock)
        assert loaded.minors == leaf.minors
        assert loaded.hmac == leaf.hmac

    def test_node_roundtrip(self, store):
        node = SITNode(1, 3, counters=[1, 2, 3, 4, 5, 6, 7, 8], hmac=9)
        store.save(node)
        loaded = store.load(1, 3)
        assert isinstance(loaded, SITNode)
        assert loaded.counters == node.counters
        assert loaded.hmac == 9

    def test_fresh_node_loads_blank(self, store):
        assert store.load(1, 0).is_blank

    def test_save_returns_media_address(self, store):
        node = SITNode(1, 3)
        assert store.save(node) == store.node_addr(1, 3)
        leaf = CounterBlock(2)
        assert store.save(leaf) == store.amap.counter_block_addr(2)


class TestAccessCounting:
    def test_counted_accesses_hit_device_stats(self, store):
        store.save(SITNode(1, 0), counted=True)
        store.load(1, 0, counted=True)
        assert store.nvm.stats.counter("writes").value == 1
        assert store.nvm.stats.counter("reads").value == 1

    def test_uncounted_accesses_are_silent(self, store):
        store.save(SITNode(1, 0), counted=False)
        store.load(1, 0, counted=False)
        assert store.nvm.stats.counter("writes").value == 0
        assert store.nvm.stats.counter("reads").value == 0


class TestCoords:
    def test_coords_of_leaf(self, store):
        assert store.coords_of(CounterBlock(4)) == (0, 4)

    def test_coords_of_node(self, store):
        assert store.coords_of(SITNode(2, 1)) == (2, 1)
