"""SIT node: layout, counter arithmetic, sealing and blank semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem.address import TREE_ARITY
from repro.tree.node import COUNTER_BITS, COUNTER_MASK, SITNode
from repro.util.crypto import KeyedMac


class TestCounters:
    def test_bump(self):
        node = SITNode(1, 0)
        node.bump_counter(3)
        assert node.counter(3) == 1
        assert node.hmac_stale

    def test_bump_with_delta(self):
        node = SITNode(1, 0)
        node.bump_counter(0, 5)
        assert node.counter(0) == 5

    def test_bump_wraps_modularly(self):
        node = SITNode(1, 0)
        node.set_counter(0, COUNTER_MASK)
        node.bump_counter(0)
        assert node.counter(0) == 0

    def test_set_counter_masks(self):
        node = SITNode(1, 0)
        node.set_counter(0, 1 << COUNTER_BITS)
        assert node.counter(0) == 0

    def test_dummy_counter_is_modular_sum(self):
        node = SITNode(1, 0, counters=[COUNTER_MASK, 2, 0, 0, 0, 0, 0, 0])
        assert node.dummy_counter() == 1

    def test_wrong_counter_count_rejected(self):
        with pytest.raises(ConfigError):
            SITNode(1, 0, counters=[0] * 7)


class TestBlank:
    def test_fresh_node_blank(self):
        assert SITNode(1, 0).is_blank

    def test_counter_makes_not_blank(self):
        node = SITNode(1, 0)
        node.bump_counter(0)
        assert not node.is_blank

    def test_blank_verifies_against_zero_parent(self):
        mac = KeyedMac(b"k")
        node = SITNode(1, 0)
        assert node.verify(mac, 0x1000, 0)
        assert not node.verify(mac, 0x1000, 1)


class TestIntegrity:
    def test_seal_verify(self):
        mac = KeyedMac(b"k")
        node = SITNode(1, 0)
        node.bump_counter(2)
        node.seal(mac, 0x2000, parent_counter=1)
        assert node.verify(mac, 0x2000, 1)

    def test_verify_rejects_wrong_parent(self):
        mac = KeyedMac(b"k")
        node = SITNode(1, 0)
        node.bump_counter(2)
        node.seal(mac, 0x2000, 1)
        assert not node.verify(mac, 0x2000, 2)

    def test_verify_rejects_moved_node(self):
        mac = KeyedMac(b"k")
        node = SITNode(1, 0)
        node.bump_counter(2)
        node.seal(mac, 0x2000, 1)
        assert not node.verify(mac, 0x2040, 1)

    def test_verify_rejects_counter_tamper(self):
        mac = KeyedMac(b"k")
        node = SITNode(1, 0)
        node.bump_counter(2)
        node.seal(mac, 0x2000, 1)
        node.counters[0] = 99
        assert not node.verify(mac, 0x2000, 1)

    def test_seal_with_own_dummy_is_self_checkable(self):
        """The SCUE convention: sealed with its own counter sum, a node
        can be re-verified from content alone."""
        mac = KeyedMac(b"k")
        node = SITNode(1, 0, counters=[3, 1, 4, 1, 5, 9, 2, 6])
        node.seal(mac, 0x2000, node.dummy_counter())
        assert node.verify(mac, 0x2000, node.dummy_counter())


class TestSerialisation:
    @given(st.lists(st.integers(0, COUNTER_MASK),
                    min_size=TREE_ARITY, max_size=TREE_ARITY),
           st.integers(0, 2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, counters, hmac):
        node = SITNode(2, 7, counters=list(counters), hmac=hmac)
        restored = SITNode.from_bytes(2, 7, node.to_bytes())
        assert restored.counters == list(counters)
        assert restored.hmac == hmac

    def test_image_is_one_line(self):
        assert len(SITNode(1, 0).to_bytes()) == 64

    def test_bad_image_size_rejected(self):
        with pytest.raises(ConfigError):
            SITNode.from_bytes(1, 0, b"short")

    def test_clone_independent(self):
        node = SITNode(1, 0)
        clone = node.clone()
        node.bump_counter(0)
        assert clone.counter(0) == 0
