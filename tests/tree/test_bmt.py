"""The reference Bonsai Merkle Tree (§II-D2)."""

import pytest

from repro.cme.counters import CounterBlock
from repro.errors import ConfigError, IntegrityError
from repro.tree.bmt import BonsaiMerkleTree


def blocks(n: int) -> list[CounterBlock]:
    return [CounterBlock(i) for i in range(n)]


class TestConstruction:
    def test_builds_over_counter_blocks(self):
        tree = BonsaiMerkleTree(blocks(16))
        assert tree.height == 2  # 16 -> 2 -> 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            BonsaiMerkleTree([])

    def test_blocks_are_snapshotted(self):
        originals = blocks(8)
        tree = BonsaiMerkleTree(originals)
        originals[0].bump(0)   # mutating the caller's copy
        assert tree.block(0).minor_of(0) == 0


class TestBump:
    def test_bump_changes_root(self):
        tree = BonsaiMerkleTree(blocks(16))
        old_root = tree.root
        tree.bump(3, slot=5)
        assert tree.root != old_root

    def test_bump_is_sequential_hashing(self):
        """BMT hashes level by level — height+1 hashes per update, the
        cost SIT parallelism avoids (§II-D4)."""
        tree = BonsaiMerkleTree(blocks(64))
        hashes = tree.bump(0, 0)
        assert hashes == tree.height + 1
        assert tree.sequential_hashes == hashes

    def test_bump_out_of_range(self):
        with pytest.raises(ConfigError):
            BonsaiMerkleTree(blocks(8)).bump(8, 0)


class TestVerification:
    def test_tracked_block_verifies(self):
        tree = BonsaiMerkleTree(blocks(16))
        tree.bump(2, 7)
        assert tree.verify_block(tree.block(2))

    def test_stale_block_rejected(self):
        tree = BonsaiMerkleTree(blocks(16))
        stale = tree.block(2)
        tree.bump(2, 7)
        assert not tree.verify_block(stale)


class TestRecovery:
    def test_bottom_up_reconstruction_matches(self):
        tree = BonsaiMerkleTree(blocks(16))
        for i in range(10):
            tree.bump(i % 16, i % 64)
        current = [tree.block(i) for i in range(16)]
        assert tree.reconstruct_root(current) == tree.root
        tree.check_recovery(current)

    def test_rolled_back_block_detected(self):
        tree = BonsaiMerkleTree(blocks(16))
        old = tree.block(0)
        tree.bump(0, 0)
        current = [tree.block(i) for i in range(16)]
        current[0] = old  # replay
        with pytest.raises(IntegrityError):
            tree.check_recovery(current)
