"""The hash engine's latency accounting — parallel vs sequential is the
SIT-vs-BMT distinction the paper leans on (§II-D4)."""

import pytest

from repro.errors import ConfigError
from repro.tree.hmac_engine import DEFAULT_HASH_LATENCY, HashEngine


class TestCharging:
    def test_single_hash(self):
        engine = HashEngine(40)
        assert engine.charge(1) == 40

    def test_parallel_burst_costs_one_latency(self):
        engine = HashEngine(40)
        assert engine.charge(9, parallel=True) == 40

    def test_sequential_chain_costs_per_hash(self):
        engine = HashEngine(40)
        assert engine.charge(9, parallel=False) == 360

    def test_zero_count_free(self):
        engine = HashEngine(40)
        assert engine.charge(0) == 0
        assert engine.stats.counter("hashes").value == 0

    def test_hashes_counted_regardless_of_parallelism(self):
        engine = HashEngine(40)
        engine.charge(3, parallel=True)
        engine.charge(2, parallel=False)
        assert engine.stats.counter("hashes").value == 5

    def test_busy_cycles_accumulate(self):
        engine = HashEngine(40)
        engine.charge(1)
        engine.charge(2, parallel=False)
        assert engine.stats.counter("busy_cycles").value == 40 + 80

    def test_branch_hash_alias(self):
        engine = HashEngine(20)
        assert engine.branch_hash_cycles(5, parallel=True) == 20
        assert engine.branch_hash_cycles(5, parallel=False) == 100


class TestConfiguration:
    def test_default_latency(self):
        assert HashEngine().latency_cycles == DEFAULT_HASH_LATENCY

    def test_sweep_latencies(self):
        for latency in (20, 40, 80, 160):   # Table II sweep
            assert HashEngine(latency).charge(1) == latency

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigError):
            HashEngine(0)

    def test_mac_is_keyed(self):
        a = HashEngine(40, key=b"k1").mac.mac(b"x")
        b = HashEngine(40, key=b"k2").mac.mac(b"x")
        assert a != b
