"""Quota units: admission, 429 rejection, release accounting."""

from __future__ import annotations

import pytest

from repro.serve.api import ServeError
from repro.serve.quotas import QuotaExceeded, QuotaPolicy, TenantQuotas


class TestPolicy:
    def test_defaults(self):
        policy = QuotaPolicy()
        assert policy.max_queued_cells > 0
        assert policy.max_running_cells > 0
        assert policy.max_active_jobs > 0

    def test_negative_caps_rejected(self):
        with pytest.raises(ServeError):
            QuotaPolicy(max_queued_cells=-1)

    def test_exceeded_maps_to_429(self):
        assert QuotaExceeded.status == 429
        assert QuotaExceeded("x").to_dict()["error"] == "quota_exceeded"


class TestAdmission:
    def test_admit_within_limits(self):
        quotas = TenantQuotas(QuotaPolicy(max_queued_cells=4))
        quotas.admit_job("t", 4)       # exactly at the cap is fine

    def test_queued_cell_exhaustion_rejects_whole_job(self):
        quotas = TenantQuotas(QuotaPolicy(max_queued_cells=4))
        for _ in range(3):
            quotas.cell_queued("t")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.admit_job("t", 2)   # 3 + 2 > 4
        assert excinfo.value.status == 429
        # Nothing was charged by the failed admission.
        assert quotas.usage("t")["queued"] == 3

    def test_job_count_exhaustion(self):
        quotas = TenantQuotas(QuotaPolicy(max_active_jobs=2))
        quotas.job_started("t")
        quotas.job_started("t")
        with pytest.raises(QuotaExceeded):
            quotas.admit_job("t", 0)
        quotas.job_finished("t")
        quotas.admit_job("t", 0)       # freed slot readmits

    def test_tenants_are_isolated(self):
        quotas = TenantQuotas(QuotaPolicy(max_queued_cells=2))
        quotas.cell_queued("a")
        quotas.cell_queued("a")
        with pytest.raises(QuotaExceeded):
            quotas.admit_job("a", 1)
        quotas.admit_job("b", 2)       # b is unaffected by a's usage

    def test_zero_disables_cap(self):
        quotas = TenantQuotas(QuotaPolicy(max_queued_cells=0,
                                          max_active_jobs=0))
        quotas.admit_job("t", 10 ** 6)
        assert quotas.can_run("t")


class TestRunSlots:
    def test_running_cap_gates_can_run(self):
        quotas = TenantQuotas(QuotaPolicy(max_running_cells=2))
        quotas.cell_queued("t")
        quotas.cell_queued("t")
        quotas.cell_queued("t")
        assert quotas.can_run("t")
        quotas.cell_started("t")
        assert quotas.can_run("t")
        quotas.cell_started("t")
        assert not quotas.can_run("t")
        quotas.cell_finished("t")
        assert quotas.can_run("t")

    def test_started_moves_queued_to_running(self):
        quotas = TenantQuotas()
        quotas.cell_queued("t")
        quotas.cell_started("t")
        assert quotas.usage("t") == {"queued": 0, "running": 1,
                                     "jobs": 0}
        quotas.cell_finished("t")
        assert quotas.usage("t")["running"] == 0

    def test_release_never_goes_negative(self):
        quotas = TenantQuotas()
        quotas.cell_finished("t")
        quotas.job_finished("t")
        assert quotas.usage("t") == {"queued": 0, "running": 0,
                                     "jobs": 0}


class TestSnapshot:
    def test_snapshot_lists_only_active_tenants(self):
        quotas = TenantQuotas()
        quotas.cell_queued("a")
        quotas.job_started("b")
        quotas.cell_queued("c")
        quotas.cell_started("c")
        quotas.cell_finished("c")
        snapshot = quotas.snapshot()
        assert set(snapshot) == {"a", "b"}
        assert snapshot["a"]["queued"] == 1
        assert snapshot["b"]["jobs"] == 1
