"""The ``GET /v1/metrics`` Prometheus endpoint.

Unit tests drive :func:`render_metrics` with small stand-in objects to
pin the exposition format (HELP/TYPE headers, sorted labels, escaping);
the e2e test scrapes a live server after a real campaign so the counter
values reflect actual scheduler traffic.
"""

from __future__ import annotations

import re
import urllib.request
from types import SimpleNamespace

from repro.serve.events import EventBus
from repro.serve.metrics import CONTENT_TYPE, render_metrics
from repro.serve.quotas import QuotaPolicy

from tests.campaign._fakes import fake_spec
from tests.serve.test_app import scratch, serving  # noqa: F401

#: ``name{labels} value`` — what every non-comment line must match.
SAMPLE_RE = re.compile(r"^[a-z_]+[a-z0-9_]*(\{[^}]*\})? \S+$")


def _fake_scheduler(tenants=None):
    return SimpleNamespace(
        counters={"jobs": 3, "cells_submitted": 12, "store_hits": 4,
                  "inflight_hits": 2, "cells_computed": 5,
                  "cells_failed": 1},
        queue=[1, 2],
        _running=1,
        inflight={"k1": None, "k2": None, "k3": None},
        slots=2,
        jobs={"job-1": SimpleNamespace(finished=False),
              "job-2": SimpleNamespace(finished=True)},
        quotas=SimpleNamespace(policy=QuotaPolicy(),
                               snapshot=lambda: dict(tenants or {})),
    )


def _fake_store(objects=7):
    return SimpleNamespace(
        hot=SimpleNamespace(stats=lambda: {"entries": 4, "bytes": 512,
                                           "hits": 9, "misses": 6}),
        index_count=lambda: objects,
    )


class TestRenderMetrics:
    def test_families_and_values(self):
        bus = EventBus()
        bus.publish("job-1", "cell_finished")
        bus.publish("job-1", "job_finished")
        text = render_metrics(_fake_scheduler(), _fake_store(), bus)
        lines = text.splitlines()

        assert "repro_serve_jobs_total 3" in lines
        assert "repro_serve_cells_submitted_total 12" in lines
        assert 'repro_serve_cells_deduped_total{source="store"} 4' \
            in lines
        assert 'repro_serve_cells_deduped_total{source="inflight"} 2' \
            in lines
        assert "repro_serve_queue_depth 2" in lines
        assert "repro_serve_running_cells 1" in lines
        assert "repro_serve_inflight_cells 3" in lines
        assert "repro_serve_worker_slots 2" in lines
        assert "repro_serve_jobs_active 1" in lines
        assert "repro_serve_hot_cache_hits_total 9" in lines
        assert "repro_serve_hot_cache_misses_total 6" in lines
        assert "repro_serve_hot_cache_bytes 512" in lines
        assert "repro_serve_store_objects 7" in lines
        assert "repro_serve_events_published_total 2" in lines
        assert "repro_serve_event_jobs_tracked 1" in lines

    def test_every_family_has_help_and_type(self):
        text = render_metrics(_fake_scheduler(), _fake_store(),
                              EventBus())
        names = {line.split()[0] for line in text.splitlines()
                 if not line.startswith("#")}
        names = {name.split("{")[0] for name in names}
        helped = {line.split()[2] for line in text.splitlines()
                  if line.startswith("# HELP ")}
        typed = {line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE ")}
        assert names <= helped
        assert names <= typed
        # Counters carry the conventional _total suffix; the TYPE
        # declarations agree with the names.
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                assert kind in ("counter", "gauge")
                if name.endswith("_total"):
                    assert kind == "counter"

    def test_sample_lines_are_well_formed(self):
        tenants = {"alice": {"queued": 2, "running": 1, "jobs": 1}}
        text = render_metrics(_fake_scheduler(tenants), _fake_store(),
                              EventBus())
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line.startswith("#"):
                assert SAMPLE_RE.match(line), line

    def test_per_tenant_quota_samples(self):
        tenants = {"bob": {"queued": 5, "running": 2, "jobs": 1},
                   "alice": {"queued": 1, "running": 0, "jobs": 1}}
        text = render_metrics(_fake_scheduler(tenants), _fake_store(),
                              EventBus())
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_serve_tenant_quota_usage")]
        assert ('repro_serve_tenant_quota_usage'
                '{resource="queued_cells",tenant="bob"} 5') in lines
        assert ('repro_serve_tenant_quota_usage'
                '{resource="active_jobs",tenant="alice"} 1') in lines
        # alice sorts before bob, labels sort alphabetically.
        assert lines.index(
            'repro_serve_tenant_quota_usage'
            '{resource="queued_cells",tenant="alice"} 1') \
            < lines.index(
            'repro_serve_tenant_quota_usage'
            '{resource="queued_cells",tenant="bob"} 5')

    def test_quota_limit_gauges_follow_policy(self):
        sched = _fake_scheduler()
        sched.quotas.policy = QuotaPolicy(max_queued_cells=99,
                                          max_running_cells=3,
                                          max_active_jobs=7)
        text = render_metrics(sched, _fake_store(), EventBus())
        assert 'repro_serve_quota_limit{resource="queued_cells"} 99' \
            in text
        assert 'repro_serve_quota_limit{resource="running_cells"} 3' \
            in text
        assert 'repro_serve_quota_limit{resource="active_jobs"} 7' \
            in text

    def test_label_escaping(self):
        tenants = {'we"ird\\ten\nant':
                   {"queued": 1, "running": 0, "jobs": 0}}
        text = render_metrics(_fake_scheduler(tenants), _fake_store(),
                              EventBus())
        assert 'tenant="we\\"ird\\\\ten\\nant"' in text
        assert "\n\\n" not in text  # newline escaped, not emitted


class TestMetricsEndpoint:
    def test_scrape_after_campaign(self, scratch):  # noqa: F811
        spec = fake_spec(3).to_dict()
        with serving(scratch) as (app, client):
            accepted = client.submit(spec, tenant="alice")
            client.wait(accepted["job_id"], timeout=60)
            with urllib.request.urlopen(client.url + "/v1/metrics",
                                        timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                text = response.read().decode()
        assert "repro_serve_jobs_total 1" in text.splitlines()
        assert "repro_serve_cells_submitted_total 3" in text.splitlines()
        assert "repro_serve_cells_computed_total 3" in text.splitlines()
        assert "repro_serve_events_published_total" in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert SAMPLE_RE.match(line), line
