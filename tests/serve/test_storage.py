"""CampaignStore units: cache duck type, sqlite index, hot cache."""

from __future__ import annotations

import json

from repro.campaign.cache import cell_key
from repro.serve.storage import CampaignStore

from tests.campaign._fakes import fake_cells, make_result


def _store(tmp_path, **kwargs) -> CampaignStore:
    return CampaignStore(tmp_path / "store", **kwargs)


class TestCacheDuckType:
    def test_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        assert cell not in store
        assert store.get(cell) is None
        store.put(cell, make_result(cell), wall_time=1.5)
        assert cell in store
        result = store.get(cell)
        assert result.workload == cell.workload
        store.close()

    def test_layout_matches_batch_campaign_dir(self, tmp_path):
        """The service's store *is* a campaign directory: objects under
        cache/objects/<shard>/, manifest path at the batch location."""
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        path = store.put(cell, make_result(cell))
        key = cell_key(cell)
        assert path == (store.base / "cache" / "objects" / key[:2]
                        / f"{key}.json")
        assert store.manifest_path == store.base / "manifest.json"
        store.close()


class TestSqliteIndex:
    def test_wal_mode_and_rows(self, tmp_path):
        store = _store(tmp_path)
        assert store.journal_mode() == "wal"
        for cell in fake_cells(3):
            store.put(cell, make_result(cell), wall_time=0.5)
        assert store.index_count() == 3
        rows = store.index_rows()
        assert [row["cell_id"] for row in rows] == sorted(
            cell.cell_id for cell in fake_cells(3))
        assert all(row["size"] > 0 for row in rows)
        store.close()

    def test_put_is_upsert(self, tmp_path):
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        store.put(cell, make_result(cell), wall_time=1.0)
        store.put(cell, make_result(cell), wall_time=2.0)
        assert store.index_count() == 1
        store.close()

    def test_reindex_rebuilds_from_shards(self, tmp_path):
        """The index is derived state: delete it and reindex() gets it
        all back from the objects."""
        store = _store(tmp_path)
        cells = fake_cells(4)
        for cell in cells:
            store.put(cell, make_result(cell))
        store.close()

        (tmp_path / "store" / "index.sqlite").unlink()
        reopened = _store(tmp_path)
        assert reopened.index_count() == 0
        assert reopened.reindex() == 4
        assert reopened.index_count() == 4
        # Objects themselves were never touched.
        for cell in cells:
            assert cell in reopened
        reopened.close()

    def test_index_adopts_preexisting_batch_cache(self, tmp_path):
        """Opening a store over a cache written by ResultCache alone
        (a pre-service campaign dir) works; reindex adopts the rows."""
        from repro.campaign.cache import ResultCache
        legacy = ResultCache(tmp_path / "store" / "cache")
        for cell in fake_cells(2):
            legacy.put(cell, make_result(cell))
        store = _store(tmp_path)
        for cell in fake_cells(2):
            assert cell in store
        assert store.reindex() == 2
        store.close()


class TestHotCache:
    def test_repeat_fetch_served_from_memory(self, tmp_path):
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        store.put(cell, make_result(cell))
        key = cell_key(cell)
        first = store.get_raw(key)
        assert first is not None
        assert store.hot.stats()["misses"] >= 1
        # Second fetch hits memory and returns identical bytes.
        hits_before = store.hot.stats()["hits"]
        assert store.get_raw(key) == first
        assert store.hot.stats()["hits"] == hits_before + 1
        store.close()

    def test_get_raw_missing_key(self, tmp_path):
        store = _store(tmp_path)
        assert store.get_raw("0" * 64) is None
        store.close()

    def test_get_raw_rejects_foreign_entry(self, tmp_path):
        """An entry whose embedded key mismatches its path is treated
        as absent and evicted, like ResultCache.get would."""
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        path = store.put(cell, make_result(cell))
        payload = json.loads(path.read_text())
        payload["key"] = "f" * 64
        path.write_text(json.dumps(payload))
        assert store.get_raw(cell_key(cell)) is None
        assert not path.exists()
        store.close()

    def test_put_invalidates_hot_entry(self, tmp_path):
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        store.put(cell, make_result(cell), wall_time=1.0)
        key = cell_key(cell)
        store.get_raw(key)                       # promote
        store.put(cell, make_result(cell), wall_time=9.0)
        fresh = json.loads(store.get_raw(key))
        assert fresh["wall_time"] == 9.0
        store.close()

    def test_lru_bounded_by_entries(self, tmp_path):
        store = _store(tmp_path, hot_entries=2)
        cells = fake_cells(3)
        for cell in cells:
            store.put(cell, make_result(cell))
            store.get_raw(cell_key(cell))
        assert len(store.hot) == 2
        store.close()

    def test_get_result_dict(self, tmp_path):
        store = _store(tmp_path)
        cell = fake_cells(1)[0]
        store.put(cell, make_result(cell))
        payload = store.get_result_dict(cell_key(cell))
        assert payload["workload"] == cell.workload
        assert payload["cycles"] == 1000
        store.close()


class TestStats:
    def test_stats_shape(self, tmp_path):
        store = _store(tmp_path)
        stats = store.stats()
        assert stats["objects"] == 0
        assert stats["journal_mode"] == "wal"
        assert set(stats["hot"]) == {"entries", "bytes", "hits",
                                     "misses"}
        store.close()
