"""In-process HTTP server e2e: routes, dedup economics, streams.

The server runs on a private event loop in a daemon thread; the test
thread drives it through the blocking :class:`ServeClient`, exactly the
way the CLI does — so these tests cover the full wire path (request
parsing, routing, JSON envelopes, NDJSON/SSE streaming) without
spawning a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.campaign.executor import run_campaign
from repro.serve import api
from repro.serve.app import ServeConfig, ServerApp
from repro.serve.client import ClientError, ServeClient, discover_url

from tests.campaign._fakes import fake_spec, ok_cell, raising_cell


@contextmanager
def serving(tmp_path, cell_fn=ok_cell, **overrides):
    """A live ServerApp on a background loop + a client for it."""
    settings = dict(root=str(tmp_path / "serve"), port=0, slots=2,
                    backoff=0.01)
    settings.update(overrides)
    config = ServeConfig(**settings)
    app = ServerApp(config, cell_fn=cell_fn)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(app.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield app, ServeClient(f"http://127.0.0.1:{app.port}")
    finally:
        asyncio.run_coroutine_threadsafe(app.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture
def scratch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_DIR", str(tmp_path / "markers"))
    (tmp_path / "markers").mkdir()
    return tmp_path


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestRoutes:
    def test_healthz(self, scratch):
        with serving(scratch) as (app, client):
            health = client.health()
            assert health["status"] == "ok"
            assert health["store"]["journal_mode"] == "wal"

    def test_unknown_routes_are_404(self, scratch):
        with serving(scratch) as (app, client):
            for path in ("/nope", "/v1/campaigns/job-999999",
                         "/v1/cells/" + "0" * 64):
                with pytest.raises(ClientError) as excinfo:
                    client._request("GET", path)
                assert excinfo.value.status == 404

    def test_malformed_submission_is_400(self, scratch):
        with serving(scratch) as (app, client):
            with pytest.raises(ClientError) as excinfo:
                client.submit({"name": "x", "cells": "nope"})
            assert excinfo.value.status == 400
            assert excinfo.value.payload["error"] == "bad_request"

    def test_non_json_body_is_400(self, scratch):
        with serving(scratch) as (app, client):
            request = urllib.request.Request(
                client.url + "/v1/campaigns", data=b"not json{",
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400


class TestSubmitLifecycle:
    def test_cold_then_warm_grid(self, scratch):
        spec = fake_spec(3).to_dict()
        with serving(scratch) as (app, client):
            accepted = client.submit(spec, tenant="alice")
            assert accepted["state"] in (api.JOB_QUEUED, api.JOB_RUNNING,
                                         api.JOB_DONE)
            done = client.wait(accepted["job_id"], timeout=60)
            assert done["state"] == api.JOB_DONE
            assert done["counts"]["done"] == 3

            warm = client.wait(client.submit(spec)["job_id"], timeout=60)
            assert warm["counts"]["cached"] == 3
            stats = client.stats()["scheduler"]["counters"]
            assert stats["cells_computed"] == 3
            assert stats["store_hits"] == 3

    def test_results_and_cell_fetch(self, scratch):
        spec = fake_spec(2)
        with serving(scratch) as (app, client):
            job = client.wait(
                client.submit(spec.to_dict())["job_id"], timeout=60)
            results = client.results(job["job_id"])
            assert [c["state"] for c in results["cells"]] == \
                [api.CELL_DONE] * 2
            entry = client.fetch_cell(results["cells"][0]["key"])
            assert entry["key"] == results["cells"][0]["key"]
            assert entry["result"] == results["cells"][0]["result"]

    def test_failed_grid_reports_failure(self, scratch):
        with serving(scratch, cell_fn=raising_cell, retries=0) \
                as (app, client):
            job = client.wait(
                client.submit(fake_spec(1).to_dict())["job_id"],
                timeout=60)
            assert job["state"] == api.JOB_FAILED
            assert "boom in" in job["cells"][0]["error"]

    def test_server_results_match_batch_campaign(self, scratch):
        """The acceptance identity: a cell served by the service is
        byte-identical to the same cell from `repro-sim campaign run`."""
        spec = fake_spec(3)
        batch = run_campaign(spec, cell_fn=ok_cell)
        with serving(scratch) as (app, client):
            job = client.wait(
                client.submit(spec.to_dict())["job_id"], timeout=60)
            served = client.results(job["job_id"])
        for index, (cell, result) in enumerate(batch.iter_results()):
            assert _canon(served["cells"][index]["result"]) == \
                _canon(result.to_dict())


class TestQuotasOverHttp:
    def test_quota_exhaustion_is_429(self, scratch):
        with serving(scratch, max_queued_cells=2) as (app, client):
            with pytest.raises(ClientError) as excinfo:
                client.submit(fake_spec(3).to_dict(), tenant="greedy")
            assert excinfo.value.status == 429
            assert excinfo.value.payload["error"] == "quota_exceeded"
            # The rejected tenant can still submit within quota.
            ok = client.submit(fake_spec(2).to_dict(), tenant="greedy")
            assert client.wait(ok["job_id"],
                               timeout=60)["state"] == api.JOB_DONE


class TestEventStreams:
    def test_ndjson_stream_is_schema_valid_and_ordered(self, scratch):
        spec = fake_spec(2).to_dict()
        with serving(scratch) as (app, client):
            job_id = client.submit(spec)["job_id"]
            events = list(client.events(job_id))
        for event in events:
            api.validate_event(event)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert events[0]["event"] == api.EV_JOB_ACCEPTED
        assert events[-1]["event"] == api.EV_JOB_FINISHED
        finished = [e for e in events
                    if e["event"] == api.EV_CELL_FINISHED]
        assert len(finished) == 2
        assert all("obs" in e for e in finished)

    def test_no_follow_returns_history_snapshot(self, scratch):
        spec = fake_spec(1).to_dict()
        with serving(scratch) as (app, client):
            job_id = client.submit(spec)["job_id"]
            client.wait(job_id, timeout=60)
            events = list(client.events(job_id, follow=False))
            assert events[-1]["event"] == api.EV_JOB_FINISHED

    def test_sse_stream_frames(self, scratch):
        spec = fake_spec(1).to_dict()
        with serving(scratch) as (app, client):
            job_id = client.submit(spec)["job_id"]
            client.wait(job_id, timeout=60)
            with urllib.request.urlopen(
                    f"{client.url}/v1/campaigns/{job_id}/events"
                    f"?format=sse", timeout=30) as response:
                assert response.headers["Content-Type"] == \
                    "text/event-stream"
                body = response.read().decode()
        frames = [f for f in body.split("\n\n") if f.strip()]
        assert frames[0].startswith("id: ")
        assert any("event: job_finished" in f for f in frames)


class TestDiscovery:
    def test_discovery_write_leaves_no_staging_residue(self, scratch):
        """Regression for the RPL013 burn-down: server.json publishes
        atomically (temp + replace), so the root directory never holds
        a torn or half-staged advertisement."""
        with serving(scratch) as (app, client):
            root = Path(app.config.root)
            assert (root / "server.json").is_file()
            assert not list(root.glob("server.json.*.tmp"))
            assert client.health()["status"] == "ok"

    def test_server_json_roundtrip(self, scratch):
        with serving(scratch) as (app, client):
            url = discover_url(app.config.root)
            assert url == client.url
            assert ServeClient(url).health()["status"] == "ok"
        # stop() withdraws the advertisement.
        with pytest.raises(ClientError, match="no running server"):
            discover_url(app.config.root)
