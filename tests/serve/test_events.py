"""Event-bus units: history replay, EOF, lossiness, wire encodings."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import events as ev
from repro.serve.api import validate_event
from repro.serve.events import EventBus, encode_ndjson, encode_sse

from tests.campaign._fakes import make_result


def _publish_some(bus: EventBus, job: str, n: int) -> None:
    for i in range(n):
        bus.publish(job, "cell_started", cell_id=f"c{i}", key="k" * 64)


class TestHistoryReplay:
    def test_late_subscriber_replays_backlog(self):
        async def body():
            bus = EventBus()
            _publish_some(bus, "job-1", 3)
            sub = bus.subscribe("job-1")
            seen = [await sub.next() for _ in range(3)]
            assert [e["cell_id"] for e in seen] == ["c0", "c1", "c2"]
            sub.close()
        asyncio.run(body())

    def test_replay_then_live_then_eof(self):
        async def body():
            bus = EventBus()
            _publish_some(bus, "job-1", 1)
            sub = bus.subscribe("job-1")
            assert (await sub.next())["cell_id"] == "c0"
            bus.publish("job-1", "cell_finished", cell_id="c0",
                        key="k" * 64, status="done", wall_time=0.1)
            bus.close_job("job-1")
            assert (await sub.next())["event"] == "cell_finished"
            assert await sub.next() is None     # EOF
            sub.close()
        asyncio.run(body())

    def test_subscribe_after_close_replays_then_eof(self):
        """The submit-then-stream race: a client opening the stream
        after the job finished still sees the full history."""
        async def body():
            bus = EventBus()
            _publish_some(bus, "job-1", 2)
            bus.close_job("job-1")
            sub = bus.subscribe("job-1")
            assert (await sub.next())["cell_id"] == "c0"
            assert (await sub.next())["cell_id"] == "c1"
            assert await sub.next() is None
        asyncio.run(body())

    def test_jobs_are_isolated(self):
        async def body():
            bus = EventBus()
            _publish_some(bus, "job-1", 2)
            _publish_some(bus, "job-2", 1)
            sub = bus.subscribe("job-2")
            assert (await sub.next())["job"] == "job-2"
            assert bus.history("job-1")[0]["job"] == "job-1"
            sub.close()
        asyncio.run(body())

    def test_seq_is_global_and_monotonic(self):
        bus = EventBus()
        _publish_some(bus, "a", 2)
        _publish_some(bus, "b", 2)
        seqs = [e["seq"] for job in ("a", "b") for e in bus.history(job)]
        assert seqs == [1, 2, 3, 4]

    def test_history_is_bounded(self, monkeypatch):
        monkeypatch.setattr(ev, "HISTORY_LIMIT", 5)
        bus = EventBus()
        _publish_some(bus, "job-1", 9)
        history = bus.history("job-1")
        assert len(history) == 5
        assert history[0]["cell_id"] == "c4"    # oldest dropped

    def test_forget_job_drops_history(self):
        bus = EventBus()
        _publish_some(bus, "job-1", 2)
        bus.close_job("job-1")
        bus.forget_job("job-1")
        assert bus.history("job-1") == []


class TestLossySubscriber:
    def test_overflow_drops_oldest_not_newest(self, monkeypatch):
        async def body():
            monkeypatch.setattr(ev, "SUBSCRIBER_QUEUE", 1024)
            bus = EventBus()
            sub = bus.subscribe("job-1")
            sub._queue = asyncio.Queue(maxsize=2)
            _publish_some(bus, "job-1", 5)
            assert sub.lossy
            first = await sub.next()
            assert first["cell_id"] == "c3"     # oldest were dropped
            assert (await sub.next())["cell_id"] == "c4"
            sub.close()
        asyncio.run(body())


class TestObsSummary:
    def test_summary_carries_attribution_and_tails(self):
        result = make_result()
        summary = ev.result_obs_summary(result)
        assert summary["cycles"] == result.cycles
        assert summary["attribution"] == dict(result.attribution)
        for stats in summary["latency"].values():
            assert set(stats) == {"count", "p50", "p95", "p99", "max"}

    def test_empty_histograms_are_omitted(self):
        result = make_result()
        summary = ev.result_obs_summary(result)
        for name, data in result.histograms.items():
            if not data.get("count"):
                assert name not in summary["latency"]


class TestEncodings:
    def _event(self):
        bus = EventBus()
        return bus.publish("job-1", "cell_started", cell_id="c0",
                           key="k" * 64)

    def test_ndjson_is_one_valid_line(self):
        line = encode_ndjson(self._event())
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        decoded = json.loads(line)
        validate_event(decoded)

    def test_ndjson_is_canonical(self):
        event = self._event()
        assert encode_ndjson(event) == encode_ndjson(dict(
            reversed(list(event.items()))))

    def test_sse_frame(self):
        event = self._event()
        frame = encode_sse(event).decode()
        lines = frame.splitlines()
        assert lines[0] == f"id: {event['seq']}"
        assert lines[1] == "event: cell_started"
        assert lines[2].startswith("data: ")
        validate_event(json.loads(lines[2][len("data: "):]))
        assert frame.endswith("\n\n")


@pytest.mark.parametrize("limit", [ev.HISTORY_LIMIT, ev.SUBSCRIBER_QUEUE])
def test_bounds_are_sane(limit):
    assert limit > 0
