"""Fair-queue units: round-robin fairness, rotation, dedup plumbing."""

from __future__ import annotations

from repro.serve.queue import CellTask, FairQueue

from tests.campaign._fakes import fake_cells


def _task(tenant: str, index: int) -> CellTask:
    cell = fake_cells(index + 1, group_prefix=f"{tenant}-")[index]
    task = CellTask(key=f"{tenant}-{index}", cell=cell, tenant=tenant)
    task.add_waiter(f"job-{tenant}", index)
    return task


def _drain(queue: FairQueue, eligible=None) -> list[str]:
    order = []
    while True:
        task = queue.pop(eligible=eligible)
        if task is None:
            return order
        order.append(task.key)


class TestRoundRobin:
    def test_single_tenant_is_fifo(self):
        queue = FairQueue()
        for i in range(4):
            queue.push(_task("a", i))
        assert _drain(queue) == ["a-0", "a-1", "a-2", "a-3"]

    def test_contended_tenants_interleave(self):
        """The fairness property: a huge grid from one tenant cannot
        starve a small grid from another — each turn serves every
        tenant once."""
        queue = FairQueue()
        for i in range(6):
            queue.push(_task("big", i))
        for i in range(2):
            queue.push(_task("small", i))
        order = _drain(queue)
        # 'small' finishes within the first two rotations despite
        # 'big' having submitted first and 3x the cells.
        assert order.index("small-0") <= 2
        assert order.index("small-1") <= 4
        assert order == ["big-0", "small-0", "big-1", "small-1",
                         "big-2", "big-3", "big-4", "big-5"]

    def test_three_way_rotation(self):
        queue = FairQueue()
        for tenant in ("a", "b", "c"):
            for i in range(2):
                queue.push(_task(tenant, i))
        assert _drain(queue) == ["a-0", "b-0", "c-0",
                                 "a-1", "b-1", "c-1"]

    def test_tenant_joining_mid_drain_waits_its_turn(self):
        queue = FairQueue()
        for i in range(3):
            queue.push(_task("a", i))
        assert queue.pop().key == "a-0"
        queue.push(_task("b", 0))
        assert [t for t in _drain(queue)] == ["a-1", "b-0", "a-2"]

    def test_empty_tenant_leaves_rotation(self):
        queue = FairQueue()
        queue.push(_task("a", 0))
        queue.push(_task("b", 0))
        _drain(queue)
        assert queue.tenants() == []
        assert len(queue) == 0
        # Rejoining later works and is fair again.
        queue.push(_task("b", 1))
        queue.push(_task("a", 1))
        assert _drain(queue) == ["b-1", "a-1"]


class TestEligibility:
    def test_vetoed_tenant_is_skipped_not_dropped(self):
        queue = FairQueue()
        queue.push(_task("a", 0))
        queue.push(_task("b", 0))
        task = queue.pop(eligible=lambda t: t != "a")
        assert task.key == "b-0"
        # a's cell is still queued and runs once eligible again.
        assert queue.depth("a") == 1
        assert queue.pop().key == "a-0"

    def test_all_vetoed_returns_none(self):
        queue = FairQueue()
        queue.push(_task("a", 0))
        assert queue.pop(eligible=lambda t: False) is None
        assert len(queue) == 1

    def test_pop_empty_returns_none(self):
        assert FairQueue().pop() is None


class TestTaskWaiters:
    def test_waiters_accumulate(self):
        task = _task("a", 0)
        task.add_waiter("job-2", 5)
        assert task.waiters == [("job-a", 0), ("job-2", 5)]

    def test_depth_accounting(self):
        queue = FairQueue()
        for i in range(3):
            queue.push(_task("a", i))
        queue.push(_task("b", 0))
        assert queue.depth() == 4
        assert queue.depth("a") == 3
        assert queue.depth("b") == 1
        assert queue.depth("missing") == 0
        assert bool(queue)
