"""Worker semantics: the service's per-cell contract must equal the
batch executor's — same retry budget, same backoff curve, same
timeout-kill, same failure message shape."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.campaign.executor import _backoff_delay, run_cell
from repro.errors import CampaignError
from repro.serve import api
from repro.serve.events import EventBus
from repro.serve.quotas import QuotaPolicy
from repro.serve.storage import CampaignStore
from repro.serve.workers import Scheduler

from tests.campaign._fakes import (
    dying_once_cell,
    fake_cells,
    fake_spec,
    ok_cell,
    raising_cell,
    sleeping_cell,
    tracking_cell,
    invocations,
)


@pytest.fixture
def scratch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_DIR", str(tmp_path / "markers"))
    (tmp_path / "markers").mkdir()
    return tmp_path


# ======================================================================
# run_cell: the executor seam the service inherits
# ======================================================================
class TestRunCellParity:
    def test_success_first_attempt(self, scratch):
        cell = fake_cells(1)[0]
        outcome = run_cell(cell, cell_fn=ok_cell)
        assert outcome.attempts == 1
        assert outcome.result.workload == cell.workload
        assert outcome.wall_time >= 0.0

    def test_transient_death_retried_like_parallel_path(self, scratch):
        """A worker that dies without reporting is retried — the
        parallel campaign's transient-death semantics."""
        cell = fake_cells(1)[0]
        outcome = run_cell(cell, cell_fn=dying_once_cell, backoff=0.01)
        assert outcome.attempts == 2

    def test_default_retry_budget_matches_parallel_default(self, scratch):
        """retries defaults to 2 (the jobs>1 default in run_campaign):
        a deterministic failure is attempted exactly 3 times."""
        cell = fake_cells(1)[0]
        with pytest.raises(CampaignError) as excinfo:
            run_cell(cell, cell_fn=raising_cell, backoff=0.01)
        message = str(excinfo.value)
        assert "failed after 3 attempt(s)" in message
        # Message ends with the traceback's last line, like the
        # parallel path's CampaignError.
        assert "boom in" in message

    def test_timeout_kills_attempt(self, scratch):
        cell = fake_cells(1)[0]
        started = time.perf_counter()
        with pytest.raises(CampaignError) as excinfo:
            run_cell(cell, cell_fn=sleeping_cell, timeout=0.3,
                     retries=0, backoff=0.01)
        assert time.perf_counter() - started < 30.0
        assert "timed out after 0.3s" in str(excinfo.value)

    def test_on_retry_reports_each_attempt(self, scratch):
        cell = fake_cells(1)[0]
        seen: list[int] = []
        with pytest.raises(CampaignError):
            run_cell(cell, cell_fn=raising_cell, retries=2,
                     backoff=0.01,
                     on_retry=lambda attempt, error: seen.append(attempt))
        assert seen == [1, 2]

    def test_backoff_curve_is_the_executor_curve(self):
        """The service must not invent its own backoff: run_cell sleeps
        _backoff_delay, the very function the parallel path uses."""
        assert _backoff_delay(0.5, 1) == 0.5
        assert _backoff_delay(0.5, 2) == 1.0
        assert _backoff_delay(0.5, 3) == 2.0
        assert _backoff_delay(10.0, 10) == 30.0   # capped

    def test_zero_retries_single_attempt(self, scratch):
        cell = fake_cells(1)[0]
        with pytest.raises(CampaignError) as excinfo:
            run_cell(cell, cell_fn=raising_cell, retries=0, backoff=0.01)
        assert "failed after 1 attempt(s)" in str(excinfo.value)


# ======================================================================
# Scheduler: dedup + fairness over the pool
# ======================================================================
def _run(coro):
    return asyncio.run(coro)


async def _with_scheduler(tmp_path, coro_fn, *, slots=2, policy=None,
                          cell_fn=ok_cell, timeout=None, retries=None):
    store = CampaignStore(tmp_path / "store")
    bus = EventBus()
    scheduler = Scheduler(store, bus, slots=slots, policy=policy,
                          cell_fn=cell_fn, timeout=timeout,
                          retries=retries, backoff=0.01)
    await scheduler.start()
    try:
        return await coro_fn(scheduler, store, bus)
    finally:
        await scheduler.stop()
        store.close()


class TestSchedulerDedup:
    def test_store_hit_costs_no_compute(self, scratch):
        async def body(scheduler, store, bus):
            spec = fake_spec(3)
            job1 = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            await asyncio.wait_for(job1.done.wait(), 30)
            computed = scheduler.counters["cells_computed"]
            job2 = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            await asyncio.wait_for(job2.done.wait(), 30)
            assert scheduler.counters["cells_computed"] == computed
            assert job2.view.counts()["cached"] == 3
            assert job2.view.state == api.JOB_DONE
        _run(_with_scheduler(scratch, body))

    def test_inflight_dedup_single_execution(self, scratch):
        """Two jobs racing on the same cells share one execution."""
        async def body(scheduler, store, bus):
            spec = fake_spec(2)
            job1 = scheduler.submit(
                api.SubmitRequest(tenant="a", spec=spec))
            job2 = scheduler.submit(
                api.SubmitRequest(tenant="b", spec=spec))
            await asyncio.wait_for(job1.done.wait(), 30)
            await asyncio.wait_for(job2.done.wait(), 30)
            for cell in spec.cells:
                assert invocations(cell) == 1
            assert scheduler.counters["inflight_hits"] == 2
            assert job2.view.state == api.JOB_DONE
        _run(_with_scheduler(scratch, body, cell_fn=tracking_cell))

    def test_failed_cell_fails_job_but_not_others(self, scratch):
        async def body(scheduler, store, bus):
            spec = fake_spec(2)
            job = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            await asyncio.wait_for(job.done.wait(), 30)
            assert job.view.state == api.JOB_FAILED
            counts = job.view.counts()
            assert counts["failed"] == 2
            events = bus.history(job.view.job_id)
            finished = [e for e in events
                        if e["event"] == api.EV_CELL_FINISHED]
            assert all(e["status"] == api.CELL_FAILED for e in finished)
            assert all("boom in" in e["error"] for e in finished)
        _run(_with_scheduler(scratch, body, cell_fn=raising_cell,
                             retries=0))


class TestSchedulerQuotas:
    def test_running_quota_caps_concurrency(self, scratch):
        """A tenant capped at 1 running cell never occupies both
        slots, even with the pool idle."""
        async def body(scheduler, store, bus):
            spec = fake_spec(4)
            job = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            peak = 0
            while not job.done.is_set():
                peak = max(peak,
                           scheduler.quotas.usage("t")["running"])
                await asyncio.sleep(0.005)
            assert peak == 1
        policy = QuotaPolicy(max_running_cells=1)
        _run(_with_scheduler(scratch, body, policy=policy,
                             cell_fn=tracking_cell))

    def test_submit_past_queue_quota_raises_429(self, scratch):
        async def body(scheduler, store, bus):
            with pytest.raises(api.ServeError) as excinfo:
                scheduler.submit(api.SubmitRequest(
                    tenant="t", spec=fake_spec(5)))
            assert excinfo.value.status == 429
            # The rejected job charged nothing and left no state.
            assert scheduler.quotas.usage("t")["queued"] == 0
            assert len(scheduler.jobs) == 0
        policy = QuotaPolicy(max_queued_cells=4)
        _run(_with_scheduler(scratch, body, policy=policy))

    def test_cached_cells_charge_no_quota(self, scratch):
        """Dedup economics: resubmitting a fully-cached grid admits
        even when the quota would reject it as fresh compute."""
        async def body(scheduler, store, bus):
            spec = fake_spec(4)
            job = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            await asyncio.wait_for(job.done.wait(), 30)
            # Queue quota is 4; a second 4-cell job fits only because
            # its cells are all cache hits (charge 0).
            scheduler.submit(api.SubmitRequest(tenant="t", spec=spec))
            with pytest.raises(api.ServeError):
                scheduler.submit(api.SubmitRequest(
                    tenant="t", spec=fake_spec(5, group_prefix="new")))
        policy = QuotaPolicy(max_queued_cells=4)
        _run(_with_scheduler(scratch, body, policy=policy))


class TestSchedulerTimeouts:
    def test_timeout_fails_cell_with_executor_message(self, scratch):
        async def body(scheduler, store, bus):
            spec = fake_spec(1)
            job = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            await asyncio.wait_for(job.done.wait(), 60)
            assert job.view.state == api.JOB_FAILED
            assert "timed out after 0.3s" in job.view.cells[0].error
        _run(_with_scheduler(scratch, body, cell_fn=sleeping_cell,
                             timeout=0.3, retries=0))


class TestJobResultsOffload:
    """Regression for the RPL014 burn-down: ``job_results`` is async
    (store payload reads happen in a worker thread, off the loop) and
    still returns every completed payload in spec order."""

    def test_job_results_is_a_coroutine_function(self):
        # Reverting to a sync method would put disk/sqlite reads back
        # on the event loop; the route in app.py awaits it.
        assert asyncio.iscoroutinefunction(Scheduler.job_results)

    def test_payloads_in_spec_order(self, scratch):
        async def body(scheduler, store, bus):
            spec = fake_spec(3)
            job = scheduler.submit(
                api.SubmitRequest(tenant="t", spec=spec))
            await asyncio.wait_for(job.done.wait(), 30)
            results = await scheduler.job_results(job.view.job_id)
            assert results["state"] == api.JOB_DONE
            assert [c["cell_id"] for c in results["cells"]] == \
                [cell.cell_id for cell in spec.cells]
            assert all("result" in c for c in results["cells"])
        _run(_with_scheduler(scratch, body))
