"""Wire-schema units: request validation and the NDJSON event schema."""

from __future__ import annotations

import pytest

from repro.serve import api

from tests.campaign._fakes import fake_spec


def _body(spec=None, **extra):
    body = {"spec": (spec or fake_spec(2)).to_dict()}
    body.update(extra)
    return body


class TestSubmitRequest:
    def test_valid_body(self):
        request = api.SubmitRequest.from_dict(_body(tenant="alice"))
        assert request.tenant == "alice"
        assert len(request.spec.cells) == 2

    def test_tenant_defaults(self):
        assert api.SubmitRequest.from_dict(_body()).tenant == "default"

    @pytest.mark.parametrize("bad", [
        None, [], "spec", 42,
    ])
    def test_non_object_body_rejected(self, bad):
        with pytest.raises(api.ServeError):
            api.SubmitRequest.from_dict(bad)

    @pytest.mark.parametrize("tenant", ["", "a/b", "x" * 65, 7])
    def test_bad_tenant_rejected(self, tenant):
        with pytest.raises(api.ServeError):
            api.SubmitRequest.from_dict(_body(tenant=tenant))

    def test_missing_spec_rejected(self):
        with pytest.raises(api.ServeError, match="missing 'spec'"):
            api.SubmitRequest.from_dict({"tenant": "t"})

    def test_malformed_spec_rejected(self):
        with pytest.raises(api.ServeError):
            api.SubmitRequest.from_dict(
                {"spec": {"name": "x", "cells": [{"nope": 1}]}})

    def test_empty_spec_rejected(self):
        spec = fake_spec(1).to_dict()
        spec["cells"] = []
        with pytest.raises(api.ServeError, match="no cells"):
            api.SubmitRequest.from_dict({"spec": spec})

    def test_oversized_spec_rejected_as_413(self):
        spec = fake_spec(2).to_dict()
        cell = spec["cells"][0]
        spec["cells"] = [dict(cell, group=f"g{i}")
                        for i in range(api.MAX_CELLS_PER_JOB + 1)]
        with pytest.raises(api.TooLargeError) as excinfo:
            api.SubmitRequest.from_dict({"spec": spec})
        assert excinfo.value.status == 413


class TestErrorPayloads:
    @pytest.mark.parametrize("cls,status,code", [
        (api.ServeError, 400, "bad_request"),
        (api.NotFoundError, 404, "not_found"),
        (api.TooLargeError, 413, "too_large"),
        (api.ShuttingDownError, 503, "shutting_down"),
    ])
    def test_status_and_code(self, cls, status, code):
        error = cls("why")
        assert error.status == status
        assert error.to_dict() == {"error": code, "detail": "why"}


def _event(**overrides):
    base = {"seq": 3, "ts": 1_700_000_000.0, "event": api.EV_CELL_STARTED,
            "job": "job-000001", "cell_id": "fake/cell0", "key": "ab" * 32}
    base.update(overrides)
    return base


class TestValidateEvent:
    def test_accepts_well_formed(self):
        api.validate_event(_event())

    def test_accepts_every_declared_type(self):
        extras = {
            api.EV_JOB_ACCEPTED: dict(tenant="t", cells=4, cached=1,
                                      deduped=1, queued=2),
            api.EV_CELL_SCHEDULED: dict(dedup="store"),
            api.EV_CELL_STARTED: {},
            api.EV_CELL_RETRY: dict(attempt=1, error="boom"),
            api.EV_CELL_FINISHED: dict(status=api.CELL_DONE,
                                       wall_time=0.1),
            api.EV_JOB_FINISHED: dict(state=api.JOB_DONE, counts={},
                                      wall_time=0.2),
        }
        for kind, fields in extras.items():
            api.validate_event(_event(event=kind, **fields))

    @pytest.mark.parametrize("mutation,message", [
        (lambda e: e.pop("seq"), "missing required field 'seq'"),
        (lambda e: e.pop("job"), "missing required field 'job'"),
        (lambda e: e.update(event="woke_up"), "unknown event type"),
        (lambda e: e.update(seq=0), "seq must be a positive"),
        (lambda e: e.update(ts="noon"), "ts must be a number"),
        (lambda e: e.pop("cell_id"), "missing required field 'cell_id'"),
    ])
    def test_rejections(self, mutation, message):
        event = _event()
        mutation(event)
        with pytest.raises(ValueError, match=message):
            api.validate_event(event)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            api.validate_event(["seq", 1])

    def test_rejects_bad_terminal_states(self):
        with pytest.raises(ValueError, match="status"):
            api.validate_event(_event(event=api.EV_CELL_FINISHED,
                                      status="exploded", wall_time=0.0))
        with pytest.raises(ValueError, match="state"):
            api.validate_event(_event(event=api.EV_JOB_FINISHED,
                                      state="queued", counts={},
                                      wall_time=0.0))


class TestJobView:
    def test_counts_and_dict(self):
        view = api.JobView(job_id="job-000001", tenant="t", name="n",
                           created=0.0, state=api.JOB_RUNNING,
                           cells=[api.CellView("c0", "k0"),
                                  api.CellView("c1", "k1",
                                               state=api.CELL_DONE)])
        counts = view.counts()
        assert counts["waiting"] == 1
        assert counts["done"] == 1
        assert counts["total"] == 2
        payload = view.to_dict()
        assert len(payload["cells"]) == 2
        assert "cells" not in view.to_dict(with_cells=False)
