"""The write pending queue: capacity, drain, back-pressure."""

import pytest

from repro.errors import ConfigError
from repro.mem.wpq import WritePendingQueue


def wpq(data=4, meta=2, drain=10) -> WritePendingQueue:
    return WritePendingQueue(data_entries=data, metadata_entries=meta,
                             drain_cycles=drain)


class TestEnqueue:
    def test_no_stall_with_room(self):
        queue = wpq()
        assert queue.enqueue(0, cycle=0) == 0
        assert len(queue) == 1

    def test_partitions_are_separate(self):
        queue = wpq(data=1, meta=1)
        queue.enqueue(0, 0)
        assert queue.enqueue(64, 0, metadata=True) == 0

    def test_full_data_queue_stalls(self):
        queue = wpq(data=2, drain=10)
        queue.enqueue(0, 0)
        queue.enqueue(64, 0)
        stall = queue.enqueue(128, 0)
        assert stall > 0

    def test_stall_matches_drain_schedule(self):
        queue = wpq(data=1, drain=10)
        queue.enqueue(0, 0)
        # Next slot frees when the first drain fires at cycle 10.
        assert queue.enqueue(64, 0) == 10

    def test_full_metadata_queue_stalls_independently(self):
        queue = wpq(data=8, meta=1, drain=10)
        queue.enqueue(0, 0, metadata=True)
        assert queue.enqueue(64, 0, metadata=True) > 0

    def test_stats(self):
        queue = wpq()
        queue.enqueue(0, 0)
        queue.enqueue(64, 0, metadata=True)
        assert queue.stats.counter("enqueued").value == 1
        assert queue.stats.counter("metadata_enqueued").value == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            WritePendingQueue(data_entries=0)
        with pytest.raises(ConfigError):
            WritePendingQueue(drain_cycles=0)


class TestDrain:
    def test_advance_drains(self):
        queue = wpq(drain=10)
        queue.enqueue(0, 0)
        queue.enqueue(64, 0)
        queue.advance_to(25)
        assert len(queue) == 0
        assert queue.stats.counter("drained").value == 2

    def test_drain_rate_respected(self):
        queue = wpq(data=8, drain=10)
        for i in range(4):
            queue.enqueue(i * 64, 0)
        queue.advance_to(15)  # drains at 10 only (next at 20)
        assert len(queue) == 3

    def test_metadata_drains_first(self):
        queue = wpq(drain=10)
        queue.enqueue(0, 0)
        queue.enqueue(64, 0, metadata=True)
        queue.advance_to(10)
        assert queue.occupancy(metadata=True) == 0
        assert queue.occupancy(metadata=False) == 1

    def test_advance_backwards_is_noop(self):
        queue = wpq()
        queue.enqueue(0, 5)
        queue.advance_to(3)
        assert len(queue) == 1

    def test_idle_queue_resets_drain_clock(self):
        queue = wpq(drain=10)
        queue.enqueue(0, 0)
        queue.advance_to(100)        # drained long ago; idle since
        queue.enqueue(64, 100)
        queue.advance_to(109)
        assert len(queue) == 1       # drain at >= 100+? not before 110
        queue.advance_to(110)
        assert len(queue) == 0


class TestFlush:
    def test_flush_empties_everything(self):
        queue = wpq()
        queue.enqueue(0, 0)
        queue.enqueue(64, 0, metadata=True)
        flushed = queue.flush()
        assert len(queue) == 0
        assert {e.line_addr for e in flushed} == {0, 64}

    def test_flush_order_metadata_first(self):
        queue = wpq()
        queue.enqueue(0, 0)
        queue.enqueue(64, 0, metadata=True)
        flushed = queue.flush()
        assert flushed[0].is_metadata


class TestSlotAccounting:
    """Table II partitioning: 64 data + 10 metadata slots are separate
    resources — neither side may ever consume the other's capacity."""

    def test_metadata_never_consumes_data_slots(self):
        queue = wpq(data=2, meta=2, drain=10)
        queue.enqueue(0, 0, metadata=True)
        queue.enqueue(64, 0, metadata=True)
        # Metadata partition is full; data still enqueues stall-free.
        assert queue.enqueue(128, 0) == 0
        assert queue.enqueue(192, 0) == 0
        assert queue.occupancy(metadata=True) == 2
        assert queue.occupancy(metadata=False) == 2

    def test_data_never_consumes_metadata_slots(self):
        queue = wpq(data=2, meta=1, drain=10)
        queue.enqueue(0, 0)
        queue.enqueue(64, 0)
        # Data partition is full; the metadata slot is still free.
        assert queue.enqueue(128, 0, metadata=True) == 0
        assert queue.occupancy(metadata=True) == 1

    def test_partial_drain_preserves_fifo_within_partition(self):
        queue = wpq(data=8, meta=2, drain=10)
        for i in range(4):
            queue.enqueue(i * 64, 0)
        queue.advance_to(10)  # bandwidth for exactly the oldest entry
        remaining = [entry.line_addr for entry in queue.flush()]
        assert remaining == [64, 128, 192]

    def test_crash_flush_is_exactly_the_pending_writes(self):
        """ADR semantics: the crash-time flush is precisely the accepted
        entries — metadata partition first, each partition in enqueue
        order — and afterwards the queue is empty."""
        queue = wpq(data=8, meta=4, drain=10)
        queue.enqueue(0, 0)
        queue.enqueue(1024, 0, metadata=True)
        queue.enqueue(64, 0)
        queue.enqueue(1088, 0, metadata=True)
        flushed = queue.flush()
        assert [entry.line_addr for entry in flushed] \
            == [1024, 1088, 0, 64]
        assert len(queue) == 0
        assert queue.flush() == []

    def test_full_queue_back_pressure_waits_for_the_drain(self):
        queue = wpq(data=2, drain=10)
        queue.enqueue(0, 0)   # queue goes busy: first drain at 10
        queue.enqueue(64, 0)
        assert queue.enqueue(128, 0) == 10
        assert queue.occupancy(metadata=False) == 2

    def test_metadata_preference_delays_the_data_slot(self):
        """The shared drain port serves metadata first, so a blocked
        data producer waits through the metadata drain too."""
        queue = wpq(data=1, meta=2, drain=10)
        queue.enqueue(0, 0)
        queue.enqueue(1024, 0, metadata=True)
        assert queue.enqueue(64, 0) == 20
