"""The NVM device: functional storage + row-buffer timing."""

import pytest

from repro.errors import AddressError
from repro.mem.nvm import LINES_PER_ROW, NVMDevice
from repro.mem.timing import TimingModel

CAP = 1024 * 1024


@pytest.fixture
def nvm() -> NVMDevice:
    return NVMDevice(CAP)


class TestFunctional:
    def test_fresh_lines_read_zero(self, nvm):
        assert nvm.read_line(0) == bytes(64)

    def test_write_read_roundtrip(self, nvm):
        payload = bytes(range(64))
        nvm.write_line(128, payload)
        assert nvm.read_line(128) == payload

    def test_overwrite(self, nvm):
        nvm.write_line(0, b"\x01" * 64)
        nvm.write_line(0, b"\x02" * 64)
        assert nvm.read_line(0) == b"\x02" * 64

    def test_misaligned_rejected(self, nvm):
        with pytest.raises(AddressError):
            nvm.read_line(1)

    def test_out_of_range_rejected(self, nvm):
        with pytest.raises(AddressError):
            nvm.write_line(CAP, bytes(64))

    def test_partial_line_write_rejected(self, nvm):
        with pytest.raises(AddressError):
            nvm.write_line(0, b"short")

    def test_lines_written_counts_distinct(self, nvm):
        nvm.write_line(0, bytes(64))
        nvm.write_line(0, bytes(64))
        nvm.write_line(64, bytes(64))
        assert nvm.lines_written == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(AddressError):
            NVMDevice(100)


class TestAccessCounting:
    def test_reads_and_writes_counted(self, nvm):
        nvm.read_line(0)
        nvm.write_line(0, bytes(64))
        assert nvm.stats.counter("reads").value == 1
        assert nvm.stats.counter("writes").value == 1

    def test_peek_poke_uncounted(self, nvm):
        nvm.poke_line(0, bytes(64))
        nvm.peek_line(0)
        assert nvm.stats.counter("reads").value == 0
        assert nvm.stats.counter("writes").value == 0

    def test_peek_sees_poked_data(self, nvm):
        nvm.poke_line(0, b"\x07" * 64)
        assert nvm.peek_line(0) == b"\x07" * 64


class TestRowBuffer:
    def test_first_access_misses(self, nvm):
        assert nvm.read_latency(0) == nvm.timing.read_cycles

    def test_same_row_hits(self, nvm):
        nvm.read_line(0)
        assert nvm.read_latency(64) == nvm.timing.row_hit_read_cycles

    def test_row_conflict_misses(self, nvm):
        row_bytes = 64 * LINES_PER_ROW
        conflict = row_bytes * nvm.timing.banks  # same bank, next row
        nvm.read_line(0)
        assert nvm.read_latency(conflict) == nvm.timing.read_cycles

    def test_different_banks_independent(self, nvm):
        row_bytes = 64 * LINES_PER_ROW
        nvm.read_line(0)
        nvm.read_line(row_bytes)  # lands in a different bank
        assert nvm.read_latency(0) == nvm.timing.row_hit_read_cycles

    def test_hit_statistics(self, nvm):
        nvm.read_line(0)
        nvm.read_line(64)
        assert nvm.stats.counter("row_buffer_hits").value == 1
        assert nvm.stats.counter("row_buffer_misses").value == 1

    def test_drain_cycles_exposed(self):
        nvm = NVMDevice(CAP, TimingModel(banks=8))
        assert nvm.write_drain_cycles == TimingModel(banks=8).write_drain_cycles
