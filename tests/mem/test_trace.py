"""Trace records and statistics."""

from repro.mem.trace import (
    AccessType,
    MemoryAccess,
    TraceStats,
    collect_stats,
    tee_stats,
)


def sample_trace():
    return [
        MemoryAccess(AccessType.READ, 0, gap=2),
        MemoryAccess(AccessType.WRITE, 64, gap=1),
        MemoryAccess(AccessType.PERSIST, 64, gap=0),
        MemoryAccess(AccessType.READ, 130, gap=3),
    ]


class TestCollectStats:
    def test_counts_by_kind(self):
        stats = collect_stats(sample_trace())
        assert stats.reads == 2
        assert stats.writes == 1
        assert stats.persists == 1

    def test_gap_instructions(self):
        stats = collect_stats(sample_trace())
        assert stats.gap_instructions == 6

    def test_memory_share(self):
        stats = collect_stats(sample_trace())
        assert stats.memory_share == 4 / 10

    def test_footprint_is_line_aligned_and_distinct(self):
        stats = collect_stats(sample_trace())
        assert stats.footprint == {0, 64, 128}

    def test_empty_trace(self):
        stats = collect_stats([])
        assert stats.memory_share == 0.0
        assert stats.total_instructions == 0


class TestTeeStats:
    def test_passthrough_and_accumulate(self):
        stats = TraceStats()
        passed = list(tee_stats(sample_trace(), stats))
        assert passed == sample_trace()
        assert stats.reads == 2

    def test_lazy_accumulation(self):
        stats = TraceStats()
        gen = tee_stats(sample_trace(), stats)
        next(gen)
        assert stats.memory_instructions == 1


class TestMemoryAccess:
    def test_frozen(self):
        access = MemoryAccess(AccessType.READ, 0)
        try:
            access.addr = 1
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_default_gap(self):
        assert MemoryAccess(AccessType.READ, 0).gap == 1
