"""Address map: every translation the rest of the system relies on."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, ConfigError
from repro.mem.address import (
    AddressMap,
    CACHE_LINE_SIZE,
    LINES_PER_COUNTER_BLOCK,
    Region,
    TREE_ARITY,
)

CAP = 1024 * 1024  # 256 counter blocks -> 3 tree levels minimum


@pytest.fixture
def amap() -> AddressMap:
    return AddressMap(CAP)


class TestGeometry:
    def test_basic_counts(self, amap):
        assert amap.num_data_lines == CAP // 64
        assert amap.num_counter_blocks == CAP // 64 // 64

    def test_minimum_levels_cover_leaves(self, amap):
        assert TREE_ARITY ** amap.tree_levels >= amap.num_counter_blocks

    def test_levels_are_minimal_by_default(self, amap):
        assert TREE_ARITY ** (amap.tree_levels - 1) < amap.num_counter_blocks

    def test_forced_levels_accepted(self):
        amap = AddressMap(CAP, tree_levels=9)
        assert amap.tree_levels == 9
        assert amap.level_width(8) == 1

    def test_too_few_levels_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(CAP, tree_levels=1)

    def test_capacity_must_align(self):
        with pytest.raises(ConfigError):
            AddressMap(CAP + 64)

    def test_level_width_shrinks_by_arity(self, amap):
        for level in range(1, amap.tree_levels):
            below = amap.level_width(level - 1)
            assert amap.level_width(level) == -(-below // TREE_ARITY)

    def test_root_width_is_one(self, amap):
        assert amap.level_width(amap.tree_levels) == 1

    def test_level_out_of_range(self, amap):
        with pytest.raises(AddressError):
            amap.level_width(amap.tree_levels + 1)

    def test_total_capacity_covers_all_regions(self, amap):
        assert amap.total_capacity == (
            amap.data_capacity
            + amap.num_counter_blocks * CACHE_LINE_SIZE
            + amap.num_tree_nodes * CACHE_LINE_SIZE)


class TestRegions:
    def test_data_region(self, amap):
        assert amap.region_of(0) is Region.DATA
        assert amap.region_of(CAP - 1) is Region.DATA

    def test_counter_region(self, amap):
        assert amap.region_of(amap.counter_base) is Region.COUNTER

    def test_tree_region(self, amap):
        assert amap.region_of(amap.tree_base) is Region.TREE

    def test_beyond_media_rejected(self, amap):
        with pytest.raises(AddressError):
            amap.region_of(amap.total_capacity)

    def test_line_of_aligns(self, amap):
        assert amap.line_of(100) == 64
        assert amap.line_of(64) == 64


class TestDataTranslations:
    def test_counter_block_of_data(self, amap):
        assert amap.counter_block_of_data(0) == 0
        boundary = LINES_PER_COUNTER_BLOCK * CACHE_LINE_SIZE
        assert amap.counter_block_of_data(boundary) == 1

    def test_minor_slot_of_data(self, amap):
        assert amap.minor_slot_of_data(0) == 0
        assert amap.minor_slot_of_data(64) == 1
        assert amap.minor_slot_of_data(63 * 64) == 63
        assert amap.minor_slot_of_data(64 * 64) == 0

    def test_non_data_address_rejected(self, amap):
        with pytest.raises(AddressError):
            amap.counter_block_of_data(amap.counter_base)

    @given(st.integers(min_value=0, max_value=CAP - 1))
    def test_every_data_byte_maps_to_valid_block(self, addr):
        amap = AddressMap(CAP)
        block = amap.counter_block_of_data(addr)
        assert 0 <= block < amap.num_counter_blocks
        slot = amap.minor_slot_of_data(addr)
        assert 0 <= slot < LINES_PER_COUNTER_BLOCK


class TestTreeTranslations:
    def test_leaf_node_addr_is_counter_addr(self, amap):
        assert amap.tree_node_addr(0, 5) == amap.counter_block_addr(5)

    def test_node_addr_roundtrip(self, amap):
        for level in range(amap.tree_levels):
            for index in (0, amap.level_width(level) - 1):
                addr = amap.tree_node_addr(level, index)
                assert amap.tree_node_coords(addr) == (level, index)

    def test_root_has_no_media_address(self, amap):
        with pytest.raises(AddressError):
            amap.tree_node_addr(amap.tree_levels, 0)

    def test_node_index_out_of_range(self, amap):
        with pytest.raises(AddressError):
            amap.tree_node_addr(1, amap.level_width(1))

    def test_counter_block_addr_roundtrip(self, amap):
        addr = amap.counter_block_addr(7)
        assert amap.counter_block_index(addr) == 7

    def test_distinct_nodes_have_distinct_addresses(self, amap):
        seen = set()
        for level in range(amap.tree_levels):
            for index in range(amap.level_width(level)):
                addr = amap.tree_node_addr(level, index)
                assert addr not in seen
                seen.add(addr)


class TestParentChild:
    def test_parent_coords(self, amap):
        assert amap.parent_coords(0, 9) == (1, 1)
        assert amap.parent_coords(0, 7) == (1, 0)

    def test_parent_slot(self, amap):
        assert amap.parent_slot(9) == 1
        assert amap.parent_slot(8) == 0

    def test_root_has_no_parent(self, amap):
        with pytest.raises(AddressError):
            amap.parent_coords(amap.tree_levels, 0)

    def test_child_coords_inverse_of_parent(self, amap):
        for level in range(1, amap.tree_levels):
            for index in range(amap.level_width(level)):
                for child in amap.child_coords(level, index):
                    assert amap.parent_coords(*child) == (level, index)

    def test_children_cover_level_exactly(self, amap):
        for level in range(1, amap.tree_levels):
            children = [
                c for index in range(amap.level_width(level))
                for c in amap.child_coords(level, index)]
            assert len(children) == amap.level_width(level - 1)
            assert len(set(children)) == len(children)

    def test_leaves_have_no_tree_children(self, amap):
        with pytest.raises(AddressError):
            amap.child_coords(0, 0)

    def test_branch_reaches_top(self, amap):
        branch = amap.branch_coords(0)
        assert branch[0] == (0, 0)
        assert branch[-1][0] == amap.tree_levels - 1
        assert len(branch) == amap.tree_levels

    @given(st.integers(min_value=0, max_value=255))
    def test_branch_is_connected(self, block):
        amap = AddressMap(CAP)
        branch = amap.branch_coords(block)
        for child, parent in zip(branch, branch[1:]):
            assert amap.parent_coords(*child) == parent
