"""PCM timing model (Table II parameters)."""

import pytest

from repro.errors import ConfigError
from repro.mem.timing import PCMTiming, TimingModel


class TestPCMTiming:
    def test_table2_defaults(self):
        pcm = PCMTiming()
        assert pcm.t_rcd == 48.0
        assert pcm.t_cl == 15.0
        assert pcm.t_cwd == 13.0
        assert pcm.t_faw == 50.0
        assert pcm.t_wtr == 7.5
        assert pcm.t_wr == 300.0

    def test_read_is_activate_plus_cas(self):
        assert PCMTiming().read_ns == 63.0

    def test_row_hit_skips_activate(self):
        assert PCMTiming().row_hit_read_ns == 15.0

    def test_write_is_cwd_plus_recovery(self):
        assert PCMTiming().write_ns == 313.0

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigError):
            PCMTiming(t_wr=-1)


class TestTimingModel:
    def test_cycles_at_2ghz(self):
        model = TimingModel()
        assert model.read_cycles == 126          # 63 ns * 2 GHz
        assert model.row_hit_read_cycles == 30
        assert model.write_service_cycles == 626

    def test_ns_to_cycles_rounds_up(self):
        model = TimingModel(cpu_ghz=2.0)
        assert model.ns_to_cycles(0.4) == 1
        assert model.ns_to_cycles(1.0) == 2

    def test_drain_scales_with_banks(self):
        slow = TimingModel(banks=1)
        fast = TimingModel(banks=8)
        assert slow.write_drain_cycles == 8 * fast.write_drain_cycles \
            or abs(slow.write_drain_cycles - 8 * fast.write_drain_cycles) <= 8

    def test_drain_never_zero(self):
        assert TimingModel(banks=10_000).write_drain_cycles == 1

    def test_invalid_clock_rejected(self):
        with pytest.raises(ConfigError):
            TimingModel(cpu_ghz=0)

    def test_invalid_banks_rejected(self):
        with pytest.raises(ConfigError):
            TimingModel(banks=0)
