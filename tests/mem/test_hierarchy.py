"""The three-level CPU cache hierarchy: inclusive placement, dirty
write-back spilling, and the writeback stream the controller sees."""

from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig


def tiny_hierarchy() -> CacheHierarchy:
    return CacheHierarchy(HierarchyConfig(
        l1_size=2 * 64 * 2, l1_ways=2,      # 2 sets x 2 ways
        l2_size=4 * 64 * 2, l2_ways=2,
        l3_size=8 * 64 * 2, l3_ways=2))


class TestLoads:
    def test_cold_load_misses_to_memory(self):
        h = tiny_hierarchy()
        result = h.load(0)
        assert result.miss_to_memory
        assert result.hit_level == 0

    def test_second_load_hits_l1(self):
        h = tiny_hierarchy()
        h.load(0)
        result = h.load(0)
        assert not result.miss_to_memory
        assert result.hit_level == 1

    def test_l2_hit_promotes_to_l1(self):
        h = tiny_hierarchy()
        h.load(0)
        h.l1.invalidate(0)
        assert h.load(0).hit_level == 2
        assert h.load(0).hit_level == 1

    def test_l3_hit_promotes_inward(self):
        h = tiny_hierarchy()
        h.load(0)
        h.l1.invalidate(0)
        h.l2.invalidate(0)
        assert h.load(0).hit_level == 3
        assert h.load(0).hit_level == 1


class TestStores:
    def test_store_hit_never_misses_to_memory(self):
        h = tiny_hierarchy()
        h.load(0)
        assert not h.store(0).miss_to_memory

    def test_store_miss_allocates(self):
        h = tiny_hierarchy()
        result = h.store(0)
        assert result.miss_to_memory  # write-allocate fill
        assert h.load(0).hit_level == 1

    def test_store_dirties_line(self):
        h = tiny_hierarchy()
        h.store(0)
        assert h.l1.peek(0).dirty


class TestPersist:
    def test_persist_leaves_line_clean(self):
        h = tiny_hierarchy()
        h.store(0)
        h.persist(0)
        assert not h.l1.peek(0).dirty

    def test_persist_cleans_all_levels(self):
        h = tiny_hierarchy()
        h.store(0)
        h.persist(0)
        for cache in (h.l1, h.l2, h.l3):
            line = cache.peek(0)
            assert line is None or not line.dirty

    def test_persist_miss_installs(self):
        h = tiny_hierarchy()
        result = h.persist(0)
        assert result.miss_to_memory
        assert h.load(0).hit_level == 1


class TestWritebacks:
    def test_dirty_line_eventually_written_back(self):
        h = tiny_hierarchy()
        h.store(0)
        writebacks = []
        # Fill the (tiny) hierarchy with conflicting clean lines until the
        # dirty line is forced out of L3.
        for i in range(1, 64):
            writebacks += h.load(i * 128).writebacks
        assert 0 in writebacks

    def test_clean_lines_never_written_back(self):
        h = tiny_hierarchy()
        writebacks = []
        for i in range(64):
            writebacks += h.load(i * 128).writebacks
        assert writebacks == []

    def test_writeback_only_once(self):
        h = tiny_hierarchy()
        h.store(0)
        writebacks = []
        for i in range(1, 128):
            writebacks += h.load(i * 128).writebacks
        assert writebacks.count(0) == 1

    def test_dirty_spills_through_levels(self):
        """A dirty L1 victim must not lose its dirtiness: it spills to L2,
        then L3, and finally surfaces as a writeback."""
        h = tiny_hierarchy()
        h.store(0)               # dirty in L1 (set 0)
        h.load(128)              # conflicts in L1 set 0
        h.load(256)              # evicts line 0 from L1 -> spills to L2
        l2_line = h.l2.peek(0)
        l1_line = h.l1.peek(0)
        assert (l1_line is not None and l1_line.dirty) or \
            (l2_line is not None and l2_line.dirty) or \
            (h.l3.peek(0) is not None and h.l3.peek(0).dirty)


class TestCrash:
    def test_drop_all_reports_dirty_lines(self):
        h = tiny_hierarchy()
        h.store(0)
        h.store(64)
        h.load(128)
        dirty = h.drop_all()
        assert set(dirty) == {0, 64}

    def test_drop_all_empties_hierarchy(self):
        h = tiny_hierarchy()
        h.store(0)
        h.drop_all()
        assert h.load(0).miss_to_memory


class TestConfig:
    def test_table2_defaults(self):
        config = HierarchyConfig()
        assert config.l1_size == 64 * 1024
        assert config.l2_size == 512 * 1024
        assert config.l3_size == 4 * 1024 * 1024
        h = CacheHierarchy(config)
        assert h.l1.ways == 2
        assert h.l2.ways == 8
        assert h.l3.ways == 8
