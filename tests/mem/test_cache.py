"""The set-associative cache, including a hypothesis model check of LRU
behaviour against a reference implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem.cache import SetAssociativeCache


def small_cache(ways=2, sets=2) -> SetAssociativeCache:
    return SetAssociativeCache(64 * ways * sets, ways=ways)


class TestBasics:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0) is None
        cache.insert(0)
        assert cache.lookup(0) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_contains_does_not_touch_stats(self):
        cache = small_cache()
        cache.insert(0)
        cache.contains(0)
        cache.contains(64)
        assert cache.stats.accesses == 0

    def test_peek_does_not_touch_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)
        cache.insert(64)
        cache.peek(0)           # would refresh 0 if it were a lookup
        victim = cache.insert(128)
        assert victim.addr == 0  # 0 is still LRU

    def test_lookup_refreshes_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)
        cache.insert(64)
        cache.lookup(0)
        victim = cache.insert(128)
        assert victim.addr == 64

    def test_payload_stored(self):
        cache = small_cache()
        cache.insert(0, payload="node")
        assert cache.lookup(0).payload == "node"

    def test_insert_existing_updates_payload_and_dirty(self):
        cache = small_cache()
        cache.insert(0, payload="a", dirty=False)
        victim = cache.insert(0, payload="b", dirty=True)
        assert victim is None
        line = cache.peek(0)
        assert line.payload == "b"
        assert line.dirty

    def test_dirty_sticky_on_reinsert(self):
        cache = small_cache()
        cache.insert(0, dirty=True)
        cache.insert(0, dirty=False)
        assert cache.peek(0).dirty

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(100, ways=8)


class TestEviction:
    def test_victim_returned(self):
        cache = small_cache(ways=1, sets=1)
        cache.insert(0)
        victim = cache.insert(64)
        assert victim.addr == 0

    def test_dirty_victim_counts_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.insert(0, dirty=True)
        cache.insert(64)
        assert cache.stats.writebacks == 1

    def test_clean_victim_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.insert(0, dirty=False)
        cache.insert(64)
        assert cache.stats.writebacks == 0

    def test_sets_are_independent(self):
        cache = small_cache(ways=1, sets=2)
        cache.insert(0)      # set 0
        victim = cache.insert(64)  # set 1
        assert victim is None

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(0)
        assert cache.invalidate(0).addr == 0
        assert cache.peek(0) is None
        assert cache.invalidate(0) is None


class TestStatsSingleSource:
    """``cache.stats`` is a read-only view over the ``StatGroup``
    counters — there is no second set of attributes to fall out of sync
    (the legacy double bookkeeping this replaced)."""

    def test_view_equals_stat_group_after_traffic(self):
        cache = small_cache(ways=2, sets=2)
        for round_ in range(3):
            for addr in range(0, 64 * 8, 64):
                cache.lookup(addr)
                cache.insert(addr, dirty=(round_ == 0))
        exported = cache.stat_group.as_dict()
        prefix = cache.stat_group.name
        assert cache.stats.hits == exported[f"{prefix}.hits"]
        assert cache.stats.misses == exported[f"{prefix}.misses"]
        assert cache.stats.evictions == exported[f"{prefix}.evictions"]
        assert cache.stats.writebacks == exported[f"{prefix}.writebacks"]
        assert cache.stats.accesses \
            == exported[f"{prefix}.hits"] + exported[f"{prefix}.misses"]

    def test_external_counter_bump_is_visible_in_view(self):
        """Mutating the StatGroup counter (the single source of truth) is
        immediately visible through the view — proof there is no copy."""
        cache = small_cache()
        cache.stat_group.counter("hits").add(5)
        assert cache.stats.hits == 5

    def test_to_dict_snapshot(self):
        cache = small_cache()
        cache.lookup(0)          # miss
        cache.insert(0)
        cache.lookup(0)          # hit
        snapshot = cache.stats.to_dict()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5


class TestBulkOperations:
    def test_drop_all_returns_everything(self):
        cache = small_cache(ways=2, sets=2)
        for addr in (0, 64, 128):
            cache.insert(addr)
        dropped = cache.drop_all()
        assert {line.addr for line in dropped} == {0, 64, 128}
        assert len(cache) == 0

    def test_dirty_lines(self):
        cache = small_cache(ways=2, sets=2)
        cache.insert(0, dirty=True)
        cache.insert(64, dirty=False)
        assert [line.addr for line in cache.dirty_lines()] == [0]

    def test_resident_lines(self):
        cache = small_cache(ways=2, sets=2)
        cache.insert(0)
        cache.insert(64)
        assert {line.addr for line in cache.resident_lines()} == {0, 64}


class TestUnbounded:
    def test_never_evicts(self):
        cache = SetAssociativeCache(None)
        for i in range(1000):
            assert cache.insert(i * 64) is None
        assert len(cache) == 1000

    def test_hits_after_many_inserts(self):
        cache = SetAssociativeCache(None)
        cache.insert(0)
        for i in range(1, 500):
            cache.insert(i * 64)
        assert cache.lookup(0) is not None


class TestLRUModelCheck:
    """Drive the cache and a reference fully-associative-per-set model
    with the same operations; behaviour must match exactly."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.booleans()),
                    min_size=1, max_size=200))
    def test_against_reference(self, ops):
        ways, sets = 2, 2
        cache = small_cache(ways=ways, sets=sets)
        model: list[list[int]] = [[] for _ in range(sets)]  # MRU at end

        for slot, is_insert in ops:
            addr = slot * 64
            set_id = slot % sets
            mru = model[set_id]
            if is_insert:
                victim = cache.insert(addr)
                if addr in mru:
                    mru.remove(addr)
                    mru.append(addr)
                    assert victim is None
                else:
                    expected_victim = None
                    if len(mru) >= ways:
                        expected_victim = mru.pop(0)
                    mru.append(addr)
                    if expected_victim is None:
                        assert victim is None
                    else:
                        assert victim is not None
                        assert victim.addr == expected_victim
            else:
                line = cache.lookup(addr)
                if addr in mru:
                    assert line is not None
                    mru.remove(addr)
                    mru.append(addr)
                else:
                    assert line is None
