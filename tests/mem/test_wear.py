"""Wear tracking and Start-Gap wear levelling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem.nvm import NVMDevice
from repro.mem.wear import StartGap, WearTracker


class TestWearTracker:
    def test_records_per_line(self):
        tracker = WearTracker()
        tracker.record(0)
        tracker.record(0)
        tracker.record(64)
        assert tracker.writes_to(0) == 2
        assert tracker.writes_to(64) == 1
        assert tracker.writes_to(128) == 0

    def test_report_aggregates(self):
        tracker = WearTracker()
        for _ in range(5):
            tracker.record(0)
        tracker.record(64)
        report = tracker.report()
        assert report.total_writes == 6
        assert report.lines_touched == 2
        assert report.max_writes == 5
        assert report.hottest_line == 0
        assert report.mean_writes == 3.0
        assert report.imbalance == pytest.approx(5 / 3)

    def test_report_range_filters(self):
        tracker = WearTracker()
        tracker.record(0)
        tracker.record(1024)
        report = tracker.report(lo=512, region="upper")
        assert report.total_writes == 1
        assert report.region == "upper"

    def test_empty_report(self):
        report = WearTracker().report()
        assert report.total_writes == 0
        assert report.imbalance == 0.0

    def test_lifetime_fraction(self):
        tracker = WearTracker()
        for _ in range(100):
            tracker.record(0)
        assert tracker.report().lifetime_fraction(endurance=1e4) == 0.01

    def test_top_lines_ordering(self):
        tracker = WearTracker()
        for addr, n in ((0, 3), (64, 7), (128, 1)):
            for _ in range(n):
                tracker.record(addr)
        assert tracker.top_lines(2) == [(64, 7), (0, 3)]


class TestNVMIntegration:
    def test_counted_writes_tracked(self):
        nvm = NVMDevice(64 * 1024, track_wear=True)
        nvm.write_line(0, bytes(64))
        nvm.write_line(0, bytes(64))
        assert nvm.wear.writes_to(0) == 2

    def test_pokes_not_tracked(self):
        nvm = NVMDevice(64 * 1024, track_wear=True)
        nvm.poke_line(0, bytes(64))
        assert nvm.wear.writes_to(0) == 0

    def test_disabled_by_default(self):
        assert NVMDevice(64 * 1024).wear is None


class TestStartGap:
    def test_translation_is_injective_and_avoids_gap(self):
        sg = StartGap(lines=16, gap_interval=3)
        for _ in range(200):
            mapping = [sg.translate(i) for i in range(16)]
            assert len(set(mapping)) == 16
            assert sg.gap not in mapping
            assert all(0 <= p <= 16 for p in mapping)
            sg.on_write()

    def test_gap_moves_every_interval(self):
        sg = StartGap(lines=8, gap_interval=5)
        moved = [sg.on_write() for _ in range(10)]
        assert moved.count(True) == 2
        assert sg.gap_moves == 2
        assert sg.extra_writes == 2

    def test_start_advances_after_full_traversal(self):
        sg = StartGap(lines=4, gap_interval=1)
        for _ in range(5):          # gap walks 4 -> 0, then wraps
            sg.on_write()
        assert sg.start == 1

    def test_hotspot_spreads_over_physical_slots(self):
        sg = StartGap(lines=8, gap_interval=2)
        # One start-advance per 9 gap moves (= 18 writes); 400 writes
        # advance start ~22 times — multiple full rotations, so the
        # single logical hotspot visits every physical slot.
        touched = sg.physical_spread(logical=5, writes=400)
        assert len(touched) >= 8

    def test_spread_grows_with_writes(self):
        few = StartGap(lines=32, gap_interval=4).physical_spread(5, 100)
        many = StartGap(lines=32, gap_interval=4).physical_spread(5, 4000)
        assert len(many) > len(few)

    def test_no_levelling_without_writes(self):
        sg = StartGap(lines=8)
        assert sg.translate(3) == sg.translate(3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StartGap(lines=0)
        with pytest.raises(ConfigError):
            StartGap(lines=4, gap_interval=0)
        with pytest.raises(ConfigError):
            StartGap(lines=4).translate(4)

    @given(st.integers(2, 64), st.integers(1, 20), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_injectivity_invariant(self, lines, interval, writes):
        sg = StartGap(lines=lines, gap_interval=interval)
        for _ in range(writes):
            sg.on_write()
        mapping = [sg.translate(i) for i in range(lines)]
        assert len(set(mapping)) == lines
        assert sg.gap not in mapping
