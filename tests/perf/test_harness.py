"""The perf regression harness: report schema, comparison semantics,
CLI wiring, and a real single-benchmark smoke run."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.perf.harness import (
    BENCH_NAMES,
    PERF_SCHEMES,
    SCHEMA_VERSION,
    BenchResult,
    _benchmarks,
    compare_reports,
    load_report,
    result_digest,
    run_benchmarks,
    save_report,
)


def report_with(benches):
    return {"schema_version": SCHEMA_VERSION, "platform": {},
            "benchmarks": benches}


def bench(rate, digest="d" * 64, accesses=500):
    return {"accesses": accesses, "wall_seconds": accesses / rate,
            "accesses_per_sec": rate, "digest": digest, "repeats": 3}


class TestBenchmarkTable:
    def test_names_cover_all_schemes(self):
        assert "access_loop" in BENCH_NAMES
        assert "fig10_quick" in BENCH_NAMES
        assert "serve_cache_hit" in BENCH_NAMES
        for scheme in PERF_SCHEMES:
            assert f"scheme:{scheme}" in BENCH_NAMES

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            _benchmarks(("no_such_bench",))

    def test_selection_filters(self):
        rows = _benchmarks(("access_loop", "fig10_quick"))
        assert [name for name, _, _ in rows] == ["access_loop",
                                                 "fig10_quick"]


class TestResultDigest:
    def test_key_order_is_canonicalised(self):
        assert result_digest({"a": 1, "b": 2}) \
            == result_digest({"b": 2, "a": 1})

    def test_content_changes_digest(self):
        assert result_digest({"a": 1}) != result_digest({"a": 2})


class TestReportIO:
    def test_roundtrip(self, tmp_path):
        report = report_with({"access_loop": bench(1000.0)})
        path = tmp_path / "BENCH_perf.json"
        save_report(report, path)
        assert load_report(path) == report

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema_version": 999, "benchmarks": {}}))
        with pytest.raises(ConfigError, match="schema version"):
            load_report(path)

    def test_missing_benchmarks_table_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(ConfigError, match="benchmarks"):
            load_report(path)


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = report_with({"a": bench(1000.0), "b": bench(2000.0)})
        code, lines = compare_reports(report, report)
        assert code == 0
        assert all(line.startswith("OK") for line in lines)

    def test_faster_candidate_passes(self):
        code, _ = compare_reports(report_with({"a": bench(1000.0)}),
                                  report_with({"a": bench(2600.0)}))
        assert code == 0

    def test_small_slowdown_within_threshold_passes(self):
        code, lines = compare_reports(report_with({"a": bench(1000.0)}),
                                      report_with({"a": bench(950.0)}))
        assert code == 0
        assert lines[0].startswith("OK")

    def test_regression_beyond_threshold_fails(self):
        code, lines = compare_reports(report_with({"a": bench(1000.0)}),
                                      report_with({"a": bench(800.0)}))
        assert code == 1
        assert lines[0].startswith("REGRESSED")

    def test_advisory_downgrades_regression_to_warning(self):
        code, lines = compare_reports(report_with({"a": bench(1000.0)}),
                                      report_with({"a": bench(800.0)}),
                                      advisory=True)
        assert code == 0
        assert lines[0].startswith("ADVISORY")

    def test_digest_mismatch_fails_even_in_advisory_mode(self):
        """The byte-identical contract is not advisory: a digest change
        means the optimization altered simulation behaviour."""
        code, lines = compare_reports(
            report_with({"a": bench(1000.0, digest="a" * 64)}),
            report_with({"a": bench(5000.0, digest="b" * 64)}),
            advisory=True)
        assert code == 1
        assert lines[0].startswith("DIGEST")

    def test_missing_benchmark_fails(self):
        code, lines = compare_reports(report_with({"a": bench(1000.0)}),
                                      report_with({}))
        assert code == 1
        assert lines[0].startswith("MISSING")

    def test_new_benchmark_is_ignored(self):
        code, lines = compare_reports(
            report_with({"a": bench(1000.0)}),
            report_with({"a": bench(1000.0), "b": bench(1.0)}))
        assert code == 0
        assert any(line.startswith("NEW") for line in lines)

    def test_custom_threshold(self):
        base = report_with({"a": bench(1000.0)})
        cand = report_with({"a": bench(850.0)})
        assert compare_reports(base, cand, threshold=0.20)[0] == 0
        assert compare_reports(base, cand, threshold=0.10)[0] == 1


class TestBenchResult:
    def test_to_dict_rounds(self):
        row = BenchResult("a", 500, 0.1234567, 4051.23456, "e" * 64, 3)
        as_dict = row.to_dict()
        assert as_dict["wall_seconds"] == 0.123457
        assert as_dict["accesses_per_sec"] == 4051.2
        assert as_dict["repeats"] == 3
        assert "extra" not in as_dict      # omitted when unset

    def test_extra_round_trips(self):
        row = BenchResult("a", 500, 0.1, 5000.0, "e" * 64, 3,
                          extra={"fetch_p50_ns": 481})
        assert row.to_dict()["extra"] == {"fetch_p50_ns": 481}


class TestServeCacheHitBench:
    def test_latency_percentiles_recorded(self):
        """The cached-fetch bench reports p50/p99 ns alongside the
        digest (one real store, one real cell)."""
        report = run_benchmarks(quick=True, names=("serve_cache_hit",))
        row = report["benchmarks"]["serve_cache_hit"]
        assert row["accesses"] == 2000
        extra = row["extra"]
        assert 0 < extra["fetch_p50_ns"] <= extra["fetch_p99_ns"]
        assert len(row["digest"]) == 64


class TestSmokeRun:
    def test_single_scheme_quick_run(self):
        """One real benchmark end to end: schema, a 64-hex digest, and a
        positive throughput."""
        report = run_benchmarks(quick=True, names=("scheme:baseline",))
        assert report["schema_version"] == SCHEMA_VERSION
        row = report["benchmarks"]["scheme:baseline"]
        assert row["accesses"] > 0
        assert row["accesses_per_sec"] > 0
        assert len(row["digest"]) == 64
        int(row["digest"], 16)

    def test_cli_compare(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        save_report(report_with({"a": bench(1000.0)}), base)
        save_report(report_with({"a": bench(700.0)}), cand)
        assert main(["perf", "compare", str(base), str(cand)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["perf", "compare", str(base), str(cand),
                     "--advisory"]) == 0
        assert "ADVISORY" in capsys.readouterr().out
