"""Shared fixtures: small, fast system configurations used across the
test suite.  The tiny geometry (1 MB data, small caches) keeps tests quick
while still exercising multi-level trees and cache-eviction paths."""

from __future__ import annotations

import random

import pytest

from repro.mem.address import AddressMap
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.trace import AccessType, MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.system import System

SMALL_CAPACITY = 1024 * 1024          # 1 MB: 256 counter blocks
TINY_CAPACITY = 64 * 64 * 64 * 8      # 2 MB worth of lines -> 512 blocks


@pytest.fixture
def amap() -> AddressMap:
    return AddressMap(SMALL_CAPACITY)


def small_config(scheme: str = "scue", **overrides) -> SystemConfig:
    """A fast config: small caches so evictions actually happen."""
    base = dict(
        scheme=scheme,
        data_capacity=SMALL_CAPACITY,
        metadata_cache_size=4 * 1024,
        hierarchy=HierarchyConfig(
            l1_size=4 * 1024, l1_ways=2,
            l2_size=8 * 1024, l2_ways=8,
            l3_size=16 * 1024, l3_ways=8),
        check_data=True,
    )
    base.update(overrides)
    return SystemConfig(**base)


@pytest.fixture
def config() -> SystemConfig:
    return small_config()


@pytest.fixture
def system(config) -> System:
    return System(config)


def make_system(scheme: str = "scue", **overrides) -> System:
    return System(small_config(scheme, **overrides))


def random_trace(n: int, seed: int = 7,
                 capacity: int = SMALL_CAPACITY,
                 kinds=(AccessType.READ, AccessType.WRITE,
                        AccessType.PERSIST)) -> list[MemoryAccess]:
    """A deterministic mixed trace over the data region."""
    rng = random.Random(seed)
    return [
        MemoryAccess(rng.choice(kinds),
                     rng.randrange(capacity // 64) * 64, gap=rng.randrange(4))
        for _ in range(n)
    ]


def persist_trace(n: int, seed: int = 7,
                  capacity: int = SMALL_CAPACITY) -> list[MemoryAccess]:
    """Persist-only traffic (every access reaches the controller)."""
    return random_trace(n, seed, capacity, kinds=(AccessType.PERSIST,))
