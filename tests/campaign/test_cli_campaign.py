"""The ``repro-sim campaign`` command group and ``figures --jobs``."""

import json

from repro.cli import main

RUN = ["campaign", "run", "--grid", "matrix", "--scale", "quick",
       "--workloads", "array", "--schemes", "baseline,scue"]


class TestCampaignRun:
    def test_run_then_rerun_hits_cache(self, tmp_path, capsys):
        campaign_dir = str(tmp_path / "camp")
        assert main([*RUN, "--dir", campaign_dir]) == 0
        out = capsys.readouterr().out
        assert "cache hits: 0/2" in out
        assert "computed  : 2" in out

        assert main([*RUN, "--dir", campaign_dir]) == 0
        out = capsys.readouterr().out
        assert "cache hits: 2/2" in out
        assert "computed  : 0" in out

        manifest = json.loads(
            (tmp_path / "camp" / "manifest.json").read_text())
        assert manifest["finished"] is True
        assert {c["status"] for c in manifest["cells"]} == {"cached"}

    def test_status_and_clean(self, tmp_path, capsys):
        campaign_dir = str(tmp_path / "camp")
        assert main([*RUN, "--dir", campaign_dir]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", campaign_dir,
                     "--cells"]) == 0
        out = capsys.readouterr().out
        assert "finished" in out
        assert "array/baseline" in out and "array/scue" in out

        assert main(["campaign", "clean", campaign_dir]) == 0
        assert "removed 2 cached result(s) and the manifest" \
            in capsys.readouterr().out

        assert main(["campaign", "status", campaign_dir]) == 1
        assert "no manifest" in capsys.readouterr().out

    def test_status_without_campaign(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path)]) == 1

    def test_status_json(self, tmp_path, capsys):
        campaign_dir = str(tmp_path / "camp")
        assert main([*RUN, "--dir", campaign_dir]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", campaign_dir,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["finished"] is True
        assert payload["total"] == 2
        assert payload["counts"]["done"] == 2
        assert "cells" not in payload      # rows only with --cells

        assert main(["campaign", "status", campaign_dir, "--json",
                     "--cells"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [c["status"] for c in payload["cells"]] == \
            ["done", "done"]

    def test_status_json_without_campaign(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path),
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "no_manifest"


class TestFiguresJobs:
    def test_parallel_figure_json_is_byte_identical(self, tmp_path):
        """The ISSUE acceptance criterion, at test scale: a figure run
        through the worker pool exports byte-identical JSON."""
        from repro.bench.export import save_json
        from repro.bench.figures import fig10_execution_time
        from repro.bench.harness import BenchScale

        scale = BenchScale.quick()
        serial = fig10_execution_time(scale, workloads=["array", "queue"])
        parallel = fig10_execution_time(scale,
                                        workloads=["array", "queue"],
                                        jobs=2)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        save_json(serial, serial_path)
        save_json(parallel, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_campaign_opts_plumbing(self, tmp_path):
        import argparse

        from repro.cli import _campaign_opts

        args = argparse.Namespace(jobs=4,
                                  campaign_dir=str(tmp_path / "c"))
        opts = _campaign_opts(args)
        assert opts["jobs"] == 4
        assert opts["cache"].root == tmp_path / "c" / "cache"
        assert str(opts["manifest_path"]).endswith("manifest.json")
        assert opts["progress"] is not None

        bare = _campaign_opts(argparse.Namespace(jobs=1,
                                                 campaign_dir=None))
        assert bare == {"jobs": 1}
