"""Campaign specs (grid enumeration) and the content-addressed cache."""

import json

import pytest

from repro.campaign import CampaignSpec, CellSpec, ResultCache, cell_key
from repro.errors import ConfigError

from tests.campaign._fakes import TinyScale, fake_cells, make_result


class TestCellSpec:
    def test_cell_id_without_group(self):
        cell = fake_cells(1, group_prefix="")[0]
        cell = CellSpec(workload="array", config=cell.config,
                        operations=8)
        assert cell.cell_id == "array/scue"

    def test_cell_id_with_group(self):
        cell = fake_cells(1, group_prefix="hash=80")[0]
        assert cell.cell_id == "array/scue/hash=800"

    def test_rejects_bad_operations(self):
        config = TinyScale().config()
        with pytest.raises(ConfigError, match="operations"):
            CellSpec(workload="array", config=config, operations=0)

    def test_rejects_negative_warmup(self):
        config = TinyScale().config()
        with pytest.raises(ConfigError, match="warmup"):
            CellSpec(workload="array", config=config, operations=8,
                     warmup_accesses=-1)

    def test_dict_round_trip(self):
        cell = fake_cells(1)[0]
        assert CellSpec.from_dict(cell.to_dict()) == cell


class TestCampaignSpec:
    def test_duplicate_cell_ids_rejected(self):
        cells = fake_cells(1) * 2
        with pytest.raises(ConfigError, match="duplicate"):
            CampaignSpec("dup", cells)

    def test_groups_disambiguate(self):
        spec = CampaignSpec("ok", fake_cells(3))
        assert len(spec) == 3
        assert [c.group for c in spec] == ["cell0", "cell1", "cell2"]

    def test_dict_round_trip(self):
        spec = CampaignSpec("rt", fake_cells(2))
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_matrix_builder_shape_and_order(self):
        spec = CampaignSpec.matrix(TinyScale(), ["array", "queue"],
                                   ["baseline", "scue"])
        assert [c.cell_id for c in spec] == [
            "array/baseline", "array/scue",
            "queue/baseline", "queue/scue"]

    def test_matrix_builder_applies_overrides(self):
        spec = CampaignSpec.matrix(TinyScale(), ["array"], ["scue"],
                                   hash_latency=80)
        assert spec.cells[0].config.hash_latency == 80

    def test_hash_sweep_builder(self):
        spec = CampaignSpec.hash_sweep(TinyScale(), ["array"],
                                       latencies=(20, 160))
        assert [c.group for c in spec] == ["hash=20", "hash=160"]
        assert [c.config.hash_latency for c in spec] == [20, 160]
        assert all(c.config.scheme == "scue" for c in spec)


class TestCellKey:
    def test_stable_for_equal_cells(self):
        a, b = fake_cells(1)[0], fake_cells(1)[0]
        key = cell_key(a)
        assert key == cell_key(b)
        assert len(key) == 64
        int(key, 16)    # hex sha256

    def test_sensitive_to_seed_config_and_group(self):
        base = fake_cells(1)[0]
        variants = [
            CellSpec(base.workload, base.config, base.operations,
                     seed=base.seed + 1, group=base.group),
            CellSpec(base.workload, base.config.with_(hash_latency=80),
                     base.operations, seed=base.seed, group=base.group),
            CellSpec(base.workload, base.config, base.operations,
                     seed=base.seed, group="other"),
        ]
        keys = {cell_key(base)} | {cell_key(v) for v in variants}
        assert len(keys) == 4


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(fake_cells(1)[0]) is None
        assert len(cache) == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = fake_cells(1)[0]
        result = make_result(cell)
        path = cache.put(cell, result, wall_time=1.5)
        assert cache.get(cell) == result
        assert cell in cache
        assert len(cache) == 1
        # objects/<key[:2]>/<key>.json layout, and no stray temp files.
        key = cell_key(cell)
        assert path == tmp_path / "objects" / key[:2] / f"{key}.json"
        assert not list(tmp_path.rglob("*.tmp"))

    def test_corrupted_entry_evicted_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = fake_cells(1)[0]
        path = cache.put(cell, make_result(cell))
        path.write_text("{ not json")
        assert cache.get(cell) is None
        assert not path.exists()

    def test_key_mismatch_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = fake_cells(1)[0]
        path = cache.put(cell, make_result(cell))
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None
        assert not path.exists()

    def test_stale_schema_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = fake_cells(1)[0]
        path = cache.put(cell, make_result(cell))
        payload = json.loads(path.read_text())
        payload["result"]["field_from_the_future"] = 1
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_clear_and_evict(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = fake_cells(3)
        for cell in cells:
            cache.put(cell, make_result(cell))
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.evict(cell_key(cells[0])) is False

    def test_torn_entry_evicted_not_fatal(self, tmp_path):
        # A kill -9 can leave a prefix of the JSON behind (the rename
        # is atomic, but a torn page after a crash is not): the reader
        # must treat it exactly like garbage — evict and recompute.
        cache = ResultCache(tmp_path)
        cell = fake_cells(1)[0]
        path = cache.put(cell, make_result(cell))
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        assert cache.get(cell) is None
        assert not path.exists()
        # The eviction is idempotent and the cache stays usable.
        assert cache.evict(cell_key(cell)) is False
        cache.put(cell, make_result(cell))
        assert cache.get(cell) is not None

    def test_custom_decoder_round_trip(self, tmp_path):
        # Non-RunResult payloads (e.g. explorer shards) plug in their
        # own decoder; the default decode must not be baked into get().
        from repro.analysis.explorer.shards import ShardResult

        cache = ResultCache(tmp_path, decode=ShardResult.from_dict)
        cell = fake_cells(1)[0]
        shard = ShardResult(scheme="scue", workload="array", lo=0, hi=4,
                            units=6, cuts=5, unique_states=5,
                            recovered=5, state_hashes=["aa", "bb"])
        cache.put(cell, shard)
        cached = cache.get(cell)
        assert isinstance(cached, ShardResult)
        assert cached.to_dict() == shard.to_dict()
