"""Deterministic serialization of the config/result types the campaign
engine ships across processes and stores in the cache (satellite:
`SystemConfig`/`RunResult` round-trips can't silently drift)."""

import pickle

import pytest

from repro.campaign.cache import canonical_json
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.timing import PCMTiming
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult


def _result(**overrides) -> RunResult:
    base = dict(workload="array", scheme="scue", cycles=1000,
                instructions=500, loads=100, stores=50, persists=25,
                load_stall_cycles=200, persist_stall_cycles=100,
                avg_write_latency=313.5, avg_read_latency=126.0,
                nvm_data_reads=40, nvm_data_writes=30, nvm_meta_reads=20,
                nvm_meta_writes=10, hashes=60,
                stats={"system.loads": 100.0, "wpq.drains": 3.0},
                attribution={"cpu": 600, "write_scheme": 400},
                histograms={"controller.write_latency":
                            {"count": 25, "total": 7838, "min": 100,
                             "max": 500, "mean": 313.5, "p50": 255,
                             "p95": 500, "p99": 500, "buckets": []}})
    base.update(overrides)
    return RunResult(**base)


class TestSystemConfigRoundTrip:
    def test_default_round_trips(self):
        config = SystemConfig()
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_nested_and_bytes_round_trip(self):
        config = SystemConfig(
            scheme="lazy", data_capacity=8 * 1024 * 1024, tree_levels=9,
            tree_arity=16, hash_latency=80,
            pcm=PCMTiming(t_wr=250.0),
            hierarchy=HierarchyConfig(l1_size=16 * 1024, l1_ways=4),
            leaf_write_through=False, eadr=True,
            recovery_tracker="star", mac_key=b"\x00\xffkey",
            cme_key=b"other")
        restored = SystemConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.pcm.write_ns == config.pcm.write_ns
        assert restored.mac_key == b"\x00\xffkey"

    def test_dict_is_json_safe_and_stable(self):
        config = SystemConfig(scheme="scue", hash_latency=160)
        blob1 = canonical_json(config.to_dict())
        blob2 = canonical_json(
            SystemConfig(scheme="scue", hash_latency=160).to_dict())
        assert blob1 == blob2
        assert "mac_key" in blob1 and "\\u" not in blob1

    def test_unknown_field_rejected(self):
        data = SystemConfig().to_dict()
        data["not_a_field"] = 1
        with pytest.raises(ConfigError, match="not_a_field"):
            SystemConfig.from_dict(data)

    def test_validation_still_applies(self):
        data = SystemConfig().to_dict()
        data["hash_latency"] = -1
        with pytest.raises(ConfigError):
            SystemConfig.from_dict(data)

    def test_pickle_round_trip(self):
        config = SystemConfig(scheme="plp", tree_levels=9, eadr=True)
        assert pickle.loads(pickle.dumps(config)) == config


class TestRunResultRoundTrip:
    def test_dict_round_trip(self):
        result = _result()
        assert RunResult.from_dict(result.to_dict()) == result

    def test_floats_survive_json_exactly(self):
        import json
        result = _result(avg_write_latency=313.3333333333333)
        restored = RunResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert restored.avg_write_latency == result.avg_write_latency

    def test_unknown_field_rejected(self):
        data = _result().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            RunResult.from_dict(data)

    def test_pickle_round_trip(self):
        result = _result()
        restored = pickle.loads(pickle.dumps(result))
        assert restored == result
        assert restored.stats == result.stats

    def test_observability_payload_round_trips(self):
        import json
        restored = RunResult.from_dict(
            json.loads(json.dumps(_result().to_dict())))
        assert restored.attribution["write_scheme"] == 400
        assert restored.histograms[
            "controller.write_latency"]["p99"] == 500

    def test_pre_observability_payload_still_loads(self):
        """Cache entries written before attribution/histograms existed
        must deserialize (the fields default to empty dicts)."""
        data = _result().to_dict()
        del data["attribution"]
        del data["histograms"]
        restored = RunResult.from_dict(data)
        assert restored.attribution == {}
        assert restored.histograms == {}


class TestNestedConfigs:
    def test_hierarchy_round_trip(self):
        hierarchy = HierarchyConfig(l1_size=8192, l3_ways=16)
        assert HierarchyConfig.from_dict(hierarchy.to_dict()) == hierarchy

    def test_pcm_round_trip(self):
        pcm = PCMTiming(t_rcd=50.0, t_wtr=8.25)
        assert PCMTiming.from_dict(pcm.to_dict()) == pcm
