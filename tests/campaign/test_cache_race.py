"""Concurrent-writer stress for the result cache.

Several processes hammer one cell key with put+get loops — the service
worker pool and a batch campaign sharing a store do exactly this.  The
invariants under race:

* a reader never observes a torn entry (every get() is the full result
  or ``None`` before first publication — never an exception, never a
  mangled payload);
* the final entry is canonical (identical to what a lone writer would
  have produced);
* no ``.tmp`` staging files or ``.lock`` files are left behind.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.campaign.cache import ResultCache, canonical_json, cell_key

from tests.campaign._fakes import fake_cells, make_result

WRITERS = 4
ROUNDS = 25


def _hammer(root: str, barrier, failures) -> None:
    """One writer process: put+get the same key in a tight loop."""
    cache = ResultCache(root)
    cell = fake_cells(1)[0]
    result = make_result(cell)
    barrier.wait()                      # maximize overlap
    for _ in range(ROUNDS):
        try:
            cache.put(cell, result, wall_time=1.0)
            seen = cache.get(cell)
            # get() may race an eviction only for corrupt entries —
            # with correct writers the entry must always be whole.
            if seen is None or seen.cycles != result.cycles:
                failures.put(f"pid {os.getpid()}: torn or missing read")
        except Exception as exc:      # noqa: BLE001 - report, don't hang
            failures.put(f"pid {os.getpid()}: {exc!r}")


def test_four_writers_one_key_no_torn_reads(tmp_path):
    root = str(tmp_path / "cache")
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(WRITERS)
    failures = ctx.Queue()
    procs = [ctx.Process(target=_hammer, args=(root, barrier, failures))
             for _ in range(WRITERS)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(120)
        assert proc.exitcode == 0

    problems = []
    while not failures.empty():
        problems.append(failures.get())
    assert problems == []

    # Exactly one canonical entry; no staging or lock litter.
    cache = ResultCache(root)
    cell = fake_cells(1)[0]
    key = cell_key(cell)
    path = cache.path_for(key)
    assert path.is_file()
    payload = json.loads(path.read_text())
    assert payload["key"] == key
    assert payload["result"] == make_result(cell).to_dict()
    # The entry is byte-canonical: a lone writer produces these bytes.
    solo = ResultCache(str(tmp_path / "solo"))
    solo_path = solo.put(cell, make_result(cell), wall_time=1.0)
    assert path.read_bytes() == solo_path.read_bytes()

    litter = [p for p in (tmp_path / "cache").rglob("*")
              if p.suffix in (".tmp", ".lock")
              or ".tmp" in p.name]
    assert litter == []


def test_loser_of_lock_race_returns_published_path(tmp_path):
    """A put that finds the lock held but the entry published returns
    immediately with the entry's path (no rewrite, no error)."""
    cache = ResultCache(tmp_path / "cache")
    cell = fake_cells(1)[0]
    first = cache.put(cell, make_result(cell), wall_time=1.0)
    before = first.read_bytes()
    # Simulate a concurrent holder: lock exists, entry already visible.
    lock = first.with_suffix(".lock")
    lock.touch()
    second = cache.put(cell, make_result(cell), wall_time=9.0)
    assert second == first
    assert first.read_bytes() == before     # not rewritten
    lock.unlink()


def test_stale_lock_never_blocks_progress(tmp_path):
    """A writer that died holding the lock (lock file present, entry
    absent) does not wedge the key: the next put falls through to the
    atomic-replace path and publishes."""
    cache = ResultCache(tmp_path / "cache")
    cell = fake_cells(1)[0]
    path = cache.path_for(cell_key(cell))
    path.parent.mkdir(parents=True)
    path.with_suffix(".lock").touch()       # orphaned lock, no entry
    published = cache.put(cell, make_result(cell), wall_time=1.0)
    assert published == path
    assert cache.get(cell) is not None


def test_entry_bytes_are_canonical_json(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cell = fake_cells(1)[0]
    path = cache.put(cell, make_result(cell), wall_time=0.5)
    raw = path.read_text()
    payload = json.loads(raw)
    assert raw == canonical_json(payload) + "\n" or \
        raw == canonical_json(payload)
