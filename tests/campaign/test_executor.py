"""The campaign executor: serial path, worker pool, failure modes,
resume (ISSUE satellite: raising worker / hang / corrupted cache /
kill-and-resume must all be survivable)."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    RunManifest,
    cell_key,
    run_campaign,
)
from repro.campaign.executor import execute_cell
from repro.errors import CampaignError

from tests.campaign._fakes import (
    TinyScale,
    dying_once_cell,
    fake_spec,
    invocations,
    make_result,
    ok_cell,
    poison_cell,
    raising_cell,
    second_try_cell,
    sleeping_cell,
    tracking_cell,
)


@pytest.fixture()
def scratch(tmp_path, monkeypatch):
    """REPRO_TEST_DIR for the marker-file fakes (inherited by workers)."""
    monkeypatch.setenv("REPRO_TEST_DIR", str(tmp_path))
    return tmp_path


class TestSerial:
    def test_all_cells_complete_in_spec_order(self, tmp_path):
        spec = fake_spec(3)
        manifest_path = tmp_path / "manifest.json"
        outcome = run_campaign(spec, cell_fn=ok_cell,
                               manifest_path=manifest_path)
        assert outcome.ok
        assert [cell.group for cell, _ in outcome.iter_results()] == \
            ["cell0", "cell1", "cell2"]
        saved = RunManifest.load(manifest_path)
        assert saved.finished and saved.counts()["done"] == 3
        assert saved.wall_time >= 0.0

    def test_failure_recorded_and_campaign_continues(self, scratch):
        spec = CampaignSpec("mixed", fake_spec(1).cells
                            + fake_spec(1, group_prefix="poison").cells)
        outcome = run_campaign(spec, cell_fn=poison_cell)
        assert not outcome.ok
        counts = outcome.manifest.counts()
        assert counts["done"] == 1 and counts["failed"] == 1
        record = outcome.manifest.failures()[0]
        assert "poisoned cell" in record.error
        with pytest.raises(CampaignError, match="poison"):
            outcome.raise_on_failure()

    def test_fail_fast_reraises_original_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_campaign(fake_spec(2), cell_fn=raising_cell,
                         fail_fast=True)

    def test_serial_retry_then_success(self, scratch):
        outcome = run_campaign(fake_spec(1), cell_fn=second_try_cell,
                               retries=2, backoff=0.0)
        assert outcome.ok
        record = outcome.manifest.cells[0]
        assert record.status == "done" and record.retries == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(CampaignError, match="jobs"):
            run_campaign(fake_spec(1), jobs=0, cell_fn=ok_cell)


class TestCache:
    def test_second_run_is_all_cache_hits(self, tmp_path, scratch):
        spec = fake_spec(3)
        cache_dir = str(tmp_path / "cache")   # str: coercion path
        first = run_campaign(spec, cache=cache_dir, cell_fn=tracking_cell)
        second = run_campaign(spec, cache=cache_dir, cell_fn=tracking_cell)
        assert first.ok and second.ok
        assert second.manifest.counts()["cached"] == 3
        assert dict(second.results) == dict(first.results)
        assert all(invocations(cell) == 1 for cell in spec)

    def test_cache_artifact_recorded_in_manifest(self, tmp_path):
        spec = fake_spec(1)
        outcome = run_campaign(spec, cache=tmp_path / "cache",
                               cell_fn=ok_cell)
        artifact = outcome.manifest.cells[0].artifact
        assert artifact.startswith("objects/")
        assert (tmp_path / "cache" / artifact).is_file()

    def test_corrupted_entry_rerun_and_repaired(self, tmp_path):
        spec = fake_spec(2)
        cache = ResultCache(tmp_path / "cache")
        run_campaign(spec, cache=cache, cell_fn=ok_cell)
        victim = cache.path_for(cell_key(spec.cells[0]))
        victim.write_text("garbage, not JSON")
        outcome = run_campaign(spec, cache=cache, cell_fn=ok_cell)
        assert outcome.ok
        statuses = [r.status for r in outcome.manifest.cells]
        assert statuses == ["done", "cached"]     # only the victim re-ran
        payload = json.loads(victim.read_text())  # repaired in place
        assert payload["key"] == cell_key(spec.cells[0])

    def test_torn_entry_resume_recomputes_exactly_once(self, tmp_path,
                                                       scratch):
        # Crash-mid-write resume: a truncated entry costs one recompute
        # for its cell only; a further resume is then all cache hits.
        spec = fake_spec(3)
        cache = ResultCache(tmp_path / "cache")
        run_campaign(spec, cache=cache, cell_fn=tracking_cell)
        victim = cache.path_for(cell_key(spec.cells[1]))
        text = victim.read_text()
        victim.write_text(text[:len(text) // 2])
        resumed = run_campaign(spec, cache=cache, cell_fn=tracking_cell)
        assert resumed.ok
        assert [r.status for r in resumed.manifest.cells] == \
            ["cached", "done", "cached"]
        third = run_campaign(spec, cache=cache, cell_fn=tracking_cell)
        assert third.manifest.counts()["cached"] == 3
        assert [invocations(cell) for cell in spec] == [1, 2, 1]


class TestParallel:
    def test_matches_serial_with_real_cells(self):
        spec = CampaignSpec.matrix(TinyScale(), ["array", "queue"],
                                   ["baseline", "scue"])
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        assert serial.ok and parallel.ok
        assert dict(parallel.results) == dict(serial.results)

    def test_raising_worker_fails_after_retries(self, scratch):
        spec = fake_spec(2)
        outcome = run_campaign(spec, jobs=2, retries=1, backoff=0.0,
                               cell_fn=raising_cell)
        assert not outcome.ok
        for record in outcome.manifest.cells:
            assert record.status == "failed"
            assert record.retries == 1
            assert "RuntimeError: boom" in record.error

    def test_mixed_failure_does_not_block_others(self, scratch):
        spec = CampaignSpec("mixed", fake_spec(2).cells
                            + fake_spec(1, group_prefix="poison").cells)
        outcome = run_campaign(spec, jobs=2, retries=0,
                               cell_fn=poison_cell)
        counts = outcome.manifest.counts()
        assert counts["done"] == 2 and counts["failed"] == 1

    def test_hung_worker_killed_at_timeout(self):
        spec = fake_spec(2)
        started = time.monotonic()
        outcome = run_campaign(spec, jobs=2, timeout=1.0, retries=0,
                               cell_fn=sleeping_cell)
        elapsed = time.monotonic() - started
        assert elapsed < 20.0       # nowhere near the 60s sleep
        assert not outcome.ok
        for record in outcome.manifest.cells:
            assert record.status == "failed"
            assert "timed out" in record.error

    def test_transient_worker_death_retried(self, scratch):
        spec = fake_spec(2)
        outcome = run_campaign(spec, jobs=2, retries=2, backoff=0.0,
                               cell_fn=dying_once_cell)
        assert outcome.ok
        for record in outcome.manifest.cells:
            assert record.status == "done"
            assert record.retries == 1

    def test_fail_fast_raises_campaign_error(self):
        with pytest.raises(CampaignError, match="failed after"):
            run_campaign(fake_spec(2), jobs=2, retries=0, fail_fast=True,
                         cell_fn=raising_cell)


class TestResume:
    def test_resume_completes_only_missing_cells(self, tmp_path, scratch):
        spec = CampaignSpec("resume", fake_spec(2).cells
                            + fake_spec(2, group_prefix="poison").cells)
        cache = tmp_path / "cache"
        manifest_path = tmp_path / "manifest.json"
        first = run_campaign(spec, cache=cache,
                             manifest_path=manifest_path,
                             cell_fn=poison_cell)
        assert not first.ok
        assert first.manifest.counts() == pytest.approx(
            {"pending": 0, "running": 0, "cached": 0, "done": 2,
             "failed": 2})
        (scratch / "antidote").touch()
        second = run_campaign(spec, cache=cache,
                              manifest_path=manifest_path,
                              cell_fn=poison_cell)
        assert second.ok
        counts = second.manifest.counts()
        assert counts["cached"] == 2 and counts["done"] == 2
        # The healthy cells ran exactly once, across both campaigns.
        for cell in spec:
            assert invocations(cell) == (2 if "poison" in cell.group
                                         else 1)
        saved = RunManifest.load(manifest_path)
        assert saved.finished and saved.complete

    def test_kill_minus_nine_then_resume(self, tmp_path, scratch):
        """SIGKILL a live campaign; a resumed run computes only the cells
        the dead one never finished."""
        cache = tmp_path / "cache"
        manifest_path = tmp_path / "manifest.json"
        repo_root = Path(__file__).resolve().parents[2]
        script = textwrap.dedent(f"""
            import sys
            sys.path[:0] = [{str(repo_root / 'src')!r}, {str(repo_root)!r}]
            from repro.campaign import run_campaign
            from tests.campaign._fakes import fake_spec, slow_after_first
            run_campaign(fake_spec(3, group_prefix="k"),
                         cache={str(cache)!r},
                         manifest_path={str(manifest_path)!r},
                         cell_fn=slow_after_first)
        """)
        proc = subprocess.Popen([sys.executable, "-c", script],
                                env=dict(os.environ))
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(ResultCache(cache)) >= 1:   # cell k0 is durable
                    break
                if proc.poll() is not None:
                    pytest.fail("campaign exited before it could be "
                                f"killed (rc={proc.returncode})")
                time.sleep(0.05)
            else:
                pytest.fail("first cell never reached the cache")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        assert len(ResultCache(cache)) == 1
        interrupted = RunManifest.load(manifest_path)
        assert not interrupted.finished

        spec = fake_spec(3, group_prefix="k")
        resumed = run_campaign(spec, cache=cache,
                               manifest_path=manifest_path,
                               cell_fn=tracking_cell)
        assert resumed.ok
        counts = resumed.manifest.counts()
        assert counts["cached"] == 1 and counts["done"] == 2
        assert [invocations(cell) for cell in spec] == [0, 1, 1]


class TestExecuteCell:
    def test_runs_a_real_cell(self):
        spec = CampaignSpec.matrix(TinyScale(), ["array"], ["scue"])
        result = execute_cell(spec.cells[0])
        assert result.workload == "array"
        assert result.scheme == "scue"
        assert result.cycles > 0


class TestCampaignResult:
    def test_iter_results_spec_order_complete_only(self):
        spec = fake_spec(3)
        outcome = run_campaign(spec, cell_fn=ok_cell)
        outcome.results.pop(1)
        assert [c.group for c, _ in outcome.iter_results()] == \
            ["cell0", "cell2"]

    def test_make_result_matches_real_schema(self):
        from repro.sim.results import RunResult
        fake = make_result(fake_spec(1).cells[0])
        assert RunResult.from_dict(fake.to_dict()) == fake
