"""Module-level test doubles for the campaign executor.

Worker processes call the cell function directly, so the fakes must live
in an importable module (not a test body).  Functions that need to talk
back to the test do it through the filesystem: ``REPRO_TEST_DIR`` names
a scratch directory (the test sets it; forked workers inherit it) and
each fake leaves marker files keyed by cell id.
"""

from __future__ import annotations

import os
import time

from repro.campaign.spec import CampaignSpec, CellSpec
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult


class TinyScale:
    """A ``ScaleLike`` small enough for real simulated cells in tests."""

    warmup_accesses = 0

    def __init__(self, data_capacity: int = 1024 * 1024,
                 operations: int = 30) -> None:
        self.data_capacity = data_capacity
        self.operations = operations

    def config(self, scheme: str = "scue", **overrides) -> SystemConfig:
        base = dict(scheme=scheme, data_capacity=self.data_capacity,
                    metadata_cache_size=4096)
        base.update(overrides)
        return SystemConfig(**base)

    def operations_for(self, workload: str) -> int:
        return self.operations


def make_result(cell: CellSpec | None = None, **overrides) -> RunResult:
    """A structurally valid RunResult, tagged with the cell's identity."""
    base = dict(workload=cell.workload if cell else "array",
                scheme=cell.config.scheme if cell else "scue",
                cycles=1000, instructions=500, loads=100, stores=50,
                persists=25, load_stall_cycles=200,
                persist_stall_cycles=100, avg_write_latency=313.0,
                avg_read_latency=126.0, nvm_data_reads=40,
                nvm_data_writes=30, nvm_meta_reads=20, nvm_meta_writes=10,
                hashes=60,
                stats={"cell.group_len": float(len(cell.group))
                       if cell else 0.0})
    base.update(overrides)
    return RunResult(**base)


def fake_cells(n: int, group_prefix: str = "cell") -> tuple[CellSpec, ...]:
    """``n`` distinct cells that fake cell functions can run instantly."""
    scale = TinyScale()
    return tuple(
        CellSpec(workload="array", config=scale.config(),
                 operations=8, seed=1, group=f"{group_prefix}{i}")
        for i in range(n))


def fake_spec(n: int, name: str = "fake",
              group_prefix: str = "cell") -> CampaignSpec:
    return CampaignSpec(name, fake_cells(n, group_prefix))


# ----------------------------------------------------------------------
# Cell functions
# ----------------------------------------------------------------------
def marker_path(cell: CellSpec, suffix: str) -> str:
    root = os.environ["REPRO_TEST_DIR"]
    return os.path.join(root, cell.cell_id.replace("/", "_") + suffix)


def ok_cell(cell: CellSpec) -> RunResult:
    return make_result(cell)


def tracking_cell(cell: CellSpec) -> RunResult:
    """Succeeds, appending one line per invocation to a marker file."""
    with open(marker_path(cell, ".ran"), "a") as handle:
        handle.write("x\n")
    return make_result(cell)


def invocations(cell: CellSpec) -> int:
    try:
        with open(marker_path(cell, ".ran")) as handle:
            return len(handle.readlines())
    except FileNotFoundError:
        return 0


def raising_cell(cell: CellSpec) -> RunResult:
    raise RuntimeError(f"boom in {cell.cell_id}")


def sleeping_cell(cell: CellSpec) -> RunResult:
    time.sleep(60.0)
    return make_result(cell)


def dying_once_cell(cell: CellSpec) -> RunResult:
    """Hard process death (no exception, no message) on the first
    attempt; clean success afterwards — a transient worker death."""
    marker = marker_path(cell, ".died")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(3)
    return make_result(cell)


def second_try_cell(cell: CellSpec) -> RunResult:
    """Raises on the first attempt, succeeds on the second."""
    marker = marker_path(cell, ".failed")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient failure")
    return make_result(cell)


def poison_cell(cell: CellSpec) -> RunResult:
    """Tracks invocations; ``poison*`` cells fail until the test drops an
    ``antidote`` file into ``REPRO_TEST_DIR``."""
    with open(marker_path(cell, ".ran"), "a") as handle:
        handle.write("x\n")
    antidote = os.path.join(os.environ["REPRO_TEST_DIR"], "antidote")
    if cell.group.startswith("poison") and not os.path.exists(antidote):
        raise RuntimeError(f"poisoned cell {cell.cell_id}")
    return make_result(cell)


def slow_after_first(cell: CellSpec) -> RunResult:
    """Cell 0 completes instantly; every later cell sleeps long enough
    for the kill-resume test to SIGKILL the campaign mid-flight."""
    if not cell.group.endswith("0"):
        time.sleep(30.0)
    return make_result(cell)
