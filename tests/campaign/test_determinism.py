"""Seed plumb-through (ISSUE satellite): identical cells must produce
identical results whichever process — or campaign invocation — runs
them, because the cache and the serial/parallel equivalence both assume
a cell is a pure function of its spec."""

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.executor import execute_cell
from repro.sim.config import SystemConfig
from repro.workloads import ALL_WORKLOADS, SPEC_WORKLOADS, make_workload

from tests.campaign._fakes import TinyScale

CAPACITY = 1024 * 1024


def _trace(name: str, operations: int, seed: int):
    return list(make_workload(name, CAPACITY, operations, seed).trace())


class TestWorkloadDeterminism:
    def test_every_generator_is_seed_deterministic(self):
        for name in ALL_WORKLOADS:
            assert _trace(name, 20, seed=7) == _trace(name, 20, seed=7), \
                f"{name} is not seed-deterministic"

    def test_seed_changes_the_trace(self):
        name = SPEC_WORKLOADS[0]
        assert _trace(name, 50, seed=1) != _trace(name, 50, seed=2)


class TestCellDeterminism:
    def test_identical_cells_identical_results(self):
        spec = CampaignSpec.matrix(TinyScale(operations=40), ["array"],
                                   ["scue"])
        first = execute_cell(spec.cells[0])
        second = execute_cell(spec.cells[0])
        assert first == second
        assert first.stats == second.stats

    def test_seed_flows_into_the_result(self):
        scale = TinyScale(operations=40)
        name = SPEC_WORKLOADS[0]
        spec_a = CampaignSpec.matrix(scale, [name], ["scue"], seed=1)
        spec_b = CampaignSpec.matrix(scale, [name], ["scue"], seed=2)
        assert execute_cell(spec_a.cells[0]) != \
            execute_cell(spec_b.cells[0])


class TestPathEquivalence:
    def test_serial_parallel_and_cached_agree(self, tmp_path):
        spec = CampaignSpec.matrix(TinyScale(), ["queue"],
                                   ["baseline", "scue"])
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2,
                                cache=tmp_path / "cache")
        cached = run_campaign(spec, jobs=1, cache=tmp_path / "cache")
        assert dict(serial.results) == dict(parallel.results)
        assert dict(cached.results) == dict(serial.results)
        assert cached.manifest.counts()["cached"] == len(spec)

    def test_config_construction_is_deterministic(self):
        scale = TinyScale()
        assert scale.config("scue") == scale.config("scue")
        assert SystemConfig() == SystemConfig()
