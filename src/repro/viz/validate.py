"""Offline structural validator for report-bundle Vega-Lite specs.

``python -m repro.viz.validate <spec.vl.json | bundle-dir> ...`` checks
— without network access or a Vega runtime — that every spec:

* declares the Vega-Lite ``$schema`` dialect,
* has a ``data`` source (``url`` or inline ``values``),
* has a ``mark`` + ``encoding`` (directly or per ``layer`` entry),
* uses well-formed encoding channels (``field`` + valid ``type``, or a
  literal ``value``/``datum``),

and — the spec/data contract — that every ``field`` referenced by an
encoding exists as a column of the sidecar CSV the spec's ``data.url``
points at.  Exit status: 0 all OK, 1 problems found, 2 usage error —
the same contract as :mod:`repro.obs.validate`, so CI treats them
identically.
"""

from __future__ import annotations

import csv
import io
import json
import sys
from pathlib import Path
from typing import Any

VALID_TYPES = {"nominal", "ordinal", "quantitative", "temporal",
               "geojson"}
#: Channels that reference a second field for ranged marks.
SECONDARY_CHANNELS = {"x2", "y2", "theta2", "radius2"}


def _check_channel(channel: str, enc: Any, where: str,
                   problems: list[str], fields: list[str]) -> None:
    if not isinstance(enc, dict):
        problems.append(f"{where}: encoding channel {channel!r} is not "
                        "an object")
        return
    field = enc.get("field")
    if field is not None:
        if not isinstance(field, str) or not field:
            problems.append(f"{where}: channel {channel!r} has a "
                            "non-string field")
        else:
            fields.append(field)
        if channel not in SECONDARY_CHANNELS:
            enc_type = enc.get("type")
            if enc_type not in VALID_TYPES:
                problems.append(
                    f"{where}: channel {channel!r} field {field!r} has "
                    f"invalid type {enc_type!r}")
        return
    if not any(key in enc for key in ("value", "datum", "aggregate")):
        problems.append(f"{where}: channel {channel!r} has neither "
                        "field nor value/datum")


def _check_view(view: Any, where: str, problems: list[str],
                fields: list[str]) -> None:
    if not isinstance(view, dict):
        problems.append(f"{where}: layer entry is not an object")
        return
    if "mark" not in view:
        problems.append(f"{where}: missing mark")
    encoding = view.get("encoding")
    if not isinstance(encoding, dict) or not encoding:
        problems.append(f"{where}: missing or empty encoding")
        return
    for channel, enc in sorted(encoding.items()):
        _check_channel(channel, enc, where, problems, fields)


def validate_spec(spec: Any) -> tuple[list[str], list[str]]:
    """Structural problems plus every encoding field referenced."""
    problems: list[str] = []
    fields: list[str] = []
    if not isinstance(spec, dict):
        return (["spec is not a JSON object"], fields)
    schema = spec.get("$schema", "")
    if "vega-lite" not in str(schema):
        problems.append(f"$schema {schema!r} is not a vega-lite dialect")
    data = spec.get("data")
    if not isinstance(data, dict) \
            or not any(key in data for key in ("url", "values")):
        problems.append("data must be an object with 'url' or 'values'")
    layers = spec.get("layer")
    if layers is not None:
        if not isinstance(layers, list) or not layers:
            problems.append("layer must be a non-empty array")
        else:
            for index, view in enumerate(layers):
                _check_view(view, f"layer[{index}]", problems, fields)
    else:
        _check_view(spec, "top-level", problems, fields)
    return (problems, fields)


def _csv_columns(path: Path) -> list[str] | None:
    try:
        text = path.read_text()
    except OSError:
        return None
    reader = csv.reader(io.StringIO(text))
    return next(reader, [])


def validate_file(path: str | Path) -> list[str]:
    """Validate one ``.vl.json`` file, including the csv cross-check
    when its ``data.url`` names a sibling file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text())
    except OSError as exc:
        return [f"cannot read: {exc}"]
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]
    problems, fields = validate_spec(spec)
    url = spec.get("data", {}).get("url") \
        if isinstance(spec.get("data"), dict) else None
    if isinstance(url, str) and "://" not in url:
        data_path = path.parent / url
        columns = _csv_columns(data_path)
        if columns is None:
            problems.append(f"data url {url!r}: file not found next to "
                            "the spec")
        else:
            for field in sorted(set(fields)):
                if field not in columns:
                    problems.append(
                        f"encoding field {field!r} missing from "
                        f"{url!r} (columns: {', '.join(columns)})")
    return problems


def _collect(args: list[str]) -> list[Path]:
    paths: list[Path] = []
    for arg in args:
        path = Path(arg)
        if path.is_dir():
            paths.extend(sorted(path.glob("*.vl.json")))
        else:
            paths.append(path)
    return paths


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.viz.validate "
              "<spec.vl.json | bundle-dir> [...]", file=sys.stderr)
        return 2
    paths = _collect(argv)
    if not paths:
        print("no .vl.json specs found", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        problems = validate_file(path)
        if problems:
            failures += 1
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
