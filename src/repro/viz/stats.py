"""Seeded resampling statistics for campaign ratio tables.

Two procedures back every stats table in a report bundle:

* **bootstrap confidence intervals** — the per-workload ratio vector is
  resampled with replacement ``resamples`` times and the statistic
  (geometric mean by default, matching the figures) recomputed on each
  resample; the interval is the percentile band of that empirical
  distribution.  With the handful of workloads the paper evaluates the
  interval is wide and honest — exactly the point: it shows how much of
  a scheme gap survives workload choice.
* **paired sign-flip permutation tests** — two schemes measured on the
  *same* workloads (identical traces by construction: every cell of a
  campaign shares the workload seed) give paired log-ratios; under the
  null that neither scheme is systematically dearer, each pair's
  difference is symmetric around zero, so flipping signs uniformly
  generates the exact null distribution of the mean difference.  When
  ``2**n`` sign patterns fit the resample budget the enumeration is
  exact (and trivially deterministic); otherwise patterns are sampled
  with the seeded RNG.

Everything is driven by ``random.Random(seed)`` — never the global RNG
and never the clock — because the bundle these tables land in must be
byte-identical across runs (reprolint RPL011 enforces this module-wide).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.bench.harness import geomean

#: Default resample budget; small enough to keep `repro-sim report`
#: interactive, large enough for stable two-decimal intervals.
DEFAULT_RESAMPLES = 2000
DEFAULT_SEED = 42


def bootstrap_ci(values: Sequence[float],
                 statistic: Callable[[Sequence[float]], float] = geomean,
                 *, resamples: int = DEFAULT_RESAMPLES,
                 alpha: float = 0.05,
                 seed: int = DEFAULT_SEED) -> tuple[float, float]:
    """Percentile bootstrap ``(lo, hi)`` interval for ``statistic``."""
    values = list(values)
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        point = statistic(values)
        return (point, point)
    rng = random.Random(seed)
    n = len(values)
    stats = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples))
    lo_rank = int((alpha / 2) * (resamples - 1))
    hi_rank = int((1 - alpha / 2) * (resamples - 1))
    return (stats[lo_rank], stats[hi_rank])


def paired_permutation_test(xs: Sequence[float], ys: Sequence[float],
                            *, resamples: int = DEFAULT_RESAMPLES,
                            seed: int = DEFAULT_SEED) -> float:
    """Two-sided sign-flip p-value for paired samples ``xs`` vs ``ys``.

    The statistic is the mean pairwise difference.  Exact enumeration of
    all ``2**n`` sign patterns when that fits ``resamples``; seeded
    Monte-Carlo sampling (with the +1 add-one correction) otherwise.
    Returns 1.0 for degenerate inputs (no pairs, or all-zero diffs).
    """
    if len(xs) != len(ys):
        raise ValueError("paired test needs equal-length samples")
    diffs = [x - y for x, y in zip(xs, ys)]
    n = len(diffs)
    if n == 0 or all(d == 0 for d in diffs):
        return 1.0
    observed = abs(sum(diffs) / n)

    if 2 ** n <= resamples:
        extreme = total = 0
        for pattern in range(2 ** n):
            stat = sum(d if pattern & (1 << i) else -d
                       for i, d in enumerate(diffs)) / n
            total += 1
            if abs(stat) >= observed - 1e-15:
                extreme += 1
        return extreme / total

    rng = random.Random(seed)
    extreme = 0
    for _ in range(resamples):
        stat = sum(d if rng.random() < 0.5 else -d for d in diffs) / n
        if abs(stat) >= observed - 1e-15:
            extreme += 1
    return (extreme + 1) / (resamples + 1)


@dataclass(frozen=True)
class SchemeStats:
    """One scheme's row in a ratio-table stats summary."""

    scheme: str
    n: int
    geomean: float
    ci_low: float
    ci_high: float
    #: p-value of the paired permutation test against the reference
    #: scheme (``None`` for the reference itself).
    p_vs_reference: float | None


def ratio_table_stats(table: Mapping[str, Mapping[str, float]],
                      schemes: Sequence[str], reference: str,
                      *, resamples: int = DEFAULT_RESAMPLES,
                      seed: int = DEFAULT_SEED) -> list[SchemeStats]:
    """Stats rows for a ``{workload: {scheme: ratio}}`` table.

    Workloads are processed in sorted order (byte-stable output); the
    synthetic ``geomean`` row is excluded from the samples.  Each
    scheme's per-workload seed is derived from the base seed and its
    position, so adding a scheme never perturbs another's interval.
    """
    workloads = sorted(w for w in table if w != "geomean")
    ref_values = [table[w][reference] for w in workloads]
    rows: list[SchemeStats] = []
    for index, scheme in enumerate(schemes):
        values = [table[w][scheme] for w in workloads]
        lo, hi = bootstrap_ci(values, resamples=resamples,
                              seed=seed + index)
        p: float | None = None
        if scheme != reference:
            p = paired_permutation_test(values, ref_values,
                                        resamples=resamples,
                                        seed=seed + index)
        rows.append(SchemeStats(scheme, len(values), geomean(values),
                                lo, hi, p))
    return rows


def format_stats_table(title: str, rows: Sequence[SchemeStats],
                       reference: str, *, resamples: int,
                       seed: int) -> str:
    """Text rendering of :func:`ratio_table_stats` output."""
    from repro.bench.reporting import format_simple_table

    body = [[row.scheme, row.n, f"{row.geomean:.3f}",
             f"{row.ci_low:.3f}", f"{row.ci_high:.3f}",
             "-" if row.p_vs_reference is None
             else f"{row.p_vs_reference:.3f}"]
            for row in rows]
    table = format_simple_table(
        title,
        ["scheme", "n", "geomean", "ci_low", "ci_high",
         f"p_vs_{reference}"],
        body)
    footer = (f"bootstrap 95% CI ({resamples} resamples, seed {seed}); "
              f"paired sign-flip permutation test vs {reference}")
    return f"{table}\n{footer}\n"
