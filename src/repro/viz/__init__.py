"""Deterministic figure, stats and dashboard pipeline (docs/figures.md).

``repro.viz`` turns campaign results into a version-controllable report
bundle: Vega-Lite ``.vl.json`` specs with sidecar ``.csv`` data
(:mod:`repro.viz.spec`, :mod:`repro.viz.figures`), seeded bootstrap CIs
and paired permutation tests rendered as text tables
(:mod:`repro.viz.stats`), the bundle writer with its ``STATUS.md``
manifest (:mod:`repro.viz.bundle`), and an offline structural validator
(``python -m repro.viz.validate``).  Every byte of a bundle is a pure
function of the campaign cache and the report seed — no timestamps, no
global RNG (reprolint RPL011 enforces this package-wide) — so two runs
over the same campaign directory produce sha256-identical bundles.

``repro-sim report <campaign-dir>`` is the CLI front end.
"""

from repro.viz.bundle import (
    BundleManifest,
    CampaignData,
    build_artifacts,
    load_campaign,
    write_bundle,
)
from repro.viz.spec import (
    FigureArtifact,
    content_hash,
    csv_text,
    spec_text,
)
from repro.viz.stats import (
    bootstrap_ci,
    paired_permutation_test,
    ratio_table_stats,
)

# NOTE: repro.viz.validate is deliberately not imported here so that
# ``python -m repro.viz.validate`` runs without the found-in-sys.modules
# RuntimeWarning (same pattern as repro.obs.validate).

__all__ = [
    "BundleManifest",
    "CampaignData",
    "FigureArtifact",
    "bootstrap_ci",
    "build_artifacts",
    "content_hash",
    "csv_text",
    "load_campaign",
    "paired_permutation_test",
    "ratio_table_stats",
    "spec_text",
    "write_bundle",
]
