"""Walk a campaign directory, build every applicable figure, write the
report bundle.

The bundle is a directory of ``<figure>.vl.json`` + ``<figure>.csv``
pairs, ``<figure>.stats.txt`` text tables, and a ``STATUS.md`` manifest
listing every artifact with its inputs and content hash — the
QueryTorque-style one-glance answer to "what is in this report and did
it change".  Everything is derived from the campaign's content-addressed
result cache (``<dir>/cache/objects``), so a report can be regenerated
from any campaign directory — batch (``repro-sim campaign run``),
service (``repro-sim serve``) or figure-driver runs share that layout —
and regenerating twice produces byte-identical files.

Cells are classified by their grid coordinate: ``group == ""`` cells
form the Fig 9/10/§V-E workload x scheme matrix, ``group == "hash=N"``
cells form the Fig 11/12 sensitivity sweep.  Direct-run figures (Fig 13
recovery, Fig 5 crash window) and the perf trajectory are injected by
the caller — they are not campaign cells.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.bench.figures import (
    PAPER_FIG9,
    PAPER_FIG10,
    PAPER_FIG11_AVG_160,
    PAPER_FIG12_AVG_160,
    PAPER_SEC5E,
    CrashWindowResult,
    HashSweepFigure,
    RecoveryFigure,
)
from repro.bench.harness import MatrixResult
from repro.bench.overheads import sec5f_space_overheads
from repro.bench.reporting import format_markdown_table
from repro.campaign.spec import CellSpec
from repro.errors import ConfigError
from repro.sim.results import RunResult
from repro.util.atomic import atomic_write_text
from repro.viz import figures as fig
from repro.viz.spec import FigureArtifact, content_hash
from repro.viz.stats import DEFAULT_RESAMPLES, DEFAULT_SEED

#: STATUS.md shows this many hex chars of each artifact's sha256.
HASH_WIDTH = 16


@dataclass
class CampaignData:
    """Cached campaign cells, classified by grid coordinate."""

    root: Path
    matrix: MatrixResult = field(default_factory=MatrixResult)
    #: ``{workload: {hash_latency: result}}`` from ``hash=N`` cells.
    sweep: dict[str, dict[int, RunResult]] = field(default_factory=dict)
    cells: int = 0
    skipped: int = 0

    def has_matrix(self) -> bool:
        return bool(self.matrix.results) \
            and "baseline" in self.matrix.schemes() \
            and len(self.matrix.schemes()) >= 2

    def has_sec5e(self) -> bool:
        return bool(self.matrix.results) \
            and "lazy" in self.matrix.schemes() \
            and len(self.matrix.schemes()) >= 2

    def has_sweep(self) -> bool:
        return any(len(by_latency) >= 2
                   for by_latency in self.sweep.values())


def _cache_objects_dir(campaign_dir: Path) -> Path:
    for candidate in (campaign_dir / "cache", campaign_dir):
        if (candidate / "objects").is_dir():
            return candidate / "objects"
    raise ConfigError(
        f"{campaign_dir}: no cache/objects directory — run a campaign "
        "into this directory first (repro-sim campaign run --dir ...)")


def load_campaign(campaign_dir: str | Path) -> CampaignData:
    """Read every cached cell under ``campaign_dir`` and classify it.

    Entries that fail to parse (torn writes, schema drift from another
    repro version) are counted in ``skipped`` rather than failing the
    report — a damaged cache degrades to a smaller bundle.  Results are
    inserted in sorted (workload, scheme/latency) order so downstream
    row emission is byte-stable regardless of key-hash file order.
    """
    root = Path(campaign_dir)
    objects = _cache_objects_dir(root)
    matrix_cells: list[tuple[str, str, RunResult]] = []
    sweep_cells: list[tuple[str, int, RunResult]] = []
    data = CampaignData(root)
    for path in sorted(objects.glob("*/*.json")):
        try:
            payload = json.loads(path.read_text())
            cell = CellSpec.from_dict(payload["cell"])
            result = RunResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            data.skipped += 1
            continue
        data.cells += 1
        if cell.group.startswith("hash="):
            sweep_cells.append(
                (cell.workload, cell.config.hash_latency, result))
        elif not cell.group:
            matrix_cells.append(
                (cell.workload, cell.config.scheme, result))
        else:
            data.skipped += 1
    for workload, scheme, result in sorted(
            matrix_cells, key=lambda item: item[:2]):
        data.matrix.add(workload, scheme, result)
    for workload, latency, result in sorted(
            sweep_cells, key=lambda item: item[:2]):
        data.sweep.setdefault(workload, {})[latency] = result
    return data


def sweep_figure(data: CampaignData, metric: str) -> HashSweepFigure:
    """Rebuild the Fig 11/12 ratio table from cached sweep cells."""
    latencies = sorted({latency for by_latency in data.sweep.values()
                        for latency in by_latency})
    base_latency = latencies[0]
    table: dict[int, dict[str, float]] = {lat: {} for lat in latencies}
    for workload in sorted(data.sweep):
        by_latency = data.sweep[workload]
        if base_latency not in by_latency:
            continue
        base_result = by_latency[base_latency]
        base = (base_result.avg_write_latency
                if metric == "write_latency"
                else base_result.cycles) or 1.0
        for latency in latencies:
            if latency not in by_latency:
                continue
            result = by_latency[latency]
            value = (result.avg_write_latency
                     if metric == "write_latency" else result.cycles)
            table[latency][workload] = value / base
    paper = PAPER_FIG11_AVG_160 if metric == "write_latency" \
        else PAPER_FIG12_AVG_160
    return HashSweepFigure(metric, table, paper)


# ----------------------------------------------------------------------
# Bundle assembly
# ----------------------------------------------------------------------
@dataclass
class BundleManifest:
    """What :func:`write_bundle` produced."""

    out_dir: Path
    artifacts: list[FigureArtifact]
    stats_files: list[str]
    files: list[str]            # every written file, sorted
    status_path: Path


def build_artifacts(data: CampaignData, *,
                    resamples: int = DEFAULT_RESAMPLES,
                    seed: int = DEFAULT_SEED,
                    overheads: bool = True,
                    recovery: RecoveryFigure | None = None,
                    crash_window: CrashWindowResult | None = None,
                    perf_snapshots: Sequence[tuple[str, dict]] = (),
                    ) -> tuple[list[FigureArtifact], dict[str, str]]:
    """Every artifact the available data supports, plus the text stats
    tables keyed by figure name."""
    artifacts: list[FigureArtifact] = []
    stats: dict[str, str] = {}
    matrix_inputs = (f"campaign matrix: "
                     f"{len(data.matrix.workloads)} workloads x "
                     f"{len(data.matrix.schemes())} schemes",)

    if data.has_matrix():
        schemes = [s for s in data.matrix.schemes() if s != "baseline"]
        reference = "scue" if "scue" in schemes \
            else fig.order_schemes(schemes)[-1]
        for name, title, metric, paper in (
                ("fig9_write_latency", "Fig 9: write latency",
                 "write_latency", PAPER_FIG9),
                ("fig10_execution_time", "Fig 10: execution time",
                 "execution_time", PAPER_FIG10)):
            table = data.matrix.ratio_table(metric, schemes)
            arts, text = fig.ratio_figure_set(
                name, title, table, y_title=f"{metric} vs baseline",
                baseline="baseline", reference=reference,
                resamples=resamples, seed=seed, paper_average=paper,
                inputs=matrix_inputs)
            artifacts.extend(arts)
            stats[name] = text

    if data.has_sec5e():
        schemes = [s for s in data.matrix.schemes() if s != "lazy"]
        reference = "scue" if "scue" in schemes \
            else fig.order_schemes(schemes)[-1]
        table = data.matrix.ratio_table(
            "metadata_accesses", schemes + ["lazy"], baseline="lazy")
        arts, text = fig.ratio_figure_set(
            "sec5e_metadata_accesses", "Sec V-E: metadata accesses",
            table, y_title="metadata accesses vs lazy",
            baseline="lazy", reference=reference, resamples=resamples,
            seed=seed, paper_average=PAPER_SEC5E, inputs=matrix_inputs)
        artifacts.extend(arts)
        stats["sec5e_metadata_accesses"] = text

    if data.matrix.results:
        artifacts.append(fig.latency_tails_artifact(
            "dash_latency_tails", "Latency tails (p50/p95/p99)",
            data.matrix, inputs=matrix_inputs))
        artifacts.append(fig.attribution_artifact(
            "dash_attribution", "Cycle attribution by component",
            data.matrix, inputs=matrix_inputs))

    if data.has_sweep():
        sweep_inputs = (f"campaign hash sweep: "
                        f"{len(data.sweep)} workloads",)
        artifacts.append(fig.hash_sweep_artifact(
            "fig11_hash_sweep_write_latency",
            "Fig 11: write latency vs hash latency",
            sweep_figure(data, "write_latency"), inputs=sweep_inputs))
        artifacts.append(fig.hash_sweep_artifact(
            "fig12_hash_sweep_execution_time",
            "Fig 12: execution time vs hash latency",
            sweep_figure(data, "execution_time"), inputs=sweep_inputs))

    if overheads:
        artifacts.append(fig.overheads_artifact(
            "sec5f_space_overheads", "Sec V-F: space overheads",
            sec5f_space_overheads(),
            inputs=("static accounting at the paper's 16 GB geometry",)))

    if recovery is not None:
        artifacts.append(fig.recovery_artifact(
            "fig13_recovery_time", "Fig 13: recovery time",
            recovery, inputs=("direct run: crash + targeted rebuild per "
                              "(tracker, cache size)",)))

    if crash_window is not None:
        artifacts.append(fig.crash_window_artifact(
            "fig5_crash_window", "Fig 5: crash-window recovery",
            crash_window,
            inputs=(f"direct run: {crash_window.trials} crash trials "
                    "per scheme",)))

    if perf_snapshots:
        artifacts.append(fig.perf_trajectory_artifact(
            "dash_perf_trajectory", "Perf baseline trajectory",
            perf_snapshots,
            inputs=tuple(f"perf report: {label}"
                         for label, _ in perf_snapshots)))

    return artifacts, stats


def render_status(data: CampaignData, artifacts: list[FigureArtifact],
                  stats_texts: dict[str, str], *, resamples: int,
                  seed: int) -> str:
    """The bundle's ``STATUS.md``: every figure, its inputs, and the
    content hash of both halves.  No timestamps — the file must be
    byte-stable across regeneration."""
    lines = [
        "# Report bundle",
        "",
        "Generated by `repro-sim report` "
        f"(seed {seed}, {resamples} bootstrap resamples).",
        f"Source: {data.cells} cached campaign cells"
        + (f" ({data.skipped} unreadable/ignored)" if data.skipped
           else "") + ".",
        "Validate with `python -m repro.viz.validate <this dir>`.",
        "",
        "## Figures",
        "",
    ]
    rows = []
    for artifact in sorted(artifacts, key=lambda a: a.name):
        rows.append([
            artifact.name, artifact.title,
            f"`{artifact.spec_file()}`", f"`{artifact.data_file()}`",
            len(artifact.rows),
            f"`{content_hash(artifact.spec_str())[:HASH_WIDTH]}`",
            f"`{content_hash(artifact.csv_str())[:HASH_WIDTH]}`",
            "; ".join(artifact.inputs),
        ])
    lines.append(format_markdown_table(
        ["figure", "title", "spec", "data", "rows", "spec sha256",
         "data sha256", "inputs"], rows))
    if stats_texts:
        lines += ["", "## Stats tables", ""]
        stat_rows = [[f"`{name}.stats.txt`",
                      f"`{content_hash(text)[:HASH_WIDTH]}`"]
                     for name, text in sorted(stats_texts.items())]
        lines.append(format_markdown_table(["file", "sha256"],
                                           stat_rows))
    lines.append("")
    return "\n".join(lines)


#: File patterns a bundle owns; cleared before writing so a shrinking
#: figure set cannot leave stale artifacts behind.
_BUNDLE_PATTERNS = ("*.vl.json", "*.csv", "*.stats.txt", "STATUS.md")


def write_bundle(campaign_dir: str | Path, out_dir: str | Path, *,
                 resamples: int = DEFAULT_RESAMPLES,
                 seed: int = DEFAULT_SEED,
                 overheads: bool = True,
                 recovery: RecoveryFigure | None = None,
                 crash_window: CrashWindowResult | None = None,
                 perf_snapshots: Sequence[tuple[str, dict]] = (),
                 ) -> BundleManifest:
    """Load ``campaign_dir``, build every artifact, write the bundle."""
    data = load_campaign(campaign_dir)
    if not data.cells:
        raise ConfigError(
            f"{campaign_dir}: campaign cache holds no readable cells")
    artifacts, stats_texts = build_artifacts(
        data, resamples=resamples, seed=seed, overheads=overheads,
        recovery=recovery, crash_window=crash_window,
        perf_snapshots=perf_snapshots)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for pattern in _BUNDLE_PATTERNS:
        for stale in out.glob(pattern):
            stale.unlink()

    # Every bundle file publishes atomically: a dashboard (or the CI
    # sha256 comparison) watching the directory never reads a torn
    # spec/csv, and a killed rebuild leaves the previous bundle intact.
    files: list[str] = []
    for artifact in artifacts:
        atomic_write_text(out / artifact.spec_file(),
                          artifact.spec_str())
        atomic_write_text(out / artifact.data_file(),
                          artifact.csv_str())
        files += [artifact.spec_file(), artifact.data_file()]
    stats_files = []
    for name, text in sorted(stats_texts.items()):
        stats_name = f"{name}.stats.txt"
        atomic_write_text(out / stats_name, text)
        stats_files.append(stats_name)
        files.append(stats_name)
    status = render_status(data, artifacts, stats_texts,
                           resamples=resamples, seed=seed)
    status_path = out / "STATUS.md"
    atomic_write_text(status_path, status)
    files.append("STATUS.md")
    return BundleManifest(out, artifacts, stats_files, sorted(files),
                          status_path)


def schemes_summary(data: CampaignData) -> str:
    """One-line human summary for the CLI."""
    parts = [f"{data.cells} cells"]
    if data.matrix.results:
        parts.append(f"matrix {len(data.matrix.workloads)}x"
                     f"{len(data.matrix.schemes())}")
    if data.sweep:
        latencies = sorted({lat for by in data.sweep.values()
                            for lat in by})
        parts.append(f"hash sweep {len(data.sweep)}x{len(latencies)}")
    return ", ".join(parts)
