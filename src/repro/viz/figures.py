"""Map simulation results to :class:`~repro.viz.spec.FigureArtifact`.

One builder per paper figure / dashboard panel, each a pure function
from a result structure (a :class:`~repro.bench.harness.MatrixResult`,
a hash-sweep table, a :class:`~repro.bench.figures.RecoveryFigure`, a
perf report...) to an artifact: spec dict + tidy rows + provenance.
Ordering is pinned everywhere — workloads sort alphabetically, schemes
follow :data:`SCHEME_ORDER` — because artifacts must serialize
byte-identically run over run.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.bench.figures import (
    CrashWindowResult,
    HashSweepFigure,
    RecoveryFigure,
)
from repro.bench.harness import MatrixResult
from repro.bench.overheads import OverheadRow, overhead_long_rows
from repro.obs.export import attribution_rows, histogram_summary_rows
from repro.perf.harness import report_rows
from repro.viz.spec import (
    FigureArtifact,
    ci_bar,
    grouped_bar,
    line_chart,
    stacked_bar,
)
from repro.viz.stats import (
    DEFAULT_RESAMPLES,
    DEFAULT_SEED,
    SchemeStats,
    format_stats_table,
    ratio_table_stats,
)

#: Canonical scheme presentation order (baseline first, then the Fig
#: 9/10 comparison set); unknown schemes sort alphabetically after.
SCHEME_ORDER = ("baseline", "plp", "lazy", "bmf-ideal", "scue", "eager")


def scheme_sort_key(scheme: str) -> tuple[int, str]:
    try:
        return (SCHEME_ORDER.index(scheme), scheme)
    except ValueError:
        return (len(SCHEME_ORDER), scheme)


def order_schemes(schemes: Sequence[str]) -> list[str]:
    return sorted(schemes, key=scheme_sort_key)


# ----------------------------------------------------------------------
# Ratio figures (Figs 9/10, §V-E) + their stats companions
# ----------------------------------------------------------------------
def ratio_artifact(name: str, title: str,
                   table: Mapping[str, Mapping[str, float]],
                   *, y_title: str, baseline: str,
                   inputs: Sequence[str] = ()) -> FigureArtifact:
    """Grouped-bar artifact from a ``{workload: {scheme: ratio}}``
    table (the :meth:`MatrixResult.ratio_table` shape)."""
    workloads = sorted(w for w in table if w != "geomean")
    schemes = order_schemes(next(iter(table.values())).keys()) \
        if table else []
    rows = [{"workload": workload, "scheme": scheme,
             "ratio": table[workload][scheme]}
            for workload in workloads for scheme in schemes]
    spec = grouped_bar(
        name, title, x="workload", y="ratio", group="scheme",
        y_title=y_title, x_sort=workloads, group_sort=schemes,
        description=f"{title} (normalized to {baseline})")
    return FigureArtifact(name, title, spec,
                          ("workload", "scheme", "ratio"), rows,
                          tuple(inputs))


def ratio_stats_artifact(name: str, title: str,
                         stats_rows: Sequence[SchemeStats],
                         *, y_title: str,
                         inputs: Sequence[str] = ()) -> FigureArtifact:
    """Geomean-with-CI layered artifact from the stats layer."""
    schemes = [row.scheme for row in stats_rows]
    rows = [{"scheme": row.scheme, "geomean": row.geomean,
             "ci_low": row.ci_low, "ci_high": row.ci_high}
            for row in stats_rows]
    spec = ci_bar(name, title, x="scheme", y="geomean",
                  lo="ci_low", hi="ci_high", y_title=y_title,
                  x_sort=schemes,
                  description=f"{title} with bootstrap 95% CIs")
    return FigureArtifact(name, title, spec,
                          ("scheme", "geomean", "ci_low", "ci_high"),
                          rows, tuple(inputs))


def ratio_figure_set(name: str, title: str,
                     table: Mapping[str, Mapping[str, float]],
                     *, y_title: str, baseline: str,
                     reference: str,
                     resamples: int = DEFAULT_RESAMPLES,
                     seed: int = DEFAULT_SEED,
                     paper_average: Mapping[str, float] | None = None,
                     inputs: Sequence[str] = ()
                     ) -> tuple[list[FigureArtifact], str]:
    """The full treatment of one ratio table: the per-workload grouped
    bar, the geomean+CI companion, and the text stats table."""
    from repro.bench.reporting import format_ratio_table

    schemes = order_schemes(next(iter(table.values())).keys())
    stats_rows = ratio_table_stats(table, schemes, reference,
                                   resamples=resamples, seed=seed)
    artifacts = [
        ratio_artifact(name, title, table, y_title=y_title,
                       baseline=baseline, inputs=inputs),
        ratio_stats_artifact(f"{name}_ci", f"{title} (geomean + CI)",
                             stats_rows, y_title=y_title,
                             inputs=inputs),
    ]
    text = format_ratio_table(title, table, paper_average,
                              baseline_note=f"normalized to {baseline}")
    stats_text = format_stats_table(f"{title}: scheme geomeans",
                                    stats_rows, reference,
                                    resamples=resamples, seed=seed)
    return artifacts, f"{text}\n\n{stats_text}"


# ----------------------------------------------------------------------
# Sweeps and direct-run figures (Figs 11-13, Fig 5, §V-F)
# ----------------------------------------------------------------------
def hash_sweep_artifact(name: str, title: str, sweep: HashSweepFigure,
                        *, inputs: Sequence[str] = ()) -> FigureArtifact:
    rows = sweep.long_rows()
    spec = line_chart(
        name, title, x="hash_latency", y="ratio", series="workload",
        x_title="hash latency (cycles)",
        y_title=f"{sweep.metric} vs 20-cycle hash",
        description=f"{title}: SCUE sensitivity to hash latency")
    return FigureArtifact(name, title, spec,
                          ("workload", "hash_latency", "ratio"), rows,
                          tuple(inputs))


def recovery_artifact(name: str, title: str, figure: RecoveryFigure,
                      *, inputs: Sequence[str] = ()) -> FigureArtifact:
    rows = figure.long_rows()
    spec = line_chart(
        name, title, x="cache_kb", y="seconds", series="tracker",
        x_title="metadata cache (KB)", y_title="recovery time (s)",
        description=f"{title}: STAR vs AGIT recovery cost as the "
                    "worst-case stale set grows")
    return FigureArtifact(
        name, title, spec,
        ("tracker", "cache_kb", "seconds", "stale_nodes"), rows,
        tuple(inputs))


def crash_window_artifact(name: str, title: str,
                          result: CrashWindowResult,
                          *, inputs: Sequence[str] = ()
                          ) -> FigureArtifact:
    rows = result.long_rows()
    schemes = [row["scheme"] for row in rows]
    spec = grouped_bar(
        name, title, x="scheme", y="success_rate", group="scheme",
        y_title="recovery success rate", x_sort=schemes,
        group_sort=schemes,
        description=f"{title}: mid-burst crash recovery over "
                    f"{result.trials} trials per scheme")
    return FigureArtifact(name, title, spec,
                          ("scheme", "success_rate", "trials"), rows,
                          tuple(inputs))


def overheads_artifact(name: str, title: str,
                       rows: list[OverheadRow],
                       *, inputs: Sequence[str] = ()) -> FigureArtifact:
    long_rows = overhead_long_rows(rows)
    schemes = sorted({row["scheme"] for row in long_rows})
    spec = grouped_bar(
        name, title, x="scheme", y="bytes", group="source",
        y_title="on-chip non-volatile bytes", x_sort=schemes,
        group_sort=["measured", "paper"],
        description=f"{title}: measured vs published on-chip state")
    spec["encoding"]["y"]["scale"] = {"type": "symlog"}
    return FigureArtifact(name, title, spec,
                          ("scheme", "source", "bytes"), long_rows,
                          tuple(inputs))


# ----------------------------------------------------------------------
# Dashboards: latency tails, attribution, perf trajectory
# ----------------------------------------------------------------------
def latency_tails_artifact(name: str, title: str, matrix: MatrixResult,
                           *, inputs: Sequence[str] = ()
                           ) -> FigureArtifact:
    """p50/p95/p99 panels per scheme from the campaign's bucket-merged
    histograms (one facet column per scheme)."""
    rows: list[dict[str, Any]] = []
    for scheme in order_schemes(matrix.schemes()):
        merged = matrix.merged_histograms(scheme)
        for row in histogram_summary_rows(merged):
            rows.append({"scheme": scheme, **row})
    spec = grouped_bar(
        name, title, x="metric", y="cycles", group="stat",
        y_title="latency (cycles)",
        group_sort=["p50", "p95", "p99"],
        description=f"{title}: campaign-wide latency tails from "
                    "bucket-merged histograms")
    spec["encoding"]["column"] = {"field": "scheme", "type": "nominal"}
    spec["encoding"]["y"]["scale"] = {"type": "symlog"}
    return FigureArtifact(name, title, spec,
                          ("scheme", "metric", "stat", "cycles"), rows,
                          tuple(inputs))


def attribution_artifact(name: str, title: str, matrix: MatrixResult,
                         *, inputs: Sequence[str] = ()
                         ) -> FigureArtifact:
    """Stacked per-component cycle shares per scheme, summed across the
    campaign's workloads (the AttributionLedger dashboard)."""
    rows: list[dict[str, Any]] = []
    schemes = order_schemes(matrix.schemes())
    for scheme in schemes:
        merged = matrix.merged_attribution(scheme)
        total = sum(merged.values())
        for row in attribution_rows(merged, total):
            rows.append({"scheme": scheme, **row})
    spec = stacked_bar(
        name, title, x="scheme", y="share", stack="component",
        y_title="share of cycles", x_sort=schemes,
        description=f"{title}: per-component cycle composition, "
                    "summed across workloads")
    return FigureArtifact(name, title, spec,
                          ("scheme", "component", "cycles", "share"),
                          rows, tuple(inputs))


def perf_trajectory_artifact(name: str, title: str,
                             snapshots: Sequence[tuple[str, dict]],
                             *, inputs: Sequence[str] = ()
                             ) -> FigureArtifact:
    """Throughput per benchmark across labelled ``BENCH_perf*.json``
    snapshots (the perf-baseline trajectory)."""
    labels = [label for label, _ in snapshots]
    rows: list[dict[str, Any]] = []
    for label, report in snapshots:
        rows.extend(report_rows(label, report))
    spec = line_chart(
        name, title, x="snapshot", y="accesses_per_sec",
        series="benchmark", x_title="baseline snapshot",
        y_title="accesses / second",
        description=f"{title}: committed perf-baseline trajectory")
    spec["encoding"]["x"] = {"field": "snapshot", "type": "ordinal",
                             "sort": labels,
                             "title": "baseline snapshot"}
    return FigureArtifact(
        name, title, spec,
        ("snapshot", "benchmark", "accesses_per_sec", "wall_seconds"),
        rows, tuple(inputs))
