"""repro.obs: structured tracing, latency histograms and attribution.

The observability layer answers *where do the cycles go* — the question
behind every figure in the paper (SCUE wins because root-update and
verify-chain work leaves the critical write path).  Three pieces:

* :mod:`repro.obs.recorder` — typed span/instant trace events with cycle
  timestamps, a ring-buffer mode, and a zero-cost :data:`NULL_RECORDER`
  so the hot path pays a single attribute check when tracing is off;
* :mod:`repro.obs.histogram` — fixed-bucket latency histograms
  (p50/p95/p99/max) replacing bare means;
* :mod:`repro.obs.attribution` — per-component cycle counters that must
  sum to the total simulated cycles (checked, not hoped).

Exporters (:mod:`repro.obs.export`) turn a recorder into Chrome-trace /
Perfetto JSON or a text attribution report; :mod:`repro.obs.validate`
checks exported traces structurally; :mod:`repro.obs.diff` compares two
run-result JSONs scheme-vs-scheme.  See docs/observability.md.
"""

from repro.obs.attribution import (ATTRIBUTION_COMPONENTS, AttributionLedger,
                                   check_attribution)
from repro.obs.histogram import LatencyHistogram
from repro.obs.recorder import (NULL_RECORDER, NullRecorder, TraceEvent,
                                TraceRecorder)

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "AttributionLedger",
    "LatencyHistogram",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceEvent",
    "TraceRecorder",
    "check_attribution",
]
