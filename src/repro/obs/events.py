"""Event taxonomy: the names and tracks the pipeline emits.

Every instrumented component emits events from this closed vocabulary so
exporters, tests and the docs agree on what a trace contains.  Names are
constants rather than an enum because the hot path formats them straight
into event records; an enum would add an attribute dereference per event
for no safety gain (the taxonomy test pins the full set).

Tracks map to Chrome-trace *threads*: events on one track must nest
properly, so spans live only on tracks where the simulator guarantees
sequential, non-overlapping execution (the in-order CPU, the recovery
walk).  Everything concurrent-ish — WPQ drains, NVM banks, hash bursts —
is an instant event on its component's own track.
"""

from __future__ import annotations

# --- tracks (Chrome-trace tid ordering follows this tuple) -----------------
TRACK_CPU = "cpu"            # per-access spans; strictly sequential
TRACK_CTL = "controller"     # secure-controller op instants
TRACK_VERIFY = "verify"      # verify-chain hops (SIT/BMT levels)
TRACK_HASH = "hash"          # HMAC engine charges
TRACK_WPQ = "wpq"            # write-pending-queue enqueue/drain/stall
TRACK_NVM = "nvm"            # NVM device reads/writes, bank busy
TRACK_ROOT = "root"          # on-chip root register updates
TRACK_RECOVERY = "recovery"  # recovery phases; sequential spans
TRACK_EXPLORE = "explore"    # crash-state explorer progress

ALL_TRACKS = (TRACK_CPU, TRACK_CTL, TRACK_VERIFY, TRACK_HASH,
              TRACK_WPQ, TRACK_NVM, TRACK_ROOT, TRACK_RECOVERY,
              TRACK_EXPLORE)

# --- span names (ph B/E pairs) ---------------------------------------------
EV_READ = "read"                    # CPU stalled on a demand read miss
EV_PERSIST = "persist"              # CPU stalled on a persist (clwb+fence)
EV_RECOVERY = "recovery"            # whole recovery pass
EV_RECOVERY_PHASE = "recovery_phase"  # one phase of it (scan, rebuild, ...)
EV_EXPLORE = "explore"              # one explorer boundary-range shard

SPAN_EVENTS = (EV_READ, EV_PERSIST, EV_RECOVERY, EV_RECOVERY_PHASE,
               EV_EXPLORE)

# --- instant names ----------------------------------------------------------
EV_WRITE_OP = "write_op"            # controller write_data (persist or wb)
EV_READ_OP = "read_op"              # controller read_data breakdown
EV_VERIFY_HOP = "verify_hop"        # one level of the verify chain
EV_HMAC = "hmac"                    # HashEngine.charge
EV_OVERFLOW = "counter_overflow"    # minor-counter overflow re-encryption
EV_LEAF_PERSIST = "leaf_persist"    # scheme's on-leaf-persist policy fired
EV_META_FLUSH = "meta_flush"        # scheme flushed a dirty metadata node
EV_WPQ_ENQUEUE = "wpq_enqueue"
EV_WPQ_STALL = "wpq_stall"          # enqueue blocked on a full queue
EV_WPQ_DRAIN = "wpq_drain"          # one entry written back to media
EV_NVM_READ = "nvm_read"
EV_NVM_WRITE = "nvm_write"
EV_ROOT_UPDATE = "root_update"      # running/recovery root register write
EV_LLC_WRITEBACK = "llc_writeback"  # dirty line evicted out of L3
EV_CRASH = "crash"                  # power failure injected
EV_EXPLORE_STATE = "explore_state"  # one crash state verified
EV_EXPLORE_PRUNED = "explore_pruned"  # a cut pruned before verification

INSTANT_EVENTS = (EV_WRITE_OP, EV_READ_OP, EV_VERIFY_HOP, EV_HMAC,
                  EV_OVERFLOW, EV_LEAF_PERSIST, EV_META_FLUSH,
                  EV_WPQ_ENQUEUE, EV_WPQ_STALL, EV_WPQ_DRAIN,
                  EV_NVM_READ, EV_NVM_WRITE, EV_ROOT_UPDATE,
                  EV_LLC_WRITEBACK, EV_CRASH, EV_EXPLORE_STATE,
                  EV_EXPLORE_PRUNED)

ALL_EVENTS = SPAN_EVENTS + INSTANT_EVENTS
