"""Scheme-vs-scheme breakdown comparison (``repro-sim stats diff``).

Takes two run-result JSON files (``repro-sim run --json`` / ``trace
--result-json`` output) and renders where the cycles moved: headline
metrics, the per-component attribution deltas, and histogram tail
shifts.  This is the Fig 9 story as a table — e.g. SCUE vs eager shows
``write_scheme`` (root-update work) collapsing on the critical path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ObservabilityError
from repro.sim.results import RunResult


def load_result(path: str | Path) -> RunResult:
    """Load a :class:`RunResult` from a JSON file, with a clear error on
    files that are not run results."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"{path}: unreadable result JSON: {exc}")
    if not isinstance(data, dict) or "scheme" not in data:
        raise ObservabilityError(
            f"{path}: not a run-result JSON (expected repro-sim run --json "
            "output)")
    return RunResult.from_dict(data)


def _ratio(a: float, b: float) -> str:
    if b == 0:
        return "-"
    return f"{a / b:6.3f}x"


def diff_results(a: RunResult, b: RunResult) -> str:
    """Render a text comparison of run ``a`` against run ``b``."""
    label_a = f"{a.scheme}/{a.workload}"
    label_b = f"{b.scheme}/{b.workload}"
    lines = [f"stats diff: {label_a} vs {label_b}", ""]
    lines.append(f"  {'metric':<22} {label_a:>14} {label_b:>14} {'a/b':>8}")
    for metric, getter in (
            ("cycles", lambda r: r.cycles),
            ("ipc", lambda r: round(r.ipc, 4)),
            ("avg_write_latency", lambda r: round(r.avg_write_latency, 1)),
            ("avg_read_latency", lambda r: round(r.avg_read_latency, 1)),
            ("nvm_meta_reads", lambda r: r.nvm_meta_reads),
            ("nvm_meta_writes", lambda r: r.nvm_meta_writes),
            ("hashes", lambda r: r.hashes)):
        va, vb = getter(a), getter(b)
        lines.append(f"  {metric:<22} {va:>14} {vb:>14} "
                     f"{_ratio(float(va), float(vb)):>8}")
    if a.attribution or b.attribution:
        lines.append("")
        lines.append(f"  {'attribution (cycles)':<22} {label_a:>14} "
                     f"{label_b:>14} {'delta':>10}")
        components = list(a.attribution)
        components += [c for c in b.attribution if c not in components]
        for component in components:
            va = a.attribution.get(component, 0)
            vb = b.attribution.get(component, 0)
            lines.append(f"  {component:<22} {va:>14} {vb:>14} "
                         f"{va - vb:>+10}")
    shared = sorted(set(a.histograms) & set(b.histograms))
    if shared:
        lines.append("")
        lines.append(f"  {'histogram tails':<22} {'p50':>10} {'p99':>10} "
                     f"{'max':>10}")
        for name in shared:
            for label, hist in ((label_a, a.histograms[name]),
                                (label_b, b.histograms[name])):
                lines.append(
                    f"  {name + ' ' + label:<22} "
                    f"{_cell(hist, 'p50'):>10} {_cell(hist, 'p99'):>10} "
                    f"{_cell(hist, 'max'):>10}")
    return "\n".join(lines)


def _cell(hist: dict[str, Any], key: str) -> str:
    value = hist.get(key)
    return "-" if value is None else str(value)
