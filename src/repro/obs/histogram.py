"""Fixed-bucket latency histograms (p50/p95/p99/max).

Bare means hide exactly what the paper's figures argue about: tail write
latency.  :class:`LatencyHistogram` buckets samples by power of two —
bucket 0 holds value 0, bucket *b* holds ``[2**(b-1), 2**b - 1]`` — so
``add`` is a ``bit_length`` plus one list increment, cheap enough for the
per-access hot path.  Percentiles are estimated as the upper bound of
the bucket containing the target rank, clamped to the observed maximum
(so ``p100 == max`` exactly and estimates never exceed a real sample).

Histograms merge bucket-wise, which is how campaign aggregation combines
per-cell histograms without re-running anything.
"""

from __future__ import annotations

from typing import Any

#: Enough buckets for latencies up to 2**62 cycles; saturating on top.
_BUCKETS = 64


class LatencyHistogram:
    """Power-of-two-bucket histogram of non-negative integer samples."""

    __slots__ = ("name", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0
        self.minimum: int | None = None
        self.maximum: int | None = None

    # ------------------------------------------------------------------
    def add(self, value: int, weight: int = 1) -> None:
        idx = value.bit_length() if value > 0 else 0
        if idx >= _BUCKETS:
            idx = _BUCKETS - 1
        self.counts[idx] += weight
        self.count += weight
        self.total += value * weight
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """Inclusive ``(low, high)`` sample range of bucket ``index``."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> int | None:
        """Upper-bound estimate of the ``pct``-th percentile, or ``None``
        on an empty histogram.

        Tolerates a populated ``counts`` with ``count == 0`` or a
        missing ``maximum`` — both reachable through :meth:`from_dict`
        on truncated snapshots, which the dashboard merge path consumes
        — by returning ``None`` / the unclamped bucket bound instead of
        raising."""
        if not self.count:
            return None
        rank = max(1, -(-int(pct * self.count) // 100))  # ceil(pct% * n)
        seen = 0
        for idx, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                high = self.bucket_bounds(idx)[1]
                if self.maximum is None:
                    return high
                return min(high, self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> int | None:
        return self.percentile(50)

    @property
    def p95(self) -> int | None:
        return self.percentile(95)

    @property
    def p99(self) -> int | None:
        return self.percentile(99)

    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (campaign aggregation).

        Merging an empty histogram — either side — is a no-op on the
        populated one, including when the empty side came from a
        snapshot with no min/max."""
        for idx, bucket_count in enumerate(other.counts):
            self.counts[idx] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum

    def reset(self) -> None:
        self.counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot; bucket list trimmed of trailing zeros."""
        last = 0
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count:
                last = idx + 1
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": self.counts[:last],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any],
                  name: str = "") -> "LatencyHistogram":
        hist = cls(name)
        buckets = data.get("buckets", [])
        hist.counts[:len(buckets)] = buckets
        # Truncated snapshots (no "count") infer it from the buckets so
        # percentile/mean stay consistent with the data present.
        hist.count = data.get("count", sum(buckets))
        hist.total = data.get("total", 0)
        hist.minimum = data.get("min")
        hist.maximum = data.get("max")
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LatencyHistogram({self.name!r}, n={self.count}, "
                f"p50={self.p50}, p99={self.p99}, max={self.maximum})")
