"""Structural validator for exported Chrome-trace JSON.

CI's trace-smoke job runs this (``python -m repro.obs.validate t.json``)
against a freshly exported trace; tests call :func:`validate_chrome_trace`
directly.  Checks are structural, not semantic:

* top level has a non-empty ``traceEvents`` list;
* every event has ``ph``/``pid``/``tid``/``name`` with a known phase;
* ``B``/``E`` events pair up and nest per ``(pid, tid)`` — names match
  on pop, no dangling begins at end of trace;
* timestamps are monotonically non-decreasing in file order (metadata
  records excluded);
* if ``otherData`` carries an attribution table and total, the table
  sums to the total (the exported artifact re-checks the simulator's
  own invariant).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

_PHASES = {"B", "E", "i", "I", "X", "M"}


def validate_chrome_trace(payload: dict[str, Any]) -> list[str]:
    """Return a list of structural problems (empty == valid)."""
    errors: list[str] = []
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        return ["traceEvents missing, not a list, or empty"]
    stacks: dict[tuple[Any, Any], list[str]] = {}
    last_ts: int | float | None = None
    for index, event in enumerate(trace_events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            errors.append(f"event {index}: unknown phase {phase!r}")
            continue
        if "name" not in event:
            errors.append(f"event {index}: missing name")
        if phase == "M":
            continue
        missing = [key for key in ("pid", "tid", "ts") if key not in event]
        if missing:
            errors.append(f"event {index}: missing {missing}")
            continue
        ts = event["ts"]
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {index}: ts {ts} < previous {last_ts} "
                          "(not monotonic)")
        last_ts = ts
        key = (event["pid"], event["tid"])
        if phase == "B":
            stacks.setdefault(key, []).append(event.get("name", ""))
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                errors.append(f"event {index}: E with empty stack on "
                              f"track {key}")
            else:
                opened = stack.pop()
                if opened != event.get("name"):
                    errors.append(
                        f"event {index}: E name {event.get('name')!r} "
                        f"does not match open span {opened!r} on {key}")
    for key, stack in stacks.items():
        if stack:
            errors.append(f"track {key}: {len(stack)} unclosed span(s): "
                          f"{stack}")
    other = payload.get("otherData", {})
    attribution = other.get("attribution")
    total = other.get("total_cycles")
    if isinstance(attribution, dict) and isinstance(total, int):
        attributed = sum(attribution.values())
        if attributed != total:
            errors.append(f"otherData attribution sums to {attributed}, "
                          f"total_cycles is {total}")
    return errors


def validate_file(path: str | Path) -> list[str]:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    if not isinstance(payload, dict):
        return [f"{path}: top level is not an object"]
    return validate_chrome_trace(payload)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.obs.validate TRACE.json ...",
              file=sys.stderr)
        return 2
    status = 0
    for path in args:
        problems = validate_file(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}")
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
