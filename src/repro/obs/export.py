"""Exporters: Chrome-trace/Perfetto JSON and text attribution reports.

Chrome-trace events need numeric thread ids; each recorder track gets a
stable tid (declaration order in :mod:`repro.obs.events`) named via
``M``/``thread_name`` metadata records, so Perfetto shows "cpu", "wpq",
"nvm"... as labelled rows.  Timestamps are simulated cycles exported as
microseconds (1 cycle == 1 us in the viewer; the unit is documented in
``otherData``).

Spans are stored internally as single records with a duration and only
here expanded into B/E pairs; the sort key ``(ts, seq, B-before-E)``
guarantees the pairs nest on every track.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs import events as ev
from repro.obs.recorder import TraceRecorder

_PID = 1


def _track_tid(track: str) -> int:
    try:
        return ev.ALL_TRACKS.index(track)
    except ValueError:
        return len(ev.ALL_TRACKS)


def to_chrome_trace(recorder: TraceRecorder, *,
                    scheme: str = "", workload: str = "",
                    attribution: dict[str, int] | None = None,
                    total_cycles: int | None = None) -> dict[str, Any]:
    """Render a recorder as a Chrome-trace/Perfetto JSON object."""
    label = " ".join(part for part in ("repro-sim", scheme, workload) if part)
    trace_events: list[dict[str, Any]] = [{
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": label},
    }]
    used_tracks = sorted({event.track for event in recorder.events},
                         key=_track_tid)
    for track in used_tracks:
        trace_events.append({
            "ph": "M", "pid": _PID, "tid": _track_tid(track),
            "name": "thread_name", "args": {"name": track},
        })
    # Expand spans to B/E; sort so E events at a boundary precede the next
    # span's B (key element 2) and ties break on recording order.
    expanded: list[tuple[int, int, int, dict[str, Any]]] = []
    for event in recorder.events:
        tid = _track_tid(event.track)
        base = {"pid": _PID, "tid": tid, "name": event.name,
                "cat": event.track}
        if event.is_span:
            begin = dict(base, ph="B", ts=event.ts)
            if event.args:
                begin["args"] = dict(event.args)
            expanded.append((event.ts, 1, event.seq, begin))
            expanded.append((event.ts + event.dur, 0, event.seq,
                             dict(base, ph="E", ts=event.ts + event.dur)))
        else:
            instant = dict(base, ph="i", ts=event.ts, s="t")
            if event.args:
                instant["args"] = dict(event.args)
            expanded.append((event.ts, 2, event.seq, instant))
    expanded.sort(key=lambda item: item[:3])
    trace_events.extend(item[3] for item in expanded)
    other: dict[str, Any] = {
        "timeUnit": "1 us == 1 simulated cycle",
        "events": len(recorder.events),
        "ring_capacity": recorder.capacity,
    }
    if attribution is not None:
        other["attribution"] = dict(attribution)
    if total_cycles is not None:
        other["total_cycles"] = total_cycles
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": other}


def save_chrome_trace(recorder: TraceRecorder, path: str | Path,
                      **kwargs: Any) -> None:
    """Write :func:`to_chrome_trace` output to ``path``."""
    payload = to_chrome_trace(recorder, **kwargs)
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


# ---------------------------------------------------------------------------
def attribution_report(attribution: dict[str, int], total_cycles: int,
                       *, title: str = "cycle attribution") -> str:
    """Text flame report: one bar per component, share of total cycles."""
    lines = [f"{title} ({total_cycles} cycles)"]
    width = max((len(name) for name in attribution), default=0)
    for name, cycles in sorted(attribution.items(),
                               key=lambda item: -item[1]):
        share = cycles / total_cycles if total_cycles else 0.0
        bar = "#" * round(share * 40)
        lines.append(f"  {name:<{width}}  {cycles:>12}  "
                     f"{share:6.1%}  {bar}")
    attributed = sum(attribution.values())
    lines.append(f"  {'total':<{width}}  {attributed:>12}  "
                 f"{'OK' if attributed == total_cycles else 'MISMATCH'}")
    return "\n".join(lines)


def attribution_rows(attribution: dict[str, int],
                     total_cycles: int) -> list[dict[str, Any]]:
    """Tidy ``{component, cycles, share}`` rows, sorted by component —
    the stacked-bar feed of the report bundle (repro.viz)."""
    return [{"component": name, "cycles": cycles,
             "share": cycles / total_cycles if total_cycles else 0.0}
            for name, cycles in sorted(attribution.items())]


def histogram_summary_rows(histograms: dict[str, dict[str, Any]]
                           ) -> list[dict[str, Any]]:
    """Tidy ``{metric, stat, cycles}`` rows over p50/p95/p99, sorted —
    the tail-latency panel feed of the report bundle (repro.viz).
    Zero-count histograms (``None`` percentiles) are skipped."""
    rows: list[dict[str, Any]] = []
    for metric, data in sorted(histograms.items()):
        for stat in ("p50", "p95", "p99"):
            value = data.get(stat)
            if value is None:
                continue
            rows.append({"metric": metric, "stat": stat,
                         "cycles": value})
    return rows


def histogram_report(histograms: dict[str, dict[str, Any]]) -> str:
    """Text table of per-metric histogram summaries."""
    lines = ["latency histograms (cycles)"]
    width = max((len(name) for name in histograms), default=6)
    width = max(width, len("metric"))
    header = (f"  {'metric':<{width}} {'count':>8} {'mean':>9} {'p50':>6} "
              f"{'p95':>6} {'p99':>6} {'max':>6}")
    lines.append(header)
    for name, data in sorted(histograms.items()):
        def cell(key: str) -> str:
            value = data.get(key)
            return "-" if value is None else str(value)
        mean = data.get("mean", 0.0)
        lines.append(f"  {name:<{width}} {data.get('count', 0):>8} "
                     f"{mean:>9.1f} {cell('p50'):>6} {cell('p95'):>6} "
                     f"{cell('p99'):>6} {cell('max'):>6}")
    return "\n".join(lines)
