"""Trace recorders: the event sink the whole pipeline writes into.

Two implementations share one duck type:

* :class:`NullRecorder` — the default.  ``enabled`` is ``False`` and
  every method is a no-op; instrumented code guards every emission with
  ``if recorder.enabled:`` so the hot path pays exactly one attribute
  check when tracing is off.
* :class:`TraceRecorder` — appends :class:`TraceEvent` records, either
  unbounded or into a ring buffer (``capacity=N`` keeps the last N
  events, the right mode for "trace until the bug happens").

Timestamps are simulated cycles.  Components below the controller (NVM,
WPQ, hash engine) do not know the current cycle, so the recorder carries
``now``: the system/controller sets it at the top of each operation and
deeper components stamp their events with it.

Spans are stored as single records with a duration and only expanded to
Chrome-trace B/E pairs at export time — ring-buffer eviction therefore
drops whole spans and can never produce an unbalanced trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.  ``dur`` is ``None`` for instants."""

    name: str
    track: str
    ts: int
    seq: int
    dur: int | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.dur is not None


class NullRecorder:
    """Do-nothing recorder; the hot path's default.

    Kept stateless and shared (:data:`NULL_RECORDER`) so constructing a
    system without tracing allocates nothing.
    """

    enabled = False
    now = 0

    def set_now(self, cycle: int) -> None:
        pass

    def instant(self, name: str, track: str, ts: int | None = None,
                **args: Any) -> None:
        pass

    def span(self, name: str, track: str, ts: int, dur: int,
             **args: Any) -> None:
        pass

    def link(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


#: Shared do-nothing recorder; every component's default.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects :class:`TraceEvent` records with cycle timestamps.

    ``capacity=None`` records everything; an integer keeps only the most
    recent ``capacity`` events (ring-buffer mode).  ``link()`` hands out
    monotonically increasing ids that emitters thread through related
    events' ``args`` (cause links, e.g. the write_op that triggered a
    counter overflow).
    """

    enabled = True

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.now = 0
        self._seq = 0
        self._links = 0

    def set_now(self, cycle: int) -> None:
        self.now = cycle

    def instant(self, name: str, track: str, ts: int | None = None,
                **args: Any) -> None:
        self._seq += 1
        self.events.append(TraceEvent(
            name, track, self.now if ts is None else ts, self._seq,
            None, args))

    def span(self, name: str, track: str, ts: int, dur: int,
             **args: Any) -> None:
        self._seq += 1
        self.events.append(TraceEvent(name, track, ts, self._seq, dur, args))

    def link(self) -> int:
        """A fresh cause-link id to correlate related events."""
        self._links += 1
        return self._links

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
