"""Per-component cycle attribution: every simulated cycle has an owner.

The system splits each access's cycle advance across a fixed set of
components; :func:`check_attribution` enforces the invariant that the
split is exact — attributed cycles sum to the total, no cycle counted
twice, none dropped.  This is what makes the flame report trustworthy:
a component's share is a share *of everything*, not of a subset someone
remembered to instrument.

Overlapped work (the read path takes ``max(media, verify)``) is
attributed to the *dominating* component; the hidden portion is what the
scheme successfully overlapped and by construction costs zero cycles.
"""

from __future__ import annotations

from repro.errors import ObservabilityError

#: The closed set of cycle owners, in report order.
ATTRIBUTION_COMPONENTS = (
    "cpu",             # instruction retire (gap+1 per access)
    "read_media",      # demand reads: NVM array read dominated
    "read_verify",     # demand reads: counter/tree fetch chain dominated
    "read_flush",      # demand reads: synchronous metadata eviction flushes
    "write_fetch",     # persists: verification fetch before the write
    "write_overflow",  # persists: minor-counter overflow re-encryption
    "write_scheme",    # persists: scheme critical path (hashes, root work)
    "write_flush",     # persists: synchronous metadata eviction flushes
    "write_wpq",       # persists: stalled on a full write-pending queue
    "recovery",        # post-crash recovery walk
)


class AttributionLedger:
    """Integer cycle counters, one per component in
    :data:`ATTRIBUTION_COMPONENTS`."""

    __slots__ = ("cycles",)

    def __init__(self) -> None:
        self.cycles = dict.fromkeys(ATTRIBUTION_COMPONENTS, 0)

    def charge(self, component: str, cycles: int) -> None:
        self.cycles[component] += cycles

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    def reset(self) -> None:
        self.cycles = dict.fromkeys(ATTRIBUTION_COMPONENTS, 0)

    def to_dict(self) -> dict[str, int]:
        return dict(self.cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        nonzero = {k: v for k, v in self.cycles.items() if v}
        return f"AttributionLedger({nonzero})"


def check_attribution(attribution: dict[str, int], total_cycles: int,
                      context: str = "") -> None:
    """Raise :class:`ObservabilityError` unless ``attribution`` sums
    exactly to ``total_cycles``."""
    attributed = sum(attribution.values())
    if attributed != total_cycles:
        detail = ", ".join(f"{k}={v}" for k, v in attribution.items() if v)
        where = f" ({context})" if context else ""
        raise ObservabilityError(
            f"cycle attribution does not sum to total{where}: "
            f"attributed {attributed} != simulated {total_cycles} "
            f"[{detail}]")
    negative = [k for k, v in attribution.items() if v < 0]
    if negative:
        raise ObservabilityError(
            f"negative cycle attribution for {negative}")
