"""The CPU-side cache hierarchy (L1/L2/L3 of Table II).

The hierarchy is a *placement and filtering* model: it decides which memory
instructions reach the memory controller and which writebacks the
controller sees, without carrying data (user-data bytes travel through the
functional layer in the secure memory controller itself).

Table II: private L1 64 KB 2-way, private L2 512 KB 8-way, shared L3 4 MB
8-way, all 64 B lines with LRU.  We model a single-core view (the paper
runs one application per core; scheme-relative results are per-core
effects), so "private vs shared" collapses to three inclusive levels.

A load miss in all three levels produces a memory read.  A store is
write-allocate/write-back: it dirties the line in L1 and surfaces at the
controller only when a dirty line is evicted from L3.  A *persist*
(clwb+fence) writes through immediately and leaves the line clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import SetAssociativeCache
from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER
from repro.util.stats import StatGroup


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/associativities for the three levels (Table II defaults)."""

    l1_size: int = 64 * 1024
    l1_ways: int = 2
    l2_size: int = 512 * 1024
    l2_ways: int = 8
    l3_size: int = 4 * 1024 * 1024
    l3_ways: int = 8

    def to_dict(self) -> dict[str, int]:
        """Stable field-order dict (campaign cache keys, worker IPC)."""
        return {"l1_size": self.l1_size, "l1_ways": self.l1_ways,
                "l2_size": self.l2_size, "l2_ways": self.l2_ways,
                "l3_size": self.l3_size, "l3_ways": self.l3_ways}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "HierarchyConfig":
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass(slots=True)
class HierarchyResult:
    """Outcome of one access against the hierarchy.

    ``miss_to_memory``: the access needs a line from the controller.
    ``writebacks``: dirty line addresses evicted out of L3 by this access
    (the controller must treat them as NVM writes).
    ``hit_level``: 1/2/3, or 0 on full miss.
    """

    miss_to_memory: bool
    writebacks: list[int]
    hit_level: int


class CacheHierarchy:
    """Three-level inclusive LRU cache hierarchy."""

    def __init__(self, config: HierarchyConfig | None = None,
                 stats: StatGroup | None = None, recorder=None) -> None:
        self.config = config or HierarchyConfig()
        self.obs = recorder if recorder is not None else NULL_RECORDER
        group = stats or StatGroup("cpu_caches")
        self.stats = group
        cfg = self.config
        self.l1 = SetAssociativeCache(cfg.l1_size, cfg.l1_ways, name="l1",
                                      stats=group.child("l1"))
        self.l2 = SetAssociativeCache(cfg.l2_size, cfg.l2_ways, name="l2",
                                      stats=group.child("l2"))
        self.l3 = SetAssociativeCache(cfg.l3_size, cfg.l3_ways, name="l3",
                                      stats=group.child("l3"))
        self._levels = (self.l1, self.l2, self.l3)

    # ------------------------------------------------------------------
    def _spill(self, victim, outer: SetAssociativeCache) -> None:
        """Write-back spill: a dirty victim evicted from an inner level
        marks its (inclusive) copy in the next level dirty."""
        if victim is None or not victim.dirty:
            return
        outer_line = outer.peek(victim.addr)
        if outer_line is not None:
            outer_line.dirty = True

    def _install(self, line_addr: int, dirty: bool) -> list[int]:
        """Install a line in all levels (inclusive fill); collect dirty
        lines that fall out of L3."""
        writebacks: list[int] = []
        # Fill outer-in so inner victims can spill into a present copy.
        victim = self.l3.insert(line_addr, dirty=False)
        victim2 = self.l2.insert(line_addr, dirty=False)
        victim1 = self.l1.insert(line_addr, dirty=dirty)
        self._spill(victim1, self.l2)
        self._spill(victim2, self.l3)
        if victim is not None:
            # Inclusive hierarchy: L3 eviction invalidates inner copies,
            # inheriting their dirtiness.
            dirty_out = victim.dirty
            for inner in (self.l1, self.l2):
                dropped = inner.invalidate(victim.addr)
                if dropped is not None and dropped.dirty:
                    dirty_out = True
            if dirty_out:
                writebacks.append(victim.addr)
                if self.obs.enabled:
                    self.obs.instant(ev.EV_LLC_WRITEBACK, ev.TRACK_CPU,
                                     addr=victim.addr)
        return writebacks

    def load(self, line_addr: int) -> HierarchyResult:
        """A load instruction touching ``line_addr``."""
        for level, cache in enumerate(self._levels, start=1):
            if cache.lookup(line_addr) is not None:
                if level > 1:
                    # Promote into inner levels (no memory traffic).
                    if level > 2:
                        self._spill(self.l2.insert(line_addr), self.l3)
                    self._spill(self.l1.insert(line_addr), self.l2)
                return HierarchyResult(False, [], level)
        writebacks = self._install(line_addr, dirty=False)
        return HierarchyResult(True, writebacks, 0)

    def store(self, line_addr: int) -> HierarchyResult:
        """A plain store: write-allocate, dirty in L1, surfaces at memory
        only via later eviction."""
        line = self.l1.lookup(line_addr)
        if line is not None:
            line.dirty = True
            return HierarchyResult(False, [], 1)
        hit_level = 0
        for level, cache in ((2, self.l2), (3, self.l3)):
            if cache.lookup(line_addr) is not None:
                hit_level = level
                break
        miss = hit_level == 0
        writebacks = self._install(line_addr, dirty=True)
        return HierarchyResult(miss, writebacks, hit_level)

    def persist(self, line_addr: int) -> HierarchyResult:
        """A store + clwb + sfence: the line goes to the controller *now*
        and stays resident but clean."""
        hit_level = 0
        for level, cache in enumerate(self._levels, start=1):
            line = cache.lookup(line_addr)
            if line is not None:
                line.dirty = False
                if hit_level == 0:
                    hit_level = level
        writebacks: list[int] = []
        if hit_level == 0:
            writebacks = self._install(line_addr, dirty=False)
        # Persists always reach memory; miss_to_memory reports whether the
        # *allocation* needed a fill (write-allocate on miss).
        return HierarchyResult(hit_level == 0, writebacks, hit_level)

    def drop_all(self) -> list[int]:
        """Crash: drop every level, returning dirty line addresses (what an
        eADR flush would persist)."""
        dirty: set[int] = set()
        for cache in self._levels:
            for line in cache.drop_all():
                if line.dirty:
                    dirty.add(line.addr)
        return sorted(dirty)
