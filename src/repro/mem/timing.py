"""PCM timing model (Table II of the paper).

The paper models a DDR-based PCM main memory with
``tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns`` on a 2 GHz CPU.
We translate those DDR-protocol parameters into the two quantities the
trace-driven simulator needs:

* **read latency** — time from issuing a read to data back at the
  controller: a row activate (tRCD) plus CAS (tCL), i.e. 63 ns (126 cycles
  at 2 GHz).  Row-buffer hits skip the activate.
* **write service time** — time one write occupies the bank when drained
  from the write pending queue: write CAS delay (tCWD) plus the PCM write
  recovery time (tWR), i.e. 313 ns — writes are what make PCM slow, which is
  why every extra metadata persist hurts.

tFAW and tWTR shape bank-level parallelism in a full DDR model; our
single-queue drain model folds them into an effective drain bandwidth via
``banks`` (writes drain ``banks``-wide).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PCMTiming:
    """Raw DDR-protocol parameters, in nanoseconds (Table II defaults)."""

    t_rcd: float = 48.0
    t_cl: float = 15.0
    t_cwd: float = 13.0
    t_faw: float = 50.0
    t_wtr: float = 7.5
    t_wr: float = 300.0

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_cl", "t_cwd", "t_faw", "t_wtr", "t_wr"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    def to_dict(self) -> dict[str, float]:
        """Stable field-order dict (campaign cache keys, worker IPC)."""
        return {"t_rcd": self.t_rcd, "t_cl": self.t_cl,
                "t_cwd": self.t_cwd, "t_faw": self.t_faw,
                "t_wtr": self.t_wtr, "t_wr": self.t_wr}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "PCMTiming":
        return cls(**{k: float(v) for k, v in data.items()})

    @property
    def read_ns(self) -> float:
        """Array read latency: row activate + CAS."""
        return self.t_rcd + self.t_cl

    @property
    def row_hit_read_ns(self) -> float:
        """Read latency on a row-buffer hit: CAS only."""
        return self.t_cl

    @property
    def write_ns(self) -> float:
        """Bank occupancy of one drained write: CAS write delay + write
        recovery (the dominant PCM cost)."""
        return self.t_cwd + self.t_wr


@dataclass(frozen=True)
class TimingModel:
    """Converts PCM nanosecond parameters to CPU cycles and exposes the
    per-event costs used throughout the simulator."""

    pcm: PCMTiming = PCMTiming()
    cpu_ghz: float = 2.0
    banks: int = 8

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise ConfigError("cpu_ghz must be positive")
        if self.banks <= 0:
            raise ConfigError("banks must be positive")

    def ns_to_cycles(self, ns: float) -> int:
        """Convert nanoseconds to (rounded-up) CPU cycles."""
        return int(-(-ns * self.cpu_ghz // 1))

    @property
    def read_cycles(self) -> int:
        """CPU cycles for an NVM array read (row miss)."""
        return self.ns_to_cycles(self.pcm.read_ns)

    @property
    def row_hit_read_cycles(self) -> int:
        return self.ns_to_cycles(self.pcm.row_hit_read_ns)

    @property
    def write_service_cycles(self) -> int:
        """CPU cycles one write occupies a bank."""
        return self.ns_to_cycles(self.pcm.write_ns)

    @property
    def write_drain_cycles(self) -> int:
        """Effective cycles between WPQ drains with ``banks``-way
        parallelism (the steady-state write bandwidth of the device)."""
        return max(1, self.write_service_cycles // self.banks)
