"""The simulated NVM device: persistent line-granularity storage plus the
PCM timing behaviour from :mod:`repro.mem.timing`.

Everything written here survives a simulated crash — the device *is* the
persistent domain.  Volatile structures (caches, WPQ contents under plain
ADR-less operation) live elsewhere and are dropped by crash injection.

Storage is a sparse ``{line_address: bytes}`` map so multi-gigabyte
configurations cost only what is actually touched.  Reads of never-written
lines return zero lines, matching freshly-initialised media.
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.mem.address import CACHE_LINE_SIZE
from repro.mem.timing import TimingModel
from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER
from repro.util.stats import StatGroup

ZERO_LINE = bytes(CACHE_LINE_SIZE)
#: Lines per PCM row buffer (a 4 KB row).
LINES_PER_ROW = 64


class NVMDevice:
    """Byte-addressable persistent memory with PCM read/write timing.

    The device exposes *functional* access (:meth:`read_line`,
    :meth:`write_line`) and *timing* queries (:meth:`read_latency`), plus a
    per-bank open-row model: consecutive reads to the same 4 KB row hit the
    row buffer and skip the activate.
    """

    def __init__(self, capacity: int, timing: TimingModel | None = None,
                 stats: StatGroup | None = None,
                 track_wear: bool = False,
                 recorder=None) -> None:
        if capacity <= 0 or capacity % CACHE_LINE_SIZE:
            raise AddressError(
                f"capacity must be a positive multiple of {CACHE_LINE_SIZE}")
        self.capacity = capacity
        self.timing = timing or TimingModel()
        # Optional per-line wear tracking (endurance analysis); counted
        # writes only — peek/poke are injection machinery, not traffic.
        from repro.mem.wear import WearTracker
        self.wear: "WearTracker | None" = \
            WearTracker("nvm") if track_wear else None
        self._lines: dict[int, bytes] = {}
        self._open_rows: dict[int, int] = {}  # bank -> open row id
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.stats = stats or StatGroup("nvm")
        self._reads = self.stats.counter("reads")
        self._writes = self.stats.counter("writes")
        self._row_hits = self.stats.counter("row_buffer_hits")
        self._row_misses = self.stats.counter("row_buffer_misses")

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def _check(self, line_addr: int) -> None:
        if line_addr % CACHE_LINE_SIZE:
            raise AddressError(f"{line_addr:#x} is not line-aligned")
        if not 0 <= line_addr < self.capacity:
            raise AddressError(
                f"{line_addr:#x} outside device capacity {self.capacity:#x}")

    def read_line(self, line_addr: int) -> bytes:
        """Read one 64 B line (functional; counts an array read)."""
        self._check(line_addr)
        self._reads.value += 1
        hit = self._touch_row(line_addr)
        if self.obs.enabled:
            bank, _ = self._row_of(line_addr)
            self.obs.instant(ev.EV_NVM_READ, ev.TRACK_NVM,
                             addr=line_addr, bank=bank, row_hit=hit)
        return self._lines.get(line_addr, ZERO_LINE)

    def write_line(self, line_addr: int, data: bytes) -> None:
        """Persist one 64 B line."""
        self._check(line_addr)
        if len(data) != CACHE_LINE_SIZE:
            raise AddressError(
                f"line writes must be {CACHE_LINE_SIZE} bytes, "
                f"got {len(data)}")
        self._writes.value += 1
        hit = self._touch_row(line_addr)
        if self.obs.enabled:
            bank, _ = self._row_of(line_addr)
            self.obs.instant(ev.EV_NVM_WRITE, ev.TRACK_NVM,
                             addr=line_addr, bank=bank, row_hit=hit)
        if self.wear is not None:
            self.wear.record(line_addr)
        self._lines[line_addr] = bytes(data)

    def peek_line(self, line_addr: int) -> bytes:
        """Read without counting an access (for recovery-time inspection
        and attack injection, which are not part of measured traffic)."""
        self._check(line_addr)
        return self._lines.get(line_addr, ZERO_LINE)

    def poke_line(self, line_addr: int, data: bytes) -> None:
        """Write without counting an access (attack injection / test
        setup)."""
        self._check(line_addr)
        if len(data) != CACHE_LINE_SIZE:
            raise AddressError("poke_line needs a full line")
        self._lines[line_addr] = bytes(data)

    @property
    def lines_written(self) -> int:
        """Distinct lines ever stored (media footprint)."""
        return len(self._lines)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _row_of(self, line_addr: int) -> tuple[int, int]:
        row = line_addr // (CACHE_LINE_SIZE * LINES_PER_ROW)
        bank = row % self.timing.banks
        return bank, row

    def _touch_row(self, line_addr: int) -> bool:
        """Update the open-row state; returns True on a row-buffer hit."""
        bank, row = self._row_of(line_addr)
        hit = self._open_rows.get(bank) == row
        self._open_rows[bank] = row
        if hit:
            self._row_hits.value += 1
        else:
            self._row_misses.value += 1
        return hit

    def read_latency(self, line_addr: int) -> int:
        """Cycles for a read issued now (consults the open-row state
        without modifying it — call before :meth:`read_line`)."""
        bank, row = self._row_of(line_addr)
        if self._open_rows.get(bank) == row:
            return self.timing.row_hit_read_cycles
        return self.timing.read_cycles

    @property
    def write_drain_cycles(self) -> int:
        """Steady-state cycles between WPQ drains (device write
        bandwidth)."""
        return self.timing.write_drain_cycles
