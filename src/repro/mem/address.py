"""Physical address map of the simulated secure NVM.

The NVM is carved into three regions, mirroring how secure-memory papers
(including SCUE) lay out media:

* ``DATA``     — user data lines (what the CPU reads/writes),
* ``COUNTER``  — CME counter blocks, one 64 B block per 64 data lines;
  these double as the *leaf nodes* of the SGX-style integrity tree,
* ``TREE``     — intermediate SIT/BMT nodes, level by level bottom-up.

All traffic is in 64-byte lines.  The :class:`AddressMap` owns the geometry
and every translation used elsewhere: data line -> covering counter block,
counter index within the block, tree (level, index) -> line address, and
back.  Centralising this removes a whole class of off-by-one bugs between
the schemes, recovery code and attack injection, all of which address the
same media image.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import AddressError, ConfigError

CACHE_LINE_SIZE = 64
#: Data lines covered by one CME counter block (64 minor counters).
LINES_PER_COUNTER_BLOCK = 64
#: Default fan-out of the SGX-style integrity tree (8 counters per node).
TREE_ARITY = 8
#: Tree-node counter widths that pack exactly into a 64 B line alongside
#: the 64-bit HMAC, per arity (VAULT-style wider nodes trade counter
#: width for fan-out: arity x bits + 64 == 512).
COUNTER_BITS_FOR_ARITY = {8: 56, 16: 28, 32: 14}


class Region(Enum):
    """Which media region a line address belongs to."""

    DATA = "data"
    COUNTER = "counter"
    TREE = "tree"


@dataclass(frozen=True)
class AddressMap:
    """Geometry of the simulated NVM and all address translations.

    Parameters
    ----------
    data_capacity:
        Bytes of user-data space.  Must be a multiple of
        ``CACHE_LINE_SIZE * LINES_PER_COUNTER_BLOCK`` so that every counter
        block is fully populated.
    tree_levels:
        Optional override of the integrity-tree height (number of levels
        *excluding* the on-chip root, counting the counter-block leaf level
        as level 0).  By default the minimum height that lets a single
        on-chip root node (``arity`` counters) cover all leaves is used.
        The paper's Table II uses a 9-level tree; pass ``tree_levels=9``
        with a matching capacity to replicate it.
    arity:
        Tree fan-out (counters per node).  8 is the paper's SIT; 16/32
        model VAULT/MorphCtr-style wide nodes (narrower counters, shorter
        trees — §VII).
    """

    data_capacity: int
    tree_levels: int | None = None
    arity: int = TREE_ARITY

    def __post_init__(self) -> None:
        if self.arity not in COUNTER_BITS_FOR_ARITY:
            raise ConfigError(
                f"unsupported tree arity {self.arity}; choose from "
                f"{sorted(COUNTER_BITS_FOR_ARITY)}")
        block_bytes = CACHE_LINE_SIZE * LINES_PER_COUNTER_BLOCK
        if self.data_capacity <= 0 or self.data_capacity % block_bytes:
            raise ConfigError(
                "data_capacity must be a positive multiple of "
                f"{block_bytes} bytes, got {self.data_capacity}")
        needed = self._min_levels(self.num_counter_blocks)
        if self.tree_levels is None:
            object.__setattr__(self, "tree_levels", needed)
        elif self.tree_levels < needed:
            raise ConfigError(
                f"tree_levels={self.tree_levels} too small: "
                f"{self.num_counter_blocks} leaves need >= {needed} levels")

    @property
    def counter_bits(self) -> int:
        """Width of a tree-node counter for this arity (64 B layout)."""
        return COUNTER_BITS_FOR_ARITY[self.arity]

    def _min_levels(self, leaves: int) -> int:
        """Minimum levels (leaf level included) so the root's counters
        cover all leaves, i.e. arity**levels >= leaves."""
        levels = 1
        cover = self.arity
        while cover < leaves:
            cover *= self.arity
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def num_data_lines(self) -> int:
        return self.data_capacity // CACHE_LINE_SIZE

    @property
    def num_counter_blocks(self) -> int:
        return self.num_data_lines // LINES_PER_COUNTER_BLOCK

    def level_width(self, level: int) -> int:
        """Number of nodes at tree ``level`` (level 0 = counter blocks).

        The root (level ``tree_levels``) is on-chip and has width 1; it is
        still addressable through this method for recovery arithmetic.
        """
        if level < 0 or level > self.tree_levels:
            raise AddressError(f"level {level} out of range "
                               f"[0, {self.tree_levels}]")
        if level == self.tree_levels:
            return 1
        width = self.num_counter_blocks
        for _ in range(level):
            width = -(-width // self.arity)  # ceil division
        return width

    @property
    def num_tree_nodes(self) -> int:
        """Total *in-memory* tree nodes: levels 1 .. tree_levels-1 (level 0
        is the counter region; the root never touches media)."""
        return sum(self.level_width(lv) for lv in range(1, self.tree_levels))

    # ------------------------------------------------------------------
    # Region base addresses (line-granularity, bytes)
    # ------------------------------------------------------------------
    @property
    def counter_base(self) -> int:
        return self.data_capacity

    @property
    def tree_base(self) -> int:
        return self.counter_base + self.num_counter_blocks * CACHE_LINE_SIZE

    @property
    def total_capacity(self) -> int:
        return self.tree_base + self.num_tree_nodes * CACHE_LINE_SIZE

    # ------------------------------------------------------------------
    # Classification and translation
    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Line-align a byte address."""
        return addr & ~(CACHE_LINE_SIZE - 1)

    def region_of(self, addr: int) -> Region:
        """Classify a byte address into its media region."""
        if 0 <= addr < self.counter_base:
            return Region.DATA
        if addr < self.tree_base:
            return Region.COUNTER
        if addr < self.total_capacity:
            return Region.TREE
        raise AddressError(f"address {addr:#x} beyond media "
                           f"({self.total_capacity:#x})")

    def data_line_index(self, addr: int) -> int:
        """Index of the data line containing byte address ``addr``."""
        if self.region_of(addr) is not Region.DATA:
            raise AddressError(f"{addr:#x} is not a data address")
        return addr // CACHE_LINE_SIZE

    def counter_block_of_data(self, addr: int) -> int:
        """Index of the counter block covering data byte address ``addr``."""
        return self.data_line_index(addr) // LINES_PER_COUNTER_BLOCK

    def minor_slot_of_data(self, addr: int) -> int:
        """Minor-counter slot (0..63) for data byte address ``addr``."""
        return self.data_line_index(addr) % LINES_PER_COUNTER_BLOCK

    def counter_block_addr(self, block_index: int) -> int:
        """Media line address of counter block ``block_index``."""
        if not 0 <= block_index < self.num_counter_blocks:
            raise AddressError(f"counter block {block_index} out of range")
        return self.counter_base + block_index * CACHE_LINE_SIZE

    def counter_block_index(self, addr: int) -> int:
        """Inverse of :func:`counter_block_addr`."""
        if self.region_of(addr) is not Region.COUNTER:
            raise AddressError(f"{addr:#x} is not a counter-block address")
        return (addr - self.counter_base) // CACHE_LINE_SIZE

    def tree_node_addr(self, level: int, index: int) -> int:
        """Media line address of tree node ``(level, index)``.

        Level 0 maps into the counter region (leaves *are* counter blocks);
        the root has no media address and raises."""
        if level == 0:
            return self.counter_block_addr(index)
        if level >= self.tree_levels:
            raise AddressError("the root is on-chip and has no media address")
        if not 0 <= index < self.level_width(level):
            raise AddressError(
                f"node index {index} out of range at level {level}")
        offset = sum(self.level_width(lv) for lv in range(1, level))
        return self.tree_base + (offset + index) * CACHE_LINE_SIZE

    def tree_node_coords(self, addr: int) -> tuple[int, int]:
        """Inverse of :func:`tree_node_addr` for counter/tree addresses."""
        region = self.region_of(addr)
        if region is Region.COUNTER:
            return 0, self.counter_block_index(addr)
        if region is not Region.TREE:
            raise AddressError(f"{addr:#x} is not a metadata address")
        slot = (addr - self.tree_base) // CACHE_LINE_SIZE
        for level in range(1, self.tree_levels):
            width = self.level_width(level)
            if slot < width:
                return level, slot
            slot -= width
        raise AddressError(f"{addr:#x} beyond tree region")

    def parent_coords(self, level: int, index: int) -> tuple[int, int]:
        """Coordinates of the parent of node ``(level, index)``; the parent
        of a level ``tree_levels - 1`` node is the on-chip root."""
        if level >= self.tree_levels:
            raise AddressError("the root has no parent")
        return level + 1, index // self.arity

    def parent_slot(self, index: int) -> int:
        """Which of the parent's ``arity`` counters covers child
        ``index``."""
        return index % self.arity

    def child_coords(self, level: int, index: int) -> list[tuple[int, int]]:
        """Coordinates of the (up to 8) children of node ``(level, index)``
        that actually exist given the leaf count."""
        if level <= 0:
            raise AddressError("counter blocks have no metadata children")
        lo = index * self.arity
        hi = min(lo + self.arity, self.level_width(level - 1))
        return [(level - 1, i) for i in range(lo, hi)]

    def branch_coords(self, block_index: int) -> list[tuple[int, int]]:
        """Coordinates of every in-memory node on the branch from counter
        block ``block_index`` up to (excluding) the root, leaf first."""
        coords: list[tuple[int, int]] = [(0, block_index)]
        level, index = 0, block_index
        while level + 1 < self.tree_levels:
            level, index = self.parent_coords(level, index)
            coords.append((level, index))
        return coords
