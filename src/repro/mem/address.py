"""Physical address map of the simulated secure NVM.

The NVM is carved into three regions, mirroring how secure-memory papers
(including SCUE) lay out media:

* ``DATA``     — user data lines (what the CPU reads/writes),
* ``COUNTER``  — CME counter blocks, one 64 B block per 64 data lines;
  these double as the *leaf nodes* of the SGX-style integrity tree,
* ``TREE``     — intermediate SIT/BMT nodes, level by level bottom-up.

All traffic is in 64-byte lines.  The :class:`AddressMap` owns the geometry
and every translation used elsewhere: data line -> covering counter block,
counter index within the block, tree (level, index) -> line address, and
back.  Centralising this removes a whole class of off-by-one bugs between
the schemes, recovery code and attack injection, all of which address the
same media image.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import AddressError, ConfigError

CACHE_LINE_SIZE = 64
#: Data lines covered by one CME counter block (64 minor counters).
LINES_PER_COUNTER_BLOCK = 64
#: Default fan-out of the SGX-style integrity tree (8 counters per node).
TREE_ARITY = 8
#: Tree-node counter widths that pack exactly into a 64 B line alongside
#: the 64-bit HMAC, per arity (VAULT-style wider nodes trade counter
#: width for fan-out: arity x bits + 64 == 512).
COUNTER_BITS_FOR_ARITY = {8: 56, 16: 28, 32: 14}


class Region(Enum):
    """Which media region a line address belongs to."""

    DATA = "data"
    COUNTER = "counter"
    TREE = "tree"


@dataclass(frozen=True)
class AddressMap:
    """Geometry of the simulated NVM and all address translations.

    Parameters
    ----------
    data_capacity:
        Bytes of user-data space.  Must be a multiple of
        ``CACHE_LINE_SIZE * LINES_PER_COUNTER_BLOCK`` so that every counter
        block is fully populated.
    tree_levels:
        Optional override of the integrity-tree height (number of levels
        *excluding* the on-chip root, counting the counter-block leaf level
        as level 0).  By default the minimum height that lets a single
        on-chip root node (``arity`` counters) cover all leaves is used.
        The paper's Table II uses a 9-level tree; pass ``tree_levels=9``
        with a matching capacity to replicate it.
    arity:
        Tree fan-out (counters per node).  8 is the paper's SIT; 16/32
        model VAULT/MorphCtr-style wide nodes (narrower counters, shorter
        trees — §VII).
    """

    data_capacity: int
    tree_levels: int | None = None
    arity: int = TREE_ARITY

    def __post_init__(self) -> None:
        if self.arity not in COUNTER_BITS_FOR_ARITY:
            raise ConfigError(
                f"unsupported tree arity {self.arity}; choose from "
                f"{sorted(COUNTER_BITS_FOR_ARITY)}")
        block_bytes = CACHE_LINE_SIZE * LINES_PER_COUNTER_BLOCK
        if self.data_capacity <= 0 or self.data_capacity % block_bytes:
            raise ConfigError(
                "data_capacity must be a positive multiple of "
                f"{block_bytes} bytes, got {self.data_capacity}")
        leaves = self.data_capacity // block_bytes
        needed = self._min_levels(leaves)
        if self.tree_levels is None:
            object.__setattr__(self, "tree_levels", needed)
        elif self.tree_levels < needed:
            raise ConfigError(
                f"tree_levels={self.tree_levels} too small: "
                f"{leaves} leaves need >= {needed} levels")
        self._precompute()

    def _precompute(self) -> None:
        """Derive and freeze the whole geometry once.

        Every translation below is on the simulator's per-access path;
        recomputing level widths and region bases per call dominated the
        address-translation profile, so the constructor computes them all
        and the hot methods reduce to table lookups and one multiply.
        The cached attributes are set via ``object.__setattr__`` (the
        dataclass is frozen) and are *not* dataclass fields, so equality
        and hashing still depend only on the declared geometry.
        """
        set_ = object.__setattr__
        blocks = self.data_capacity // (CACHE_LINE_SIZE
                                        * LINES_PER_COUNTER_BLOCK)
        widths = [blocks]
        for _ in range(1, self.tree_levels):
            widths.append(-(-widths[-1] // self.arity))
        widths.append(1)  # the on-chip root
        # Cumulative node counts below each in-memory tree level, so
        # tree_node_addr is O(1): offsets[level] == sum(widths[1:level]).
        offsets = [0, 0]
        for level in range(2, self.tree_levels):
            offsets.append(offsets[-1] + widths[level - 1])
        set_(self, "_widths", tuple(widths))
        set_(self, "_tree_offsets", tuple(offsets))
        set_(self, "_num_counter_blocks", blocks)
        set_(self, "_num_tree_nodes", sum(widths[1:self.tree_levels]))
        tree_base = self.data_capacity + blocks * CACHE_LINE_SIZE
        set_(self, "_tree_base", tree_base)
        set_(self, "_total_capacity",
             tree_base + sum(widths[1:self.tree_levels]) * CACHE_LINE_SIZE)
        # Interned branch chains, filled lazily per leaf (a fig10-quick
        # run walks the same few thousand branches millions of times).
        set_(self, "_branch_cache", {})
        set_(self, "_branch_addr_cache", {})

    @property
    def counter_bits(self) -> int:
        """Width of a tree-node counter for this arity (64 B layout)."""
        return COUNTER_BITS_FOR_ARITY[self.arity]

    def _min_levels(self, leaves: int) -> int:
        """Minimum levels (leaf level included) so the root's counters
        cover all leaves, i.e. arity**levels >= leaves."""
        levels = 1
        cover = self.arity
        while cover < leaves:
            cover *= self.arity
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def num_data_lines(self) -> int:
        return self.data_capacity // CACHE_LINE_SIZE

    @property
    def num_counter_blocks(self) -> int:
        return self._num_counter_blocks

    def level_width(self, level: int) -> int:
        """Number of nodes at tree ``level`` (level 0 = counter blocks).

        The root (level ``tree_levels``) is on-chip and has width 1; it is
        still addressable through this method for recovery arithmetic.
        """
        if level < 0 or level > self.tree_levels:
            raise AddressError(f"level {level} out of range "
                               f"[0, {self.tree_levels}]")
        return self._widths[level]

    @property
    def num_tree_nodes(self) -> int:
        """Total *in-memory* tree nodes: levels 1 .. tree_levels-1 (level 0
        is the counter region; the root never touches media)."""
        return self._num_tree_nodes

    # ------------------------------------------------------------------
    # Region base addresses (line-granularity, bytes)
    # ------------------------------------------------------------------
    @property
    def counter_base(self) -> int:
        return self.data_capacity

    @property
    def tree_base(self) -> int:
        return self._tree_base

    @property
    def total_capacity(self) -> int:
        return self._total_capacity

    # ------------------------------------------------------------------
    # Classification and translation
    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Line-align a byte address."""
        return addr & ~(CACHE_LINE_SIZE - 1)

    def region_of(self, addr: int) -> Region:
        """Classify a byte address into its media region."""
        if 0 <= addr < self.data_capacity:
            return Region.DATA
        if addr < self._tree_base:
            return Region.COUNTER
        if addr < self._total_capacity:
            return Region.TREE
        raise AddressError(f"address {addr:#x} beyond media "
                           f"({self._total_capacity:#x})")

    def data_line_index(self, addr: int) -> int:
        """Index of the data line containing byte address ``addr``."""
        if 0 <= addr < self.data_capacity:
            return addr // CACHE_LINE_SIZE
        self.region_of(addr)  # beyond-media addresses raise there
        raise AddressError(f"{addr:#x} is not a data address")

    def counter_block_of_data(self, addr: int) -> int:
        """Index of the counter block covering data byte address ``addr``."""
        return self.data_line_index(addr) // LINES_PER_COUNTER_BLOCK

    def minor_slot_of_data(self, addr: int) -> int:
        """Minor-counter slot (0..63) for data byte address ``addr``."""
        return self.data_line_index(addr) % LINES_PER_COUNTER_BLOCK

    def counter_block_addr(self, block_index: int) -> int:
        """Media line address of counter block ``block_index``."""
        if not 0 <= block_index < self._num_counter_blocks:
            raise AddressError(f"counter block {block_index} out of range")
        return self.data_capacity + block_index * CACHE_LINE_SIZE

    def counter_block_index(self, addr: int) -> int:
        """Inverse of :func:`counter_block_addr`."""
        if self.region_of(addr) is not Region.COUNTER:
            raise AddressError(f"{addr:#x} is not a counter-block address")
        return (addr - self.counter_base) // CACHE_LINE_SIZE

    def tree_node_addr(self, level: int, index: int) -> int:
        """Media line address of tree node ``(level, index)``.

        Level 0 maps into the counter region (leaves *are* counter blocks);
        the root has no media address and raises."""
        if level == 0:
            return self.counter_block_addr(index)
        if level < 0 or level >= self.tree_levels:
            raise AddressError("the root is on-chip and has no media address")
        if not 0 <= index < self._widths[level]:
            raise AddressError(
                f"node index {index} out of range at level {level}")
        return self._tree_base \
            + (self._tree_offsets[level] + index) * CACHE_LINE_SIZE

    def tree_node_coords(self, addr: int) -> tuple[int, int]:
        """Inverse of :func:`tree_node_addr` for counter/tree addresses."""
        region = self.region_of(addr)
        if region is Region.COUNTER:
            return 0, self.counter_block_index(addr)
        if region is not Region.TREE:
            raise AddressError(f"{addr:#x} is not a metadata address")
        slot = (addr - self.tree_base) // CACHE_LINE_SIZE
        for level in range(1, self.tree_levels):
            width = self.level_width(level)
            if slot < width:
                return level, slot
            slot -= width
        raise AddressError(f"{addr:#x} beyond tree region")

    def parent_coords(self, level: int, index: int) -> tuple[int, int]:
        """Coordinates of the parent of node ``(level, index)``; the parent
        of a level ``tree_levels - 1`` node is the on-chip root."""
        if level >= self.tree_levels:
            raise AddressError("the root has no parent")
        return level + 1, index // self.arity

    def parent_slot(self, index: int) -> int:
        """Which of the parent's ``arity`` counters covers child
        ``index``."""
        return index % self.arity

    def child_coords(self, level: int, index: int) -> list[tuple[int, int]]:
        """Coordinates of the (up to 8) children of node ``(level, index)``
        that actually exist given the leaf count."""
        if level <= 0:
            raise AddressError("counter blocks have no metadata children")
        lo = index * self.arity
        hi = min(lo + self.arity, self.level_width(level - 1))
        return [(level - 1, i) for i in range(lo, hi)]

    def branch_coords(self, block_index: int) -> tuple[tuple[int, int], ...]:
        """Coordinates of every in-memory node on the branch from counter
        block ``block_index`` up to (excluding) the root, leaf first.

        Chains are interned: the first request for a leaf computes its
        branch, later requests return the same immutable tuple (branch
        walks re-derive this on every access, so the memo removes a whole
        per-access allocation chain).
        """
        cached = self._branch_cache.get(block_index)
        if cached is not None:
            return cached
        coords = [(0, block_index)]
        level, index, arity = 0, block_index, self.arity
        while level + 1 < self.tree_levels:
            level, index = level + 1, index // arity
            coords.append((level, index))
        chain = tuple(coords)
        self._branch_cache[block_index] = chain
        return chain

    def branch_addrs(self, block_index: int) -> tuple[int, ...]:
        """Media line addresses of :func:`branch_coords`, leaf first.

        Interned like the coordinate chains: persist paths that walk a
        branch (PLP shadow writes, the epoch engine's scheme tails) hit
        one dict probe instead of re-deriving ``tree_node_addr`` per
        node per access.
        """
        cached = self._branch_addr_cache.get(block_index)
        if cached is not None:
            return cached
        addrs = tuple(self.tree_node_addr(level, index)
                      for level, index in self.branch_coords(block_index))
        self._branch_addr_cache[block_index] = addrs
        return addrs
