"""The memory controller's write pending queue (WPQ).

Table II: 64 entries with tags for user data, 10 entries without tags for
security metadata.  The WPQ sits inside the ADR persistence domain — on a
crash, entries already accepted into the WPQ are flushed to media (Intel
ADR semantics, §I) — so "accepted into the WPQ" is the simulator's
definition of *persisted* for user data and metadata alike.

Timing-wise the WPQ decouples CPU-visible write latency from the slow PCM
write: a write completes when it gets a free entry.  Back-pressure (a full
queue) is the mechanism by which schemes that generate extra metadata
traffic slow execution down, so drain modelling matters: the queue drains
one entry per ``drain_cycles`` of simulated time, driven by
:meth:`advance_to`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER
from repro.util.stats import StatGroup


@dataclass(slots=True)
class WPQEntry:
    """One queued write: target line and the cycle it entered the queue."""

    line_addr: int
    enqueued_at: int
    is_metadata: bool = False


class WritePendingQueue:
    """Fixed-capacity write queue with time-driven drain.

    The queue holds both user-data writes (``data_entries`` slots) and
    security-metadata writes (``metadata_entries`` slots), matching the
    split in Table II.  :meth:`enqueue` returns the number of *stall
    cycles* the producer must wait for a slot — zero when the queue has
    room.
    """

    def __init__(self, data_entries: int = 64, metadata_entries: int = 10,
                 drain_cycles: int = 39,
                 stats: StatGroup | None = None,
                 recorder=None) -> None:
        if data_entries <= 0 or metadata_entries <= 0:
            raise ConfigError("WPQ sizes must be positive")
        if drain_cycles <= 0:
            raise ConfigError("drain_cycles must be positive")
        self.data_capacity = data_entries
        self.metadata_capacity = metadata_entries
        self.drain_cycles = drain_cycles
        self._data: deque[WPQEntry] = deque()
        self._metadata: deque[WPQEntry] = deque()
        self._next_drain_at = 0
        self._now = 0
        self.obs = recorder if recorder is not None else NULL_RECORDER
        group = stats or StatGroup("wpq")
        self.stats = group
        self._enqueued = group.counter("enqueued")
        self._meta_enqueued = group.counter("metadata_enqueued")
        self._drained = group.counter("drained")
        self._stall = group.counter("stall_cycles")
        self._full_events = group.counter("full_events")

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self._now

    def occupancy(self, metadata: bool = False) -> int:
        return len(self._metadata) if metadata else len(self._data)

    def advance_to(self, cycle: int) -> None:
        """Move simulated time forward, draining entries the device had
        bandwidth for.  Metadata and data share the drain port; metadata is
        drained preferentially (it is a small queue that must not clog)."""
        if cycle < self._now:
            return
        self._now = cycle
        while (self._data or self._metadata) \
                and self._next_drain_at <= self._now:
            self._pop_one()
            self._next_drain_at += self.drain_cycles
        if not self._data and not self._metadata:
            # Idle queue: next drain can start as soon as work arrives.
            self._next_drain_at = max(self._next_drain_at, self._now)

    def _pop_one(self) -> WPQEntry:
        entry = (self._metadata.popleft() if self._metadata
                 else self._data.popleft())
        self._drained.add()
        if self.obs.enabled:
            self.obs.instant(ev.EV_WPQ_DRAIN, ev.TRACK_WPQ,
                             ts=max(self._next_drain_at, entry.enqueued_at),
                             addr=entry.line_addr,
                             metadata=entry.is_metadata,
                             queued_cycles=self._now - entry.enqueued_at)
        return entry

    def enqueue(self, line_addr: int, cycle: int,
                metadata: bool = False) -> int:
        """Accept a write at ``cycle``; returns producer stall cycles.

        If the relevant partition is full, time advances (draining) until a
        slot frees up, and the wait is returned as the stall.
        """
        self.advance_to(cycle)
        queue = self._metadata if metadata else self._data
        capacity = self.metadata_capacity if metadata else self.data_capacity
        stall = 0
        if len(queue) >= capacity:
            self._full_events.add()
            # Wait for enough drains to free a slot in this partition.
            while len(queue) >= capacity:
                wait_until = max(self._next_drain_at, self._now + 1)
                stall += wait_until - self._now
                self.advance_to(wait_until)
        if not self._data and not self._metadata:
            # Queue going busy: the first drain completes one service
            # time from now, not instantaneously.
            self._next_drain_at = self._now + self.drain_cycles
        queue.append(WPQEntry(line_addr, self._now, metadata))
        if metadata:
            self._meta_enqueued.add()
        else:
            self._enqueued.add()
        if stall:
            self._stall.add(stall)
        if self.obs.enabled:
            self.obs.instant(ev.EV_WPQ_ENQUEUE, ev.TRACK_WPQ, ts=cycle,
                             addr=line_addr, metadata=metadata,
                             occupancy=len(queue), stall=stall)
            if stall:
                self.obs.instant(ev.EV_WPQ_STALL, ev.TRACK_WPQ, ts=cycle,
                                 addr=line_addr, metadata=metadata,
                                 stall=stall)
        return stall

    def flush(self) -> list[WPQEntry]:
        """Drain everything immediately (ADR flush-on-crash; also used at
        clean shutdown).  Returns the flushed entries in drain order."""
        flushed: list[WPQEntry] = []
        while self._metadata:
            flushed.append(self._metadata.popleft())
        while self._data:
            flushed.append(self._data.popleft())
        return flushed

    def __len__(self) -> int:
        return len(self._data) + len(self._metadata)
