"""NVM wear tracking and Start-Gap wear levelling.

The paper motivates SIT partly through endurance: PCM cells survive only
10^7-10^12 writes (§II-D3), which is why 56-bit counters "never overflow
within the lifetime of an NVM".  Write *distribution* matters just as
much: a scheme that hammers the same metadata lines (PLP persists the
whole branch — including the tree's top — on every write) wears its
hottest line orders of magnitude faster than one that touches high levels
only on eviction (SCUE).

:class:`WearTracker` records per-line write counts and produces the
hotspot statistics the endurance ablation reports.  :class:`StartGap`
implements Qureshi et al.'s Start-Gap wear levelling (MICRO'09, the
paper's [40]): one gap line rotates through the region, shifting the
logical-to-physical mapping by one line every ``gap_interval`` writes, so
a write hotspot is smeared across physical lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class WearReport:
    """Summary of a region's write distribution."""

    region: str
    total_writes: int
    lines_touched: int
    max_writes: int
    hottest_line: int
    mean_writes: float

    @property
    def imbalance(self) -> float:
        """Hottest line vs the mean — 1.0 is perfectly level."""
        return self.max_writes / self.mean_writes if self.mean_writes \
            else 0.0

    def lifetime_fraction(self, endurance: float = 1e8) -> float:
        """Fraction of cell endurance the hottest line has consumed."""
        return self.max_writes / endurance


class WearTracker:
    """Per-line write counters over an address range."""

    def __init__(self, name: str = "nvm") -> None:
        self.name = name
        self._writes: dict[int, int] = {}

    def record(self, line_addr: int) -> None:
        self._writes[line_addr] = self._writes.get(line_addr, 0) + 1

    def writes_to(self, line_addr: int) -> int:
        return self._writes.get(line_addr, 0)

    def report(self, lo: int = 0, hi: int | None = None,
               region: str = "all") -> WearReport:
        """Distribution over lines in ``[lo, hi)``."""
        counts = {addr: n for addr, n in self._writes.items()
                  if addr >= lo and (hi is None or addr < hi)}
        if not counts:
            return WearReport(region, 0, 0, 0, lo, 0.0)
        hottest = max(counts, key=counts.get)
        total = sum(counts.values())
        return WearReport(
            region=region,
            total_writes=total,
            lines_touched=len(counts),
            max_writes=counts[hottest],
            hottest_line=hottest,
            mean_writes=total / len(counts))

    def top_lines(self, n: int = 10,
                  lo: int = 0, hi: int | None = None) -> list[tuple[int, int]]:
        """The ``n`` most-written lines in the range, hottest first."""
        counts = [(addr, c) for addr, c in self._writes.items()
                  if addr >= lo and (hi is None or addr < hi)]
        counts.sort(key=lambda item: item[1], reverse=True)
        return counts[:n]


class StartGap:
    """Start-Gap wear levelling over a line region (Qureshi et al.).

    The region holds ``lines`` logical lines in ``lines + 1`` physical
    slots; one slot is the *gap*.  Every ``gap_interval`` writes the gap
    swallows its neighbour (one line copy) and moves down one slot; when
    it has traversed the whole region, ``start`` advances by one.  The
    resulting mapping is ``physical = (logical + start) % (lines + 1)``,
    adjusted around the gap — so a fixed logical hotspot drifts across all
    physical slots over time.
    """

    def __init__(self, lines: int, gap_interval: int = 100) -> None:
        if lines <= 0:
            raise ConfigError("Start-Gap needs a positive region size")
        if gap_interval <= 0:
            raise ConfigError("gap_interval must be positive")
        self.lines = lines
        self.gap_interval = gap_interval
        self.start = 0
        self.gap = lines           # gap begins in the spare slot
        self._writes_since_move = 0
        self.gap_moves = 0
        self.extra_writes = 0      # line copies performed by gap moves

    def translate(self, logical: int) -> int:
        """Logical line index -> physical slot index (the original
        paper's mapping: rotate by ``start`` over N slots, then skip the
        gap).  Always lands in ``[0, lines]`` and never on the gap."""
        if not 0 <= logical < self.lines:
            raise ConfigError(f"logical line {logical} out of range")
        physical = (logical + self.start) % self.lines
        if physical >= self.gap:
            physical += 1
        return physical

    def on_write(self) -> bool:
        """Account one write to the region; returns True when the gap
        moved (costing one extra line copy)."""
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_interval:
            return False
        self._writes_since_move = 0
        self.gap_moves += 1
        self.extra_writes += 1
        if self.gap == 0:
            self.gap = self.lines
            self.start = (self.start + 1) % self.lines
        else:
            self.gap -= 1
        return True

    def physical_spread(self, logical: int, writes: int) -> set[int]:
        """Simulate ``writes`` consecutive writes to one logical line and
        return the distinct physical slots they land in (analysis helper
        for the endurance ablation)."""
        touched: set[int] = set()
        for _ in range(writes):
            touched.add(self.translate(logical))
            self.on_write()
        return touched
