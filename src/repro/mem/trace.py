"""Memory-access trace records.

Workloads (persistent data structures, SPEC-like generators) produce a
stream of :class:`MemoryAccess` records; the system simulator consumes
them.  A record models one memory *instruction*: loads, stores, and
persistent stores (a store followed by a cacheline flush + fence, the
``clwb``/``sfence`` idiom of persistent-memory code).  ``gap`` carries the
number of non-memory instructions executed since the previous record, so a
trace fully determines the instruction stream without storing every ALU op.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum


class AccessType(Enum):
    """Kind of memory instruction."""

    READ = "read"
    WRITE = "write"          # plain store (persists on cache eviction)
    PERSIST = "persist"      # store + clwb + sfence (forced to NVM now)


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One memory instruction in a workload trace.

    Attributes
    ----------
    kind:      load / store / persistent store.
    addr:      byte address in the user-data region.
    gap:       non-memory instructions since the previous access (CPI-1
               work the core does between memory ops).
    data:      optional payload for functional simulation; ``None`` means
               "don't care", and the system synthesises a deterministic
               pattern so integrity checks still exercise real bytes.
    """

    kind: AccessType
    addr: int
    gap: int = 1
    data: bytes | None = None


@dataclass
class TraceStats:
    """Aggregate shape of a trace — used by tests and by benchmark
    reporting to sanity-check generated workloads (e.g. the paper's ~50%
    memory-instruction share)."""

    reads: int = 0
    writes: int = 0
    persists: int = 0
    gap_instructions: int = 0
    footprint: set[int] = field(default_factory=set)

    @property
    def memory_instructions(self) -> int:
        return self.reads + self.writes + self.persists

    @property
    def total_instructions(self) -> int:
        return self.memory_instructions + self.gap_instructions

    @property
    def memory_share(self) -> float:
        total = self.total_instructions
        return self.memory_instructions / total if total else 0.0

    def observe(self, access: MemoryAccess) -> None:
        if access.kind is AccessType.READ:
            self.reads += 1
        elif access.kind is AccessType.WRITE:
            self.writes += 1
        else:
            self.persists += 1
        self.gap_instructions += access.gap
        self.footprint.add(access.addr & ~63)


def collect_stats(trace: Iterable[MemoryAccess]) -> TraceStats:
    """Run through a trace accumulating :class:`TraceStats`."""
    stats = TraceStats()
    for access in trace:
        stats.observe(access)
    return stats


def tee_stats(trace: Iterable[MemoryAccess],
              stats: TraceStats) -> Iterator[MemoryAccess]:
    """Yield the trace unchanged while accumulating ``stats`` — lets the
    driver both run and characterise a single-pass generator."""
    for access in trace:
        stats.observe(access)
        yield access
