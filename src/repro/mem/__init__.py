"""Memory substrate: address map, PCM timing, the NVM device, on-chip
caches, the write pending queue, and the memory-access trace format."""

from repro.mem.address import AddressMap, CACHE_LINE_SIZE, Region
from repro.mem.cache import CacheStats, SetAssociativeCache
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.nvm import NVMDevice
from repro.mem.timing import PCMTiming, TimingModel
from repro.mem.trace import AccessType, MemoryAccess, TraceStats
from repro.mem.wpq import WritePendingQueue

__all__ = [
    "AddressMap",
    "CACHE_LINE_SIZE",
    "Region",
    "SetAssociativeCache",
    "CacheStats",
    "CacheHierarchy",
    "NVMDevice",
    "PCMTiming",
    "TimingModel",
    "AccessType",
    "MemoryAccess",
    "TraceStats",
    "WritePendingQueue",
]
