"""A generic set-associative, write-back, LRU cache.

Used three ways in the simulated system:

* the CPU-side L1/L2/L3 data caches (tag-only: hit/miss behaviour and
  writeback addresses matter, contents travel through the model elsewhere),
* the security-metadata cache in the memory controller (256 KB in Table II)
  which caches counter blocks and tree nodes *with* their contents, and
* the unbounded non-volatile metadata cache (nvMC) of the BMF-ideal
  baseline (associativity ``0`` means fully-unbounded, never evicts).

Eviction returns the victim so callers can model writebacks; dirty state is
tracked per line.  Payloads are arbitrary Python objects (tree nodes,
counter blocks) — the cache is a *placement* model, not a byte store.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.util.stats import StatCounter, StatGroup


@dataclass(slots=True)
class CacheLine:
    """One resident line: its address, dirtiness, and optional payload."""

    addr: int
    dirty: bool = False
    payload: Any = None


class CacheStats:
    """Read-only view over a cache's :class:`StatGroup` counters.

    The ``StatGroup`` counters are the single source of truth — the
    cache increments them once per event and this view just reads their
    values, so ``cache.stats.hits`` and the exported
    ``metadata_cache.hits`` statistic can never diverge (they used to be
    double bookkeeping: two counters incremented side by side).
    """

    __slots__ = ("_hits", "_misses", "_evictions", "_writebacks")

    def __init__(self, hits: StatCounter, misses: StatCounter,
                 evictions: StatCounter,
                 writebacks: StatCounter) -> None:
        self._hits = hits
        self._misses = misses
        self._evictions = evictions
        self._writebacks = writebacks

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def to_dict(self) -> dict[str, float]:
        """Snapshot for trace reports and JSON artifacts."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "writebacks": self.writebacks,
                "hit_rate": round(self.hit_rate, 4)}


class SetAssociativeCache:
    """Set-associative LRU cache keyed by line address.

    Parameters
    ----------
    size_bytes:
        Total capacity.  ``None`` makes the cache unbounded (used for the
        BMF-ideal nvMC).
    ways:
        Associativity.  Ignored when unbounded.
    line_size:
        Line granularity (64 B everywhere in this system).
    """

    def __init__(self, size_bytes: int | None, ways: int = 8,
                 line_size: int = CACHE_LINE_SIZE,
                 name: str = "cache",
                 stats: StatGroup | None = None) -> None:
        self.name = name
        self.line_size = line_size
        self.unbounded = size_bytes is None
        if self.unbounded:
            self.num_sets = 1
            self.ways = 0
        else:
            if size_bytes <= 0 or size_bytes % (line_size * ways):
                raise ConfigError(
                    f"cache size {size_bytes} not divisible by "
                    f"line_size*ways={line_size * ways}")
            self.ways = ways
            self.num_sets = size_bytes // (line_size * ways)
        # Each set is an OrderedDict: insertion order == LRU order,
        # move_to_end on touch.
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)]
        group = stats or StatGroup(name)
        self.stat_group = group
        self._hits = group.counter("hits")
        self._misses = group.counter("misses")
        self._evictions = group.counter("evictions")
        self._writebacks = group.counter("writebacks")
        self.stats = CacheStats(self._hits, self._misses,
                                self._evictions, self._writebacks)

    # ------------------------------------------------------------------
    def _set_of(self, line_addr: int) -> OrderedDict[int, CacheLine]:
        return self._sets[(line_addr // self.line_size) % self.num_sets]

    def contains(self, line_addr: int) -> bool:
        """Presence probe that does NOT update LRU or statistics."""
        return line_addr in self._set_of(line_addr)

    def lookup(self, line_addr: int) -> CacheLine | None:
        """Access a line: updates LRU order and hit/miss statistics."""
        # _set_of is inlined here and in peek/insert: one call frame per
        # cache probe is measurable across four caches per access.
        cache_set = self._sets[(line_addr // self.line_size)
                               % self.num_sets]
        line = cache_set.get(line_addr)
        if line is None:
            self._misses.value += 1
            return None
        cache_set.move_to_end(line_addr)
        self._hits.value += 1
        return line

    def peek(self, line_addr: int) -> CacheLine | None:
        """Fetch without touching LRU or statistics (crash flushing,
        debugging)."""
        return self._sets[(line_addr // self.line_size)
                          % self.num_sets].get(line_addr)

    def insert(self, line_addr: int, payload: Any = None,
               dirty: bool = False) -> CacheLine | None:
        """Install a line, returning the evicted victim (or ``None``).

        If the line is already resident its payload/dirty state is updated
        in place (no eviction).  Victims are chosen LRU within the set; a
        dirty victim increments the writeback counter — the caller is
        responsible for actually persisting it.
        """
        cache_set = self._sets[(line_addr // self.line_size)
                               % self.num_sets]
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.payload = payload if payload is not None \
                else existing.payload
            existing.dirty = existing.dirty or dirty
            cache_set.move_to_end(line_addr)
            return None
        victim = None
        if not self.unbounded and len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
            self._evictions.value += 1
            if victim.dirty:
                self._writebacks.value += 1
        cache_set[line_addr] = CacheLine(line_addr, dirty, payload)
        return victim

    def invalidate(self, line_addr: int) -> CacheLine | None:
        """Drop a line without writeback accounting; returns it if it was
        resident."""
        return self._set_of(line_addr).pop(line_addr, None)

    def drop_all(self) -> list[CacheLine]:
        """Empty the cache, returning every line that was resident (crash
        handling: the caller decides what an eADR domain persists)."""
        lines: list[CacheLine] = []
        for cache_set in self._sets:
            lines.extend(cache_set.values())
            cache_set.clear()
        return lines

    def dirty_lines(self) -> list[CacheLine]:
        """All currently dirty resident lines (flush-on-crash under
        eADR)."""
        return [line for cache_set in self._sets
                for line in cache_set.values() if line.dirty]

    def resident_lines(self) -> list[CacheLine]:
        """Every resident line (LRU order within sets)."""
        return [line for cache_set in self._sets
                for line in cache_set.values()]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "unbounded" if self.unbounded else \
            f"{self.num_sets * self.ways * self.line_size}B"
        return f"SetAssociativeCache({self.name}, {cap}, {len(self)} lines)"
