"""Terminal progress streaming for campaigns.

The executor calls these hooks as cells finish (in completion order, not
spec order — that is the point of watching a parallel campaign).  The
reporter writes single lines to ``stderr`` so stdout stays clean for the
figure tables and ``--json`` output the CLI produces afterwards.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.campaign.manifest import CACHED, DONE, FAILED, CellRecord


class ProgressReporter:
    """Default reporter: one line per finished cell plus a summary."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._width = 1

    # -- executor hooks -------------------------------------------------
    def campaign_started(self, name: str, total: int, cached: int,
                         jobs: int) -> None:
        self._total = total
        self._width = max(1, len(str(total)))
        self._line(f"campaign {name}: {total} cells "
                   f"({cached} already cached), jobs={jobs}")

    def cell_finished(self, record: CellRecord, finished: int) -> None:
        mark = {DONE: "done ", CACHED: "cache", FAILED: "FAIL "}.get(
            record.status, record.status)
        retries = f" retries={record.retries}" if record.retries else ""
        detail = f"  {record.error.splitlines()[-1]}" \
            if record.status == FAILED and record.error else ""
        self._line(f"[{finished:>{self._width}}/{self._total}] {mark} "
                   f"{record.cell_id:<28s} {record.wall_time:7.2f}s"
                   f"{retries}{detail}")

    def campaign_finished(self, counts: dict[str, int],
                          wall_time: float) -> None:
        done, cached = counts.get(DONE, 0), counts.get(CACHED, 0)
        failed = counts.get(FAILED, 0)
        self._line(f"campaign finished in {wall_time:.2f}s: "
                   f"{done} run, cache hits: {cached}/{self._total}, "
                   f"{failed} failed")

    # -------------------------------------------------------------------
    def _line(self, text: str) -> None:
        print(text, file=self.stream, flush=True)


class NullReporter(ProgressReporter):
    """Swallows everything (library callers, tests)."""

    def _line(self, text: str) -> None:
        pass
