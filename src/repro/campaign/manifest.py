"""Run manifests: the durable record of one campaign invocation.

The manifest is a single JSON file updated atomically after every cell
transition, so at any instant it answers "what has this campaign done so
far" — including from a different process while the campaign runs, and
after a kill.  ``repro-sim campaign status`` is just a pretty-printer
over this file.

Schema (``manifest.json``)::

    {
      "campaign":   "fig10-quick",
      "jobs":       4,
      "created":    1722850000.0,        # epoch seconds
      "finished":   true,
      "wall_time":  12.3,                # whole-campaign seconds
      "cells": [
        {"cell_id": "array/scue", "key": "<sha256>",
         "status": "done",               # pending|running|cached|done|failed
         "wall_time": 0.42, "retries": 0,
         "error": "", "artifact": "objects/ab/ab…json"},
        …
      ]
    }

``cached`` means the result store already held the cell (a resumed or
repeated campaign); ``done`` means this invocation computed it.  The
cache, not the manifest, is the source of truth for resume — the
manifest records provenance and is safe to delete.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import CampaignError
from repro.util.atomic import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.campaign.spec import CampaignSpec

PENDING = "pending"
RUNNING = "running"
CACHED = "cached"
DONE = "done"
FAILED = "failed"
STATUSES = (PENDING, RUNNING, CACHED, DONE, FAILED)
#: Statuses that mean "this cell's result exists".
COMPLETE = (CACHED, DONE)


@dataclass
class CellRecord:
    """Per-cell bookkeeping row."""

    cell_id: str
    key: str
    status: str = PENDING
    wall_time: float = 0.0
    retries: int = 0
    error: str = ""
    artifact: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"cell_id": self.cell_id, "key": self.key,
                "status": self.status, "wall_time": self.wall_time,
                "retries": self.retries, "error": self.error,
                "artifact": self.artifact}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellRecord":
        record = cls(**data)
        if record.status not in STATUSES:
            raise CampaignError(
                f"manifest cell {record.cell_id!r} has unknown status "
                f"{record.status!r}")
        return record


@dataclass
class RunManifest:
    """The whole campaign's status; one row per cell, in spec order."""

    campaign: str
    jobs: int = 1
    created: float = field(default_factory=time.time)
    finished: bool = False
    wall_time: float = 0.0
    cells: list[CellRecord] = field(default_factory=list)

    @classmethod
    def for_spec(cls, spec: "CampaignSpec", keys: list[str],
                 jobs: int) -> "RunManifest":
        cells = [CellRecord(cell.cell_id, key)
                 for cell, key in zip(spec.cells, keys)]
        return cls(campaign=spec.name, jobs=jobs, cells=cells)

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for record in self.cells:
            out[record.status] += 1
        return out

    @property
    def complete(self) -> bool:
        return all(r.status in COMPLETE for r in self.cells)

    def failures(self) -> list[CellRecord]:
        return [r for r in self.cells if r.status == FAILED]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Atomic write — a kill mid-save leaves the previous version."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"campaign": self.campaign, "jobs": self.jobs,
                   "created": self.created, "finished": self.finished,
                   "wall_time": self.wall_time,
                   "cells": [r.to_dict() for r in self.cells]}
        atomic_write_text(path, json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        try:
            payload = json.loads(Path(path).read_text())
            return cls(campaign=payload["campaign"], jobs=payload["jobs"],
                       created=payload["created"],
                       finished=payload["finished"],
                       wall_time=payload.get("wall_time", 0.0),
                       cells=[CellRecord.from_dict(c)
                              for c in payload["cells"]])
        except FileNotFoundError:
            raise
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CampaignError(f"unreadable manifest {path}: {exc}") \
                from exc
