"""Campaign specifications: the declared grid of experiment cells.

A *cell* is the atom of the paper's evaluation — one workload run on one
fully-resolved :class:`~repro.sim.config.SystemConfig` with an explicit
seed.  A :class:`CampaignSpec` enumerates cells up front (scheme x
workload x config-override x seed), so the executor can shard them across
a process pool, the cache can key them content-addressably, and a killed
campaign knows exactly which cells remain.

Cells are self-contained on purpose: a worker process rebuilds the
workload from ``(name, capacity, operations, seed)`` and the system from
the serialized config, so no trace bytes or live objects ever cross the
process boundary.  Determinism of the workload generators (every one
derives its stream from ``random.Random(seed)``) is what makes this
equivalent to sharing one recorded trace — see
``tests/campaign/test_determinism.py``.

The grid builders take any *scale* object exposing the
:class:`repro.bench.harness.BenchScale` surface (``config()``,
``operations_for()``, ``warmup_accesses``); the protocol keeps this
module import-free of :mod:`repro.bench`, which sits above it.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.errors import ConfigError
from repro.sim.config import SystemConfig

#: The Fig 9/10 comparison set plus the Baseline denominator.
DEFAULT_SCHEMES = ("baseline", "plp", "lazy", "bmf-ideal", "scue")
#: The Fig 11/12 hash-latency sweep points (cycles).
DEFAULT_HASH_SWEEP = (20, 40, 80, 160)


class ScaleLike(Protocol):
    """What the grid builders need from a ``BenchScale``."""

    warmup_accesses: int

    def config(self, scheme: str = ..., **overrides: Any) -> SystemConfig:
        ...

    def operations_for(self, workload: str) -> int: ...


@dataclass(frozen=True)
class CellSpec:
    """One (workload, config, seed) experiment cell."""

    workload: str
    config: SystemConfig
    operations: int
    warmup_accesses: int = 0
    seed: int = 42
    #: Free-form grid coordinate beyond (workload, scheme) — e.g.
    #: ``"hash=80"`` in the sensitivity sweep — so cell ids stay unique
    #: when the same workload x scheme pair appears at several overrides.
    group: str = ""

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ConfigError("cell operations must be positive")
        if self.warmup_accesses < 0:
            raise ConfigError("cell warmup_accesses must be non-negative")

    @property
    def cell_id(self) -> str:
        """Human-readable manifest id: ``workload/scheme[/group]``."""
        base = f"{self.workload}/{self.config.scheme}"
        return f"{base}/{self.group}" if self.group else base

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "config": self.config.to_dict(),
            "operations": self.operations,
            "warmup_accesses": self.warmup_accesses,
            "seed": self.seed,
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellSpec":
        kwargs = dict(data)
        kwargs["config"] = SystemConfig.from_dict(kwargs["config"])
        return cls(**kwargs)


@dataclass(frozen=True)
class CampaignSpec:
    """A named, ordered collection of cells (order defines result order)."""

    name: str
    cells: tuple[CellSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for cell in self.cells:
            if cell.cell_id in seen:
                raise ConfigError(
                    f"duplicate cell id {cell.cell_id!r}; use "
                    f"CellSpec.group to disambiguate grid coordinates")
            seen.add(cell.cell_id)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellSpec]:
        return iter(self.cells)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name,
                "cells": [cell.to_dict() for cell in self.cells]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        return cls(data["name"],
                   tuple(CellSpec.from_dict(c) for c in data["cells"]))

    # ------------------------------------------------------------------
    # Grid builders mirroring the paper's figure definitions.
    # ------------------------------------------------------------------
    @classmethod
    def matrix(cls, scale: ScaleLike, workloads: Sequence[str],
               schemes: Sequence[str] = DEFAULT_SCHEMES, seed: int = 42,
               name: str = "matrix",
               **config_overrides: Any) -> "CampaignSpec":
        """The Fig 9/10/§V-E shape: every workload on every scheme, one
        identical trace (seed) per workload."""
        cells = tuple(
            CellSpec(workload=workload,
                     config=scale.config(scheme, **config_overrides),
                     operations=scale.operations_for(workload),
                     warmup_accesses=scale.warmup_accesses,
                     seed=seed)
            for workload in workloads for scheme in schemes)
        return cls(name, cells)

    @classmethod
    def hash_sweep(cls, scale: ScaleLike, workloads: Sequence[str],
                   latencies: Sequence[int] = DEFAULT_HASH_SWEEP,
                   scheme: str = "scue", seed: int = 42,
                   name: str = "hash-sweep",
                   **config_overrides: Any) -> "CampaignSpec":
        """The Fig 11/12 shape: one scheme swept over hash latencies."""
        cells = tuple(
            CellSpec(workload=workload,
                     config=scale.config(scheme, hash_latency=latency,
                                         **config_overrides),
                     operations=scale.operations_for(workload),
                     warmup_accesses=scale.warmup_accesses,
                     seed=seed,
                     group=f"hash={latency}")
            for workload in workloads for latency in latencies)
        return cls(name, cells)
