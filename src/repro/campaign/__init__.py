"""Experiment campaigns: parallel, resumable sweeps over the paper grid.

The paper's evaluation is a large cell grid — schemes x workloads x
config points x seeds.  This package turns "run one workload on one
config" (:mod:`repro.sim.driver`) into "run a declared grid across a
process pool, resumably":

* :mod:`repro.campaign.spec` — :class:`CellSpec`/:class:`CampaignSpec`
  enumerate the grid from the figure definitions.
* :mod:`repro.campaign.executor` — :func:`run_campaign` shards cells
  over workers with timeouts, retry + backoff, and a serial fallback.
* :mod:`repro.campaign.cache` — :class:`ResultCache` content-addresses
  completed cells so re-runs and killed campaigns skip finished work.
* :mod:`repro.campaign.manifest` — :class:`RunManifest`, the durable
  JSON record behind ``repro-sim campaign status``.

:mod:`repro.bench` submits through this engine; see docs/benchmarks.md.
"""

from repro.campaign.cache import CACHE_SALT, ResultCache, cell_key
from repro.campaign.executor import (
    CampaignResult,
    execute_cell,
    run_campaign,
)
from repro.campaign.manifest import CellRecord, RunManifest
from repro.campaign.progress import NullReporter, ProgressReporter
from repro.campaign.spec import CampaignSpec, CellSpec

__all__ = [
    "CACHE_SALT",
    "CampaignResult",
    "CampaignSpec",
    "CellRecord",
    "CellSpec",
    "NullReporter",
    "ProgressReporter",
    "ResultCache",
    "RunManifest",
    "cell_key",
    "execute_cell",
    "run_campaign",
]
