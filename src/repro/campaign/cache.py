"""Content-addressed on-disk result store for campaign cells.

A cell's cache key is the SHA-256 of its canonical JSON — the serialized
:class:`~repro.sim.config.SystemConfig` plus workload name, operation
counts, and seed — salted with a cache-format version and the package
version.  Identical cells therefore share one entry across campaigns,
re-running a campaign skips every completed cell, and bumping
``CACHE_SALT`` (or releasing a new :mod:`repro` version) invalidates
results whose semantics the code change may have altered.

Layout under the cache root::

    objects/<key[:2]>/<key>.json    one completed cell each

Entries are written atomically (temp file + ``os.replace``) so a killed
campaign can never leave a half-written object: a cell is either durably
done or it re-runs.  Corrupted or stale-schema entries are *evicted* on
read and the cell re-runs — a damaged cache degrades to a cold one, it
never fails a campaign.

Concurrent writers (several campaign processes, or the ``repro.serve``
worker pool sharing one store with a batch campaign) are safe by two
independent mechanisms:

* *atomic replace* is what prevents torn entries — every writer stages
  the full payload in a ``.tmp`` file and publishes it with one
  ``os.replace``, so readers only ever see a complete entry (and because
  keys are content addresses, racing writers publish identical bytes);
* an *O_EXCL lock file* (``<key>.lock``) makes materialization
  single-writer in the common case: the first ``put`` takes the lock and
  writes, racing puts for the same key observe the published entry (or
  the lock) and return without re-serializing.  The lock is advisory —
  a writer that dies holding it never blocks progress, because a loser
  that sees neither a fresh entry nor a live lock simply falls through
  to the atomic-replace path.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from contextlib import suppress
from pathlib import Path
from typing import Any

import repro
from repro.campaign.spec import CellSpec
from repro.sim.results import RunResult
from repro.util.atomic import atomic_write_text, fsync_dir as _fsync_dir

#: Bump when simulator semantics change in a way that invalidates cached
#: measurements without changing the cell spec itself.
CACHE_SALT = "repro-campaign-v1"


def canonical_json(data: Any) -> str:
    """Key-sorted, whitespace-free JSON: equal data ⇒ equal bytes."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cell_key(cell: CellSpec) -> str:
    """Stable content hash of a cell (the cache address)."""
    payload = "\n".join(
        (CACHE_SALT, repro.__version__, canonical_json(cell.to_dict())))
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """The on-disk store; all methods tolerate concurrent writers."""

    def __init__(self, root: str | Path,
                 decode: Callable[[dict], Any] = RunResult.from_dict) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        # How to revive a stored ``result`` payload.  Campaigns that run
        # a custom cell_fn (e.g. the crash explorer's shard cells) pass
        # their own decoder; anything it raises on schema drift follows
        # the same evict-and-recompute path as RunResult.from_dict.
        self._decode = decode

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    def get(self, cell: CellSpec) -> RunResult | None:
        """The cached result, or ``None`` (evicting any corrupt entry)."""
        key = cell_key(cell)
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload["key"] != key:
                raise ValueError("cache entry key mismatch")
            return self._decode(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # json.JSONDecodeError is a ValueError; schema drift raises
            # TypeError/KeyError/ValueError out of from_dict.
            self.evict(key)
            return None

    def put(self, cell: CellSpec, result: RunResult,
            wall_time: float = 0.0) -> Path:
        """Atomically persist one completed cell; returns its path.

        Safe against concurrent writers: the first caller to create the
        ``<key>.lock`` file (``O_CREAT | O_EXCL``) serializes and
        publishes the entry; racing callers that find the entry already
        published return it untouched, and callers that find a held lock
        but no entry fall through and publish anyway (the replace is
        atomic and both writers hold identical bytes, so the loser's
        write is a no-op rewrite — never a torn entry).
        """
        key = cell_key(cell)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock = path.with_suffix(".lock")
        lock_fd: int | None = None
        try:
            lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Another writer is (or was) materializing this key.  If its
            # entry is already published we are done; otherwise keep
            # going without the lock — atomic replace carries safety.
            if path.is_file():
                return path
        try:
            self._write_entry(cell, result, wall_time, key, path)
        finally:
            if lock_fd is not None:
                os.close(lock_fd)
                with suppress(OSError):
                    os.unlink(lock)
        return path

    def _write_entry(self, cell: CellSpec, result: RunResult,
                     wall_time: float, key: str, path: Path) -> None:
        # result.to_dict() embeds the full observability payload too
        # (cycle attribution + latency-histogram snapshots), so cached
        # cells replay with their breakdowns intact.
        payload = {"key": key, "cell": cell.to_dict(),
                   "result": result.to_dict(), "wall_time": wall_time}
        atomic_write_text(path, canonical_json(payload))

    def evict(self, key: str) -> bool:
        """Drop one entry (corruption recovery); True if it existed.

        The parent directory is fsynced after the unlink: eviction is
        the torn-entry recovery path, and without the directory sync a
        second crash could resurrect the corrupt entry after the cell
        was recomputed against the evicted state."""
        path = self.path_for(key)
        try:
            path.unlink()
        except OSError:
            return False
        _fsync_dir(path.parent)
        return True

    def clear(self) -> int:
        """Delete every object; returns how many were removed."""
        removed = 0
        for path in self.iter_paths():
            with suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def iter_paths(self) -> list[Path]:
        if not self.objects.is_dir():
            return []
        return sorted(self.objects.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.iter_paths())

    def __contains__(self, cell: CellSpec) -> bool:
        return self.path_for(cell_key(cell)).is_file()
