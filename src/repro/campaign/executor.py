"""The campaign executor: run a declared cell grid, resumably.

Two execution paths share all bookkeeping:

* ``jobs == 1`` — the graceful serial fallback: cells run in-process in
  spec order, exceptions optionally propagate unchanged (``fail_fast``),
  nothing forks.  This is the path unit tests and the classic
  ``run_matrix`` call take, so parallelism can never perturb them.
* ``jobs > 1`` — a process-per-cell pool (``fork`` start method where
  available): up to ``jobs`` workers run concurrently, each executes one
  cell and ships the pickled :class:`~repro.sim.results.RunResult` back
  over a queue.  The parent enforces a per-cell ``timeout`` (hung
  workers are killed), retries transient worker deaths and cell errors
  with exponential backoff, and keeps the manifest current after every
  transition — so ``kill -9`` of the whole campaign loses at most the
  cells in flight.

Completed cells go to the :class:`~repro.campaign.cache.ResultCache`
(when one is given) *before* the manifest records them done; resume is
therefore driven by the cache, and the manifest is pure provenance.

Workers are handed the :class:`CellSpec` itself, never live simulator
state: the cell function rebuilds workload and system from the spec, so
results are identical whichever process — or campaign invocation —
computes them.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.cache import ResultCache, cell_key
from repro.campaign.manifest import (
    CACHED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    CellRecord,
    RunManifest,
)
from repro.campaign.progress import NullReporter, ProgressReporter
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.errors import CampaignError
from repro.sim.driver import run_workload
from repro.sim.results import RunResult
from repro.workloads import make_workload

CellFn = Callable[[CellSpec], RunResult]


def execute_cell(cell: CellSpec) -> RunResult:
    """The real cell function: one workload on one config, from scratch.

    Mirrors the classic serial harness exactly — ``record()`` when the
    workload caches its trace, a fresh generator otherwise — so a cell
    run here is bit-identical to one run by the old in-process loop.
    """
    workload = make_workload(cell.workload, cell.config.data_capacity,
                             cell.operations, seed=cell.seed)
    trace = workload.record() if hasattr(workload, "record") \
        else list(workload.trace())
    return run_workload(cell.config, trace, workload_name=cell.workload,
                        warmup_accesses=cell.warmup_accesses)


@dataclass
class CampaignResult:
    """What a campaign invocation produced."""

    spec: CampaignSpec
    manifest: RunManifest
    #: Cell index → result, for every complete (done or cached) cell.
    results: dict[int, RunResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.manifest.complete

    def iter_results(self) -> Iterator[tuple[CellSpec, RunResult]]:
        """(cell, result) pairs in *spec* order, complete cells only."""
        for index, cell in enumerate(self.spec.cells):
            if index in self.results:
                yield cell, self.results[index]

    def raise_on_failure(self) -> None:
        failures = self.manifest.failures()
        if failures:
            worst = failures[0]
            raise CampaignError(
                f"{len(failures)} cell(s) failed; first: "
                f"{worst.cell_id}: {_last_line(worst.error)}")


def run_campaign(spec: CampaignSpec, *,
                 jobs: int = 1,
                 cache: ResultCache | str | Path | None = None,
                 manifest_path: str | Path | None = None,
                 timeout: float | None = None,
                 retries: int | None = None,
                 backoff: float = 0.5,
                 fail_fast: bool = False,
                 progress: ProgressReporter | None = None,
                 cell_fn: CellFn = execute_cell) -> CampaignResult:
    """Run every cell of ``spec``; skip cells already in ``cache``.

    ``timeout`` (seconds, per attempt) and transient-death retry only
    apply on the parallel path — a serial cell runs inline and cannot be
    killed.  ``retries`` defaults to 0 serial (in-process exceptions are
    deterministic; re-raise immediately) and 2 parallel (worker death
    can be transient).  ``fail_fast`` re-raises the first permanent
    failure (the original exception when serial, :class:`CampaignError`
    when parallel); otherwise failures are recorded in the manifest and
    the campaign keeps going.
    """
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if retries is None:
        retries = 0 if jobs == 1 else 2
    progress = progress or NullReporter()
    keys = [cell_key(cell) for cell in spec.cells]
    manifest = RunManifest.for_spec(spec, keys, jobs)
    outcome = CampaignResult(spec, manifest)
    state = _Bookkeeper(spec, manifest, outcome, cache, manifest_path,
                        progress)

    started = time.perf_counter()
    pending = state.resume_from_cache()
    progress.campaign_started(spec.name, len(spec.cells),
                              len(spec.cells) - len(pending), jobs)
    state.save()
    try:
        if jobs == 1:
            _run_serial(state, pending, retries, backoff, fail_fast,
                        cell_fn)
        else:
            _run_parallel(state, pending, jobs, timeout, retries, backoff,
                          fail_fast, cell_fn)
    finally:
        manifest.finished = True
        manifest.wall_time = time.perf_counter() - started
        state.save()
        progress.campaign_finished(manifest.counts(), manifest.wall_time)
    return outcome


# ======================================================================
# Shared bookkeeping
# ======================================================================
class _Bookkeeper:
    """Cache lookups, manifest transitions, result collection."""

    def __init__(self, spec: CampaignSpec, manifest: RunManifest,
                 outcome: CampaignResult, cache: ResultCache | None,
                 manifest_path: str | Path | None,
                 progress: ProgressReporter) -> None:
        self.spec = spec
        self.manifest = manifest
        self.outcome = outcome
        self.cache = cache
        self.manifest_path = manifest_path
        self.progress = progress
        self.finished_cells = 0

    def record(self, index: int) -> CellRecord:
        return self.manifest.cells[index]

    def save(self) -> None:
        if self.manifest_path is not None:
            self.manifest.save(self.manifest_path)

    def resume_from_cache(self) -> list[int]:
        """Mark cached cells complete; return the indices left to run."""
        pending: list[int] = []
        for index, cell in enumerate(self.spec.cells):
            cached = self.cache.get(cell) if self.cache else None
            if cached is None:
                pending.append(index)
                continue
            record = self.record(index)
            record.status = CACHED
            record.artifact = self._artifact(cell)
            self.outcome.results[index] = cached
            self.finished_cells += 1
        return pending

    def _artifact(self, cell: CellSpec) -> str:
        if self.cache is None:
            return ""
        return str(self.cache.path_for(cell_key(cell))
                   .relative_to(self.cache.root))

    def mark_running(self, index: int) -> None:
        self.record(index).status = RUNNING
        self.save()

    def mark_done(self, index: int, result: RunResult,
                  wall_time: float) -> None:
        cell = self.spec.cells[index]
        if self.cache is not None:
            self.cache.put(cell, result, wall_time)
        record = self.record(index)
        record.status = DONE
        record.wall_time = wall_time
        record.error = ""
        record.artifact = self._artifact(cell)
        self.outcome.results[index] = result
        self.finished_cells += 1
        self.save()
        self.progress.cell_finished(record, self.finished_cells)

    def mark_failed(self, index: int, error: str) -> None:
        record = self.record(index)
        record.status = FAILED
        record.error = error
        self.finished_cells += 1
        self.save()
        self.progress.cell_finished(record, self.finished_cells)

    def note_retry(self, index: int, attempt: int, error: str) -> None:
        record = self.record(index)
        record.status = PENDING
        record.retries = attempt
        record.error = error
        self.save()


# ======================================================================
# Serial path
# ======================================================================
def _run_serial(state: _Bookkeeper, pending: list[int], retries: int,
                backoff: float, fail_fast: bool, cell_fn: CellFn) -> None:
    for index in pending:
        attempt = 0
        while True:
            state.mark_running(index)
            started = time.perf_counter()
            try:
                result = cell_fn(state.spec.cells[index])
            except Exception as exc:
                error = traceback.format_exc()
                if attempt < retries:
                    attempt += 1
                    state.note_retry(index, attempt, error)
                    time.sleep(_backoff_delay(backoff, attempt))
                    continue
                state.mark_failed(index, error)
                if fail_fast:
                    raise exc
                break
            state.mark_done(index, result,
                            time.perf_counter() - started)
            break


# ======================================================================
# Parallel path
#
# One *private pipe per worker*, never a shared queue.  A shared
# multiprocessing.Queue serialises puts through one cross-process lock;
# killing a worker (timeout enforcement) in the window where it holds
# that lock would leak the semaphore and deadlock every later put.
# With per-worker pipes a kill can only ever poison the victim's own
# channel, which the parent is about to discard anyway.
# ======================================================================
@dataclass
class _Running:
    proc: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    deadline: float | None
    started: float


def _worker_main(cell: CellSpec, cell_fn: CellFn, conn) -> None:
    """Worker entry: one cell, one message on its private pipe, exit."""
    try:
        started = time.perf_counter()
        result = cell_fn(cell)
        conn.send(("ok", result, time.perf_counter() - started))
    except BaseException:
        conn.send(("error", traceback.format_exc(), 0.0))
    finally:
        conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _run_parallel(state: _Bookkeeper, pending_ids: list[int], jobs: int,
                  timeout: float | None, retries: int, backoff: float,
                  fail_fast: bool, cell_fn: CellFn) -> None:
    ctx = _mp_context()
    pending: deque[int] = deque(pending_ids)
    delayed: list[tuple[float, int]] = []   # (ready-at, index)
    running: dict[int, _Running] = {}
    attempts: dict[int, int] = {}
    abort: CampaignError | None = None

    def launch(index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(state.spec.cells[index], cell_fn, child_conn),
            daemon=True)
        proc.start()
        child_conn.close()      # parent's copy; child keeps its own
        now = time.monotonic()
        running[index] = _Running(
            proc, parent_conn, now + timeout if timeout else None, now)
        state.mark_running(index)

    def reap(index: int, kill: bool) -> None:
        run = running.pop(index, None)
        if run is None:
            return
        if kill and run.proc.is_alive():
            run.proc.terminate()
            run.proc.join(1.0)
            if run.proc.is_alive():
                run.proc.kill()
        run.proc.join(5.0)
        run.conn.close()

    def retry_or_fail(index: int, error: str, kill: bool) -> None:
        nonlocal abort
        reap(index, kill=kill)
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] <= retries:
            state.note_retry(index, attempts[index], error)
            delayed.append(
                (time.monotonic()
                 + _backoff_delay(backoff, attempts[index]), index))
            return
        state.mark_failed(index, error)
        if fail_fast and abort is None:
            record = state.record(index)
            abort = CampaignError(
                f"cell {record.cell_id} failed after "
                f"{attempts[index]} attempt(s): {_last_line(error)}")

    def deliver(index: int, run: _Running) -> None:
        """The worker's pipe has data: accept its one message."""
        try:
            kind, payload, wall_time = run.conn.recv()
        except (EOFError, OSError) as exc:
            retry_or_fail(index, f"worker channel broke: {exc!r}",
                          kill=True)
            return
        # The worker sent its message and is exiting on its own —
        # join it, never signal it (a kill mid-exit could, on other
        # designs, strand shared state; here it is simply pointless).
        reap(index, kill=False)
        if kind == "ok":
            state.mark_done(index, payload, wall_time)
        else:
            retry_or_fail(index, payload, kill=False)

    try:
        while (pending or delayed or running) and abort is None:
            now = time.monotonic()
            ready = [item for item in delayed if item[0] <= now]
            for item in ready:
                delayed.remove(item)
                pending.append(item[1])
            while pending and len(running) < jobs and abort is None:
                launch(pending.popleft())
            if running:
                # Sleep until a result arrives or a worker exits.
                waitables: list = [run.conn for run in running.values()]
                waitables += [run.proc.sentinel
                              for run in running.values()]
                multiprocessing.connection.wait(waitables, timeout=0.1)
            elif delayed:       # everyone is backing off
                time.sleep(min(0.05, max(
                    0.0, min(t for t, _ in delayed) - now)))
                continue
            now = time.monotonic()
            for index, run in list(running.items()):
                if run.conn.poll():
                    deliver(index, run)
                elif run.deadline is not None and now > run.deadline:
                    retry_or_fail(
                        index,
                        f"cell timed out after {timeout:g}s "
                        f"(attempt killed)", kill=True)
                elif not run.proc.is_alive():
                    # Exited with an empty pipe: genuine worker death
                    # (the exit machinery flushes the pipe first, so a
                    # sent result would have been visible above).
                    if run.conn.poll():
                        deliver(index, run)
                    else:
                        retry_or_fail(
                            index,
                            f"worker died without reporting "
                            f"(exit code {run.proc.exitcode})",
                            kill=False)
    finally:
        for index in list(running):
            reap(index, kill=True)
    if abort is not None:
        raise abort


# ======================================================================
# Single-cell seam
#
# ``repro.serve`` schedules cells one at a time from an asyncio worker
# pool, but its per-cell semantics must stay identical to a parallel
# campaign's: same worker entry point, same fork context, same
# timeout-kill behaviour, same transient-death retry budget and the
# same exponential backoff curve.  Routing the service through this
# function (instead of a reimplementation) is what guarantees that.
# ======================================================================
@dataclass(frozen=True)
class CellOutcome:
    """What one supervised cell execution produced."""

    result: RunResult
    wall_time: float
    attempts: int


def run_cell(cell: CellSpec, *,
             cell_fn: CellFn = execute_cell,
             timeout: float | None = None,
             retries: int | None = None,
             backoff: float = 0.5,
             on_retry: Callable[[int, str], None] | None = None
             ) -> CellOutcome:
    """Run one cell in a supervised worker process, with retries.

    This is the parallel path's per-cell contract extracted for callers
    that schedule cells themselves (the ``repro.serve`` worker pool):
    ``retries`` defaults to the parallel default (2 — worker death can
    be transient), a ``timeout`` kills the attempt's process, and
    failed attempts back off with :func:`_backoff_delay`.  ``on_retry``
    is called as ``(attempt, error)`` before each backoff sleep.
    Raises :class:`CampaignError` with the parallel path's message
    shape once the retry budget is spent.
    """
    if retries is None:
        retries = 2
    ctx = _mp_context()
    attempts = 0
    while True:
        attempts += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(cell, cell_fn, child_conn), daemon=True)
        proc.start()
        child_conn.close()
        error: str
        try:
            # Wait on the pipe *and* the process sentinel: a worker
            # that dies without reporting would otherwise block an
            # unbounded pipe poll forever.
            ready = multiprocessing.connection.wait(
                [parent_conn, proc.sentinel], timeout)
            if parent_conn.poll(0):
                kind, payload, wall_time = parent_conn.recv()
                proc.join(5.0)
                if kind == "ok":
                    return CellOutcome(payload, wall_time, attempts)
                error = payload
            elif not ready:
                # Nothing became ready before the deadline (``ready``
                # can only be empty when ``timeout`` is set): kill the
                # attempt.  An exiting worker can close its sentinel
                # before it is reapable, so ``is_alive()`` is not a
                # reliable discriminator here.
                error = (f"cell timed out after {timeout:g}s "
                         f"(attempt killed)")
                proc.terminate()
                proc.join(1.0)
                if proc.is_alive():
                    proc.kill()
                proc.join(5.0)
            else:
                # Exited with an empty pipe: genuine worker death (the
                # exit machinery flushes the pipe first, so a sent
                # result would have been visible above).
                proc.join(5.0)
                error = (f"worker died without reporting "
                         f"(exit code {proc.exitcode})")
        except (EOFError, OSError) as exc:
            error = f"worker channel broke: {exc!r}"
            if proc.is_alive():
                proc.terminate()
            proc.join(5.0)
        finally:
            parent_conn.close()
        if attempts > retries:
            raise CampaignError(
                f"cell {cell.cell_id} failed after {attempts} "
                f"attempt(s): {_last_line(error)}")
        if on_retry is not None:
            on_retry(attempts, error)
        time.sleep(_backoff_delay(backoff, attempts))


def _backoff_delay(backoff: float, attempt: int) -> float:
    return min(backoff * (2 ** (attempt - 1)), 30.0)


def _last_line(error: str) -> str:
    lines = [line for line in error.strip().splitlines() if line.strip()]
    return lines[-1] if lines else error
