"""SCUE-AGIT fast recovery, plus the ASIT comparison point (paper §V-D,
Fig 13).

Anubis (ISCA'19) shadows the metadata cache in NVM: a Shadow Table (ST)
with one entry per cached metadata line.  Used with SCUE, the ST only
needs the *addresses* of stale nodes — not their contents as in the
original ASIT — because counter-summing rebuilds any node from its
children (the paper's point in §V-D: AGIT-style tracking, not
ASIT-style).

Runtime cost: one ST write per newly dirtied metadata line (far below
Anubis's original 2x write overhead, but not free like STAR's bitmap).

Recovery cost model: for each stale node the recovery process

* reads its ST entry (the address),                                 1 read
* reads its eight children to regenerate the dummy counters,        8 reads
* re-verifies the rebuilt node against its parent, which — because ST
  entries are processed independently, without STAR's level-by-level
  sweep — re-reads the parent's eight children plus the parent's own
  verification chain, amortised to                                  16 reads

for 25 reads per stale node at 100 ns apiece.  At a 4 MB metadata cache
(65536 stale nodes) that is ≈0.164 s, matching the paper's ≈0.17 s; the
linear shape in cache size is by construction.  The per-node constant is
our calibration of Anubis's published access pattern — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.crash.recovery import METADATA_FETCH_NS
from repro.mem.address import AddressMap

#: ST entry + children + independent parent-side re-verification.
READS_PER_STALE_NODE = 1 + 8 + 16


class AgitTracker:
    """Runtime shadow-table tracking + the AGIT recovery cost model."""

    name = "agit"
    #: One ST append per newly dirtied metadata line.
    runtime_writes_per_update = 1

    def __init__(self, amap: AddressMap) -> None:
        self.amap = amap
        self._stale: set[tuple[int, int]] = set()
        self.runtime_write_overhead = 0

    # ------------------------------------------------------------------
    def on_dirty(self, level: int, index: int) -> None:
        if (level, index) not in self._stale:
            self._stale.add((level, index))
            self.runtime_write_overhead += self.runtime_writes_per_update

    def on_update(self, level: int, index: int) -> None:
        """Address-only ST entries don't change on repeat updates."""

    def on_clean(self, level: int, index: int) -> None:
        self._stale.discard((level, index))

    @property
    def stale_nodes(self) -> int:
        return len(self._stale)

    def stale_coords(self) -> set[tuple[int, int]]:
        return set(self._stale)

    # ------------------------------------------------------------------
    def recovery_reads(self) -> int:
        return READS_PER_STALE_NODE * len(self._stale)

    def recovery_seconds(self) -> float:
        return self.recovery_reads() * METADATA_FETCH_NS * 1e-9

    def reset(self) -> None:
        self._stale.clear()


class AsitTracker(AgitTracker):
    """Anubis's original ASIT: the shadow table stores address *and
    contents* of every dirty metadata line.

    This is what vanilla SIT forces on Anubis — without counter-summing,
    a stale node cannot be rebuilt from its children, so its full content
    must be journalled.  The price (§V-D): every metadata update writes
    the ST *content* entry too — the "2x write overhead" the paper cites
    — in exchange for the cheapest possible recovery (read the ST entry
    back, one read per stale node; no child reads, no re-verification
    fan-out).

    SCUE's contribution in this comparison: AGIT's address-only tracking
    becomes sufficient for SIT, keeping runtime writes low without giving
    up fast recovery.
    """

    name = "asit"
    #: One ST content write per metadata *update* (not just first-dirty):
    #: the journalled contents must track every change.
    runtime_writes_per_update = 1

    def on_dirty(self, level: int, index: int) -> None:
        self._stale.add((level, index))

    def on_update(self, level: int, index: int) -> None:
        # Content journalling pays on every update of a cached node.
        self._stale.add((level, index))
        self.runtime_write_overhead += self.runtime_writes_per_update

    def recovery_reads(self) -> int:
        # Contents come straight from the ST: one read per stale node.
        return len(self._stale)
