"""Targeted (STAR/AGIT-style) reconstruction — functional fast recovery.

Full counter-summing recovery (§IV-B) reads every counter block.  With a
staleness tracker (STAR's bitmap lines or Anubis's shadow table, §V-D),
only the nodes that were dirty in the metadata cache at crash time need
rebuilding: everything else on media is already consistent.  This module
performs that *actual* targeted rebuild — the trackers' read-count
formulas price it; this code does it:

1. group the tracker's stale coordinates by level, bottom-up;
2. rebuild each stale node's counters from its children's dummy counters
   (children are either consistent on media or lower-level stale nodes
   already rebuilt this pass), seal with its own dummy, write back;
3. recompute the root counters from the (now consistent) top level and
   compare with the ``Recovery_root``.

The result must equal a full reconstruction — a property the test suite
checks on random crash states — while touching only
``O(stale x arity + top_level)`` nodes instead of every leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cme.counters import CounterBlock
from repro.crash.recovery import METADATA_FETCH_NS
from repro.errors import MetadataTypeError
from repro.tree.node import SITNode
from repro.util.bitfield import checked_sum


@dataclass
class TargetedRecoveryResult:
    """Outcome of a targeted rebuild."""

    root_counters: list[int]
    root_matched: bool
    stale_rebuilt: int = 0
    metadata_reads: int = 0
    metadata_writes: int = 0
    leaf_hmac_failures: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.root_matched and not self.leaf_hmac_failures

    @property
    def recovery_seconds(self) -> float:
        return self.metadata_reads * METADATA_FETCH_NS * 1e-9


def _child_dummy(controller, level: int, index: int, bits: int,
                 result: TargetedRecoveryResult) -> int:
    node = controller.store.load(level, index, counted=False)
    result.metadata_reads += 1
    if isinstance(node, CounterBlock):
        return node.dummy_counter(bits)
    return node.dummy_counter()


def targeted_reconstruction(controller,
                            stale: set[tuple[int, int]]
                            ) -> TargetedRecoveryResult:
    """Rebuild only the ``stale`` nodes of a SCUE system, then verify the
    Recovery_root (see module docstring).

    ``stale`` comes from the tracker's crash-time snapshot
    (``controller.tracker.stale_coords()``).  Staleness is *transitive*:
    SCUE propagates counter updates upward only when a child flushes, so
    every ancestor of a dirty node is out of date on media even though it
    was never dirtied itself — the rebuild set is the ancestor closure of
    the tracked set.

    Stale *leaves* cannot be rebuilt from below (they are the ground
    truth) — a stale leaf means the persistence discipline was violated;
    such configurations should recover via the Osiris path instead, so
    leaves in ``stale`` are verified rather than rebuilt.

    Security model (same as STAR/Anubis): attacks inside stale subtrees
    are caught here (leaf HMACs + root sum); attacks on *untouched*
    subtrees are caught lazily, by runtime verification on first access —
    the media there is trusted-as-written and the root comparison covers
    only what was rebuilt.
    """
    amap = controller.amap
    mac = controller.mac
    store = controller.store
    bits = amap.counter_bits
    result = TargetedRecoveryResult(root_counters=[], root_matched=False)

    # Ancestor closure: every ancestor of a tracked node is stale too.
    stale = set(stale)
    for level, index in list(stale):
        while level + 1 < amap.tree_levels:
            level, index = amap.parent_coords(level, index)
            stale.add((level, index))

    # Leaf-level staleness: verify the persisted image is self-consistent.
    for level, index in sorted(coord for coord in stale if coord[0] == 0):
        leaf = store.load(0, index, counted=False)
        result.metadata_reads += 1
        if not isinstance(leaf, CounterBlock):
            raise MetadataTypeError(
                f"level-0 node {index} is {type(leaf).__name__}, "
                "expected CounterBlock")
        addr = amap.counter_block_addr(index)
        if not leaf.verify(mac, addr, leaf.dummy_counter(bits)):
            result.leaf_hmac_failures.append(index)

    # Rebuild stale intermediate nodes bottom-up.
    by_level: dict[int, list[int]] = {}
    for level, index in stale:
        if level >= 1:
            by_level.setdefault(level, []).append(index)
    for level in sorted(by_level):
        for index in sorted(set(by_level[level])):
            counters = [0] * amap.arity
            for child_level, child_index in amap.child_coords(level, index):
                slot = amap.parent_slot(child_index)
                counters[slot] = _child_dummy(controller, child_level,
                                              child_index, bits, result)
            node = SITNode(level, index, counters=counters,
                           arity=amap.arity)
            node.seal(mac, store.node_addr(level, index),
                      node.dummy_counter())
            store.save(node, counted=False)
            result.metadata_writes += 1
            result.stale_rebuilt += 1

    # Root comparison over the (now consistent) top level.
    top = amap.tree_levels - 1
    dummies = []
    for index in range(amap.level_width(top)):
        dummies.append(_child_dummy(controller, top, index, bits, result))
    root_counters = dummies + [0] * (amap.arity - len(dummies))
    result.root_counters = [checked_sum([c], bits) for c in root_counters]
    result.root_matched = \
        controller.recovery_root.matches(result.root_counters)
    return result
