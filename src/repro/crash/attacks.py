"""Integrity-attack injection (paper §II-A, §IV-B2, Table I).

Attackers control the NVM (stolen DIMM, bus snooping, tampering) but not
the chip: these helpers therefore mutate the *media image* directly,
bypassing access counting — exactly the power of the paper's threat model.
They never see MAC keys, so they can replay old images byte-for-byte but
cannot forge MACs over modified ones.

Attack taxonomy mapped to Table I:

* :func:`roll_forward_leaf` — bump a leaf counter to a larger value
  (detected by the leaf HMAC: the stored MAC no longer matches).
* :func:`roll_back_leaf` — lower a leaf counter in place, keeping the
  stored HMAC (detected by the leaf HMAC for the same reason).
* :func:`replay_leaf` — the special roll-back: restore a complete old
  (counters, HMAC) snapshot.  Internally consistent, so the leaf HMAC
  passes — only the Recovery_root sum catches it.
* :func:`tamper_data_line` — flip user-data bits (detected by the
  ECC-resident data MAC on the next read).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cme.counters import CounterBlock, MINORS_PER_BLOCK
from repro.errors import AddressError, MetadataTypeError
from repro.mem.address import AddressMap
from repro.mem.nvm import NVMDevice
from repro.tree.store import SITStore


@dataclass(frozen=True)
class LeafSnapshot:
    """A byte-exact copy of a leaf's media image — the loot a replay
    attacker records before the victim overwrites it."""

    index: int
    image: bytes


def snapshot_leaf(store: SITStore, index: int) -> LeafSnapshot:
    """Record the current media image of counter block ``index``."""
    addr = store.amap.counter_block_addr(index)
    return LeafSnapshot(index, store.nvm.peek_line(addr))


def replay_leaf(store: SITStore, snapshot: LeafSnapshot) -> None:
    """Replay attack: put an old, internally consistent leaf image back on
    media (Table I: passes HMAC, caught by the Recovery_root)."""
    addr = store.amap.counter_block_addr(snapshot.index)
    store.nvm.poke_line(addr, snapshot.image)


def roll_forward_leaf(store: SITStore, index: int, slot: int = 0,
                      amount: int = 1) -> None:
    """Roll-forward attack: enlarge one minor counter without (being able
    to) fix the HMAC (Table I: caught by the leaf HMAC)."""
    _shift_leaf_counter(store, index, slot, amount)


def roll_back_leaf(store: SITStore, index: int, slot: int = 0,
                   amount: int = 1) -> None:
    """Non-replay roll-back: shrink one minor counter in place, keeping
    the now-mismatched HMAC (Table I: caught by the leaf HMAC)."""
    _shift_leaf_counter(store, index, slot, -amount)


def _shift_leaf_counter(store: SITStore, index: int, slot: int,
                        delta: int) -> None:
    if not 0 <= slot < MINORS_PER_BLOCK:
        raise AddressError(f"minor slot {slot} out of range")
    leaf = store.load(0, index, counted=False)
    if not isinstance(leaf, CounterBlock):
        raise MetadataTypeError(
            f"level-0 node {index} is {type(leaf).__name__}, expected "
            "CounterBlock")
    shifted = leaf.minors[slot] + delta
    if shifted < 0:
        # An attacker can only write representable values; fold into the
        # major counter like a genuine roll-back of an earlier epoch.
        leaf.major = max(0, leaf.major - 1)
        shifted = 0
    limit = (1 << 6) - 1
    leaf.minors[slot] = min(shifted, limit)
    store.save(leaf, counted=False)


def combined_attack(store: SITStore, forward_index: int, back_index: int,
                    slot: int = 0, amount: int = 1) -> None:
    """Roll one leaf forward and another back by the same amount so the
    Recovery_root sum is preserved — the Table I column 3 attack.  The
    forward half still fails its HMAC, so detection holds."""
    roll_forward_leaf(store, forward_index, slot, amount)
    roll_back_leaf(store, back_index, slot, amount)


def tamper_data_line(nvm: NVMDevice, amap: AddressMap, addr: int,
                     flip_mask: int = 1) -> None:
    """Flip bits in a user-data line (classic tampering; detected by the
    data MAC on the next read)."""
    line = amap.line_of(addr)
    image = bytearray(nvm.peek_line(line))
    image[0] ^= flip_mask & 0xFF
    nvm.poke_line(line, bytes(image))
