"""Crash consistency machinery: counter-summing recovery (§IV-B), crash
injection, integrity-attack injection (Table I), and the STAR/AGIT
fast-recovery trackers (§V-D, Fig 13)."""

from repro.crash.attacks import (
    replay_leaf,
    roll_back_leaf,
    roll_forward_leaf,
    snapshot_leaf,
    tamper_data_line,
)
from repro.crash.injection import CrashPlan, run_with_crash
from repro.crash.recovery import (
    ReconstructionResult,
    counter_summing_reconstruction,
)
from repro.crash.star import StarTracker
from repro.crash.anubis import AgitTracker, AsitTracker
from repro.crash.fast_recovery import targeted_reconstruction
from repro.crash.osiris import osiris_counter_recovery

__all__ = [
    "replay_leaf",
    "roll_back_leaf",
    "roll_forward_leaf",
    "snapshot_leaf",
    "tamper_data_line",
    "CrashPlan",
    "run_with_crash",
    "ReconstructionResult",
    "counter_summing_reconstruction",
    "StarTracker",
    "AgitTracker",
    "AsitTracker",
    "targeted_reconstruction",
    "osiris_counter_recovery",
]
