"""Crash injection (paper §III-B, Fig 5).

A crash plan stops a running system after a chosen number of trace
accesses and power-fails it.  Because the interesting failures live inside
the *crash window* — the interval between a leaf persist and the root
update completing — the plan can also ask for the crash to land
"mid-burst", right after a persist, where eager-style schemes still have
in-flight root updates.

This module is duck-typed against :class:`repro.sim.system.System`
(anything with ``run(trace)`` and ``crash()``) to keep the crash package
import-light.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterable, Iterator

from repro.errors import ConfigError
from repro.mem.trace import AccessType, MemoryAccess


@dataclass(frozen=True)
class CrashPlan:
    """When to pull the plug.

    ``after_accesses``: power-fail once this many trace records have been
    executed.  ``align_to_persist``: keep executing past the mark until a
    PERSIST record completes, so the crash lands immediately after a leaf
    persist — the worst case for the crash window (§III-B).
    """

    after_accesses: int
    align_to_persist: bool = True

    def __post_init__(self) -> None:
        if self.after_accesses < 0:
            raise ConfigError("after_accesses must be non-negative")


def split_at_crash(trace: Iterable[MemoryAccess],
                   plan: CrashPlan) -> tuple[list[MemoryAccess],
                                             Iterator[MemoryAccess]]:
    """Split a trace into the part executed before the crash and the
    remainder (which a post-recovery run may continue with)."""
    iterator = iter(trace)
    executed = list(islice(iterator, plan.after_accesses))
    if plan.align_to_persist:
        for access in iterator:
            executed.append(access)
            if access.kind is AccessType.PERSIST:
                break
    return executed, iterator


def run_with_crash(system: Any, trace: Iterable[MemoryAccess],
                   plan: CrashPlan) -> int:
    """Run ``system`` over ``trace`` until the plan fires, then crash it.

    Returns the number of accesses executed before the power failure.
    The caller recovers via ``system.controller.recover()`` and inspects
    the report — succeeding for SCUE/PLP/BMF, failing with a root
    mismatch for Lazy (always) and Eager (when the crash landed in the
    window), per §III-B.
    """
    executed, _ = split_at_crash(trace, plan)
    system.run(executed)
    system.crash()
    return len(executed)
