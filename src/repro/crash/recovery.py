"""Counter-summing reconstruction of the SIT (paper §IV-B, Fig 8).

The insight that makes SIT recoverable bottom-up: under counter-summing
updates a parent counter equals the modular sum of all counters in its
child node (the child's *dummy counter*).  Recovery therefore:

1. reads every persisted counter block (the consistent leaf level),
2. verifies each leaf's HMAC against its own dummy counter — the value it
   was sealed with at persist time — which catches **roll-forward** and
   non-replay **roll-back** attacks (Table I, row 1),
3. rebuilds every intermediate level by grouping child dummies eight at a
   time, sealing each rebuilt node with its own dummy,
4. compares the rebuilt root counters with the on-chip Recovery_root,
   which catches **replay/roll-back** attacks (Table I, row 2), and
5. on success writes the rebuilt tree back to media so runtime
   verification resumes from a consistent image.

The same routine doubles as the "reconstruct and compare" recovery attempt
for the Lazy and Eager baselines — demonstrating the root crash
inconsistency problem: their stored root does not match the rebuilt one
even though no attack occurred (§III-B, Fig 5b).

Cost model (§V-D): recovery time is dominated by metadata reads at 100 ns
apiece.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cme.counters import CounterBlock
from repro.errors import MetadataTypeError
from repro.mem.address import AddressMap
from repro.secure.roots import RootRegister
from repro.tree.node import SITNode
from repro.tree.store import SITStore
from repro.util.bitfield import checked_sum
from repro.util.crypto import KeyedMac

METADATA_FETCH_NS = 100.0
COUNTER_BITS = 56


@dataclass
class ReconstructionResult:
    """Everything the counter-summing pass learned."""

    root_counters: list[int]
    root_matched: bool
    leaf_hmac_failures: list[int] = field(default_factory=list)
    metadata_reads: int = 0
    metadata_writes: int = 0
    rebuilt_levels: int = 0

    @property
    def clean(self) -> bool:
        """True when no integrity violation of any kind was detected."""
        return self.root_matched and not self.leaf_hmac_failures

    @property
    def recovery_seconds(self) -> float:
        return self.metadata_reads * METADATA_FETCH_NS * 1e-9


def _group_dummies(dummies: list[int], width: int,
                   arity: int) -> list[list[int]]:
    """Chunk child dummies into parent counter vectors of ``arity``,
    zero-padded (absent children have never been written)."""
    groups: list[list[int]] = []
    for parent in range(width):
        chunk = dummies[parent * arity:(parent + 1) * arity]
        chunk = chunk + [0] * (arity - len(chunk))
        groups.append(chunk)
    return groups


def counter_summing_reconstruction(
        store: SITStore, amap: AddressMap, mac: KeyedMac,
        recovery_root: RootRegister,
        write_back: bool = True) -> ReconstructionResult:
    """Rebuild the SIT bottom-up from persisted counter blocks and compare
    against the on-chip ``recovery_root`` (see module docstring).

    ``write_back=False`` performs a dry-run comparison without touching
    media (used when demonstrating recovery *failures*, where rewriting
    the tree would be wrong)."""
    result = ReconstructionResult(root_counters=[], root_matched=False)

    # -- Step 1+2: read and verify the leaf level --------------------
    bits = amap.counter_bits
    dummies: list[int] = []
    for index in range(amap.num_counter_blocks):
        leaf = store.load(0, index, counted=False)
        result.metadata_reads += 1
        if not isinstance(leaf, CounterBlock):
            raise MetadataTypeError(
                f"level-0 node {index} is {type(leaf).__name__}, "
                "expected CounterBlock")
        addr = amap.counter_block_addr(index)
        if not leaf.verify(mac, addr, leaf.dummy_counter(bits)):
            result.leaf_hmac_failures.append(index)
        dummies.append(leaf.dummy_counter(bits))

    # -- Step 3: rebuild intermediate levels -------------------------
    rebuilt: list[list[SITNode]] = []
    for level in range(1, amap.tree_levels):
        width = amap.level_width(level)
        nodes = [SITNode(level, i, counters=group, arity=amap.arity)
                 for i, group in enumerate(
                     _group_dummies(dummies, width, amap.arity))]
        for node in nodes:
            node.seal(mac, store.node_addr(level, node.index),
                      node.dummy_counter())
        rebuilt.append(nodes)
        dummies = [node.dummy_counter() for node in nodes]
        result.rebuilt_levels += 1

    # -- Step 4: root comparison -------------------------------------
    root_counters = dummies + [0] * (amap.arity - len(dummies))
    result.root_counters = [checked_sum([c], bits) for c in root_counters]
    result.root_matched = recovery_root.matches(result.root_counters)

    # -- Step 5: write back on a clean recovery ----------------------
    if write_back and result.clean:
        for nodes in rebuilt:
            for node in nodes:
                store.save(node, counted=False)
                result.metadata_writes += 1
    return result
