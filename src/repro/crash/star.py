"""SCUE-STAR fast recovery (paper §V-D, Fig 13).

STAR (HPCA'21) tracks *stale* integrity-tree nodes — nodes whose cached
copy has advanced past their media copy — in bitmap lines piggy-backed on
MAC fields, costing no extra runtime writes.  After a crash, only the
stale nodes need reconstruction instead of the whole tree.

With SCUE's counter-summing, each stale node is rebuilt from its eight
children (one dummy counter per child), so the recovery cost model is::

    reads = bitmap_lines + 8 * stale_nodes
    time  = reads * 100 ns

which reproduces the paper's ≈0.05 s at a 4 MB metadata cache
(4 MiB / 64 B = 65536 stale nodes -> 524288 reads -> 52 ms).  STAR
processes levels bottom-up with the bitmap in hand, so child reads are the
only per-node traffic.
"""

from __future__ import annotations

from repro.crash.recovery import METADATA_FETCH_NS
from repro.mem.address import AddressMap, CACHE_LINE_SIZE

#: One bitmap bit per trackable tree node, packed into 64 B lines.
BITS_PER_BITMAP_LINE = CACHE_LINE_SIZE * 8
#: Children read to rebuild one stale node via counter-summing.
READS_PER_STALE_NODE = 8


class StarTracker:
    """Runtime staleness tracking + the STAR recovery cost model."""

    name = "star"
    #: STAR embeds tracking in MAC fields: no extra runtime writes.
    runtime_writes_per_update = 0

    def __init__(self, amap: AddressMap) -> None:
        self.amap = amap
        self._stale: set[tuple[int, int]] = set()
        self.runtime_write_overhead = 0

    # ------------------------------------------------------------------
    # Runtime hooks (wired to the controller's dirty/clean notifications)
    # ------------------------------------------------------------------
    def on_dirty(self, level: int, index: int) -> None:
        self._stale.add((level, index))

    def on_update(self, level: int, index: int) -> None:
        """Per-update notification: bitmap state only changes on dirty
        transitions, so updates beyond the first are free."""

    def on_clean(self, level: int, index: int) -> None:
        self._stale.discard((level, index))

    @property
    def stale_nodes(self) -> int:
        return len(self._stale)

    def stale_coords(self) -> set[tuple[int, int]]:
        return set(self._stale)

    # ------------------------------------------------------------------
    # Recovery cost model
    # ------------------------------------------------------------------
    @property
    def bitmap_lines(self) -> int:
        trackable = self.amap.num_counter_blocks + self.amap.num_tree_nodes
        return -(-trackable // BITS_PER_BITMAP_LINE)

    def recovery_reads(self) -> int:
        return self.bitmap_lines + READS_PER_STALE_NODE * len(self._stale)

    def recovery_seconds(self) -> float:
        return self.recovery_reads() * METADATA_FETCH_NS * 1e-9

    def reset(self) -> None:
        """Post-recovery: everything is consistent again."""
        self._stale.clear()
