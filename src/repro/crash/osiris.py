"""Osiris-style counter recovery (Ye et al., MICRO'18), composed with
SCUE per the paper's §VII orthogonality claim.

The write-through persistence of counter blocks (SuperMem-style) that the
main configuration uses costs one metadata write per data persist.  Osiris
relaxes it: counter blocks stay dirty in the metadata cache and are forced
to media only every ``limit``-th update, so after a crash the persisted
block may be up to ``limit`` bumps stale.  The lost bumps are recoverable
because every data line's ECC-resident MAC is keyed by the exact counter
that encrypted it: recovery replays candidate counters
``stored .. stored + limit`` against the stored data MAC and adopts the
unique match.

Composed with SCUE, the ``Recovery_root`` is still updated *per bump* (a
register write — the shortcut never needed the leaf to be durable), so the
counter-summing comparison still anchors the recovered leaves: a replayed
(data, MAC, counter) tuple passes the per-line search but fails the root
sum, exactly like Table I's replay row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cme.counters import CounterBlock, MINOR_LIMIT, MINORS_PER_BLOCK
from repro.errors import MetadataTypeError, RecoveryError
from repro.mem.address import CACHE_LINE_SIZE

#: Default forced-writeback distance (the Osiris paper's sweet spot).
DEFAULT_OSIRIS_LIMIT = 4


@dataclass
class OsirisReport:
    """Outcome of the counter-recovery phase."""

    leaves_scanned: int = 0
    slots_recovered: int = 0
    candidates_tried: int = 0
    metadata_reads: int = 0
    unrecoverable: list[tuple[int, int]] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return not self.unrecoverable


def _candidates(major: int, minor: int, limit: int):
    """Yield (major, minor) candidates at distance 0..limit bumps from the
    stale stored value.

    Minor overflow never straddles a stale window: the overflow path
    re-encrypts the whole block and the controller force-persists it, so
    a stored image is always from the current major epoch."""
    for distance in range(limit + 1):
        value = minor + distance
        if value < MINOR_LIMIT:
            yield major, value


def recover_leaf_counters(controller, leaf_index: int, limit: int,
                          report: OsirisReport) -> CounterBlock:
    """Recover one counter block's true counters from its stale media
    image plus the covered lines' data MACs."""
    leaf = controller.store.load(0, leaf_index, counted=False)
    if not isinstance(leaf, CounterBlock):
        raise MetadataTypeError(
            f"level-0 node {leaf_index} is {type(leaf).__name__}, "
            "expected CounterBlock")
    report.metadata_reads += 1
    base = leaf_index * MINORS_PER_BLOCK * CACHE_LINE_SIZE
    for slot in range(MINORS_PER_BLOCK):
        line = base + slot * CACHE_LINE_SIZE
        stored_mac = controller.data_macs.get(line)
        if stored_mac is None:
            continue  # never-written line: stale counter is fine
        ciphertext = controller.nvm.peek_line(line)
        for major, minor in _candidates(leaf.major, leaf.minors[slot],
                                        limit):
            report.candidates_tried += 1
            if controller.mac.mac(line, ciphertext, major, minor) \
                    == stored_mac:
                if minor != leaf.minors[slot]:
                    report.slots_recovered += 1
                leaf.minors[slot] = minor
                break
        else:
            report.unrecoverable.append((leaf_index, slot))
    report.leaves_scanned += 1
    return leaf


def osiris_counter_recovery(controller, limit: int) -> OsirisReport:
    """Phase one of crash recovery under relaxed counter persistence:
    rebuild every counter block's true counters and re-seal it (with its
    dummy counter, the SCUE convention) back to media, ready for the
    counter-summing reconstruction of §IV-B.

    Raises :class:`RecoveryError` if any slot has no matching candidate —
    the forced-writeback discipline was violated (or the media was
    tampered beyond what counter search can express)."""
    report = OsirisReport()
    amap = controller.amap
    for index in range(amap.num_counter_blocks):
        leaf = recover_leaf_counters(controller, index, limit, report)
        addr = amap.counter_block_addr(index)
        leaf.seal(controller.mac, addr, leaf.dummy_counter())
        controller.store.save(leaf, counted=False)
    if not report.success:
        raise RecoveryError(
            f"Osiris counter recovery failed for {len(report.unrecoverable)}"
            f" slots (first: {report.unrecoverable[0]}) — stale distance "
            f"exceeded the limit of {limit}")
    return report
