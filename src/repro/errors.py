"""Exception hierarchy for the secure-NVM simulator.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
Integrity-related failures are deliberately separated from configuration and
simulation errors: an :class:`IntegrityError` models a *detected attack*
(the system working as designed), while the others model misuse or internal
inconsistency.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent (e.g. a capacity
    that is not a multiple of the cache-line size)."""


class AddressError(ReproError):
    """An address is out of range or misaligned for the targeted region."""


class IntegrityError(ReproError):
    """Integrity verification failed: a stored MAC or root did not match the
    recomputed value.  This is the simulator's representation of a *detected
    integrity attack* (or, after a crash, of an inconsistent recovery)."""


class RootMismatchError(IntegrityError):
    """The reconstructed integrity-tree root does not match the root stored
    in the on-chip non-volatile register."""


class RecoveryError(ReproError):
    """Recovery could not proceed (distinct from a *detected attack*): for
    example the persisted metadata region is structurally corrupt."""


class CrashError(ReproError):
    """Raised internally to unwind the simulator when an injected crash
    point fires.  Crash injection machinery catches this; user code should
    normally never see it escape :func:`repro.crash.injection.run_until_crash`."""


class SimulationError(ReproError):
    """The simulator reached an internal state that should be impossible
    (a bug in the model, not in the modelled system)."""


class MetadataTypeError(SimulationError):
    """A metadata fetch produced a node of the wrong type (e.g. a
    :class:`~repro.tree.node.SITNode` where a counter block was expected).
    Raised instead of ``assert`` so the check survives ``python -O``."""


class CampaignError(ReproError):
    """An experiment campaign could not complete: a cell failed past its
    retry budget, a worker pool collapsed, or a manifest/cache file is
    structurally unusable.  Per-cell failures inside a non-``fail_fast``
    campaign are *recorded*, not raised."""


class ObservabilityError(SimulationError):
    """The tracing/attribution layer caught the simulator lying about
    itself: per-component attributed cycles do not sum to the total, a
    trace is structurally invalid (unbalanced span begin/end, time going
    backwards), or an exported artifact fails schema validation."""


class PersistOrderingError(SimulationError):
    """The runtime crash-consistency sanitizer observed a persist-order
    violation: security metadata reached the persistence domain in an
    order the scheme's declared crash-consistency rules forbid (e.g. a
    SCUE leaf persisted before its shortcut root update)."""
