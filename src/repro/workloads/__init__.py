"""Workloads (paper §V-A): five persistent-memory microbenchmarks
(array, btree, hash, queue, rbtree — real data-structure implementations
emitting persist-ordered traces) and eight SPEC CPU2006-like synthetic
trace generators.

``PERSISTENT_WORKLOADS`` and ``SPEC_WORKLOADS`` list the canonical
evaluation set; :func:`make_workload` builds any of them by name.
"""

from repro.workloads.base import PersistentHeap, TraceRecorder, Workload
from repro.workloads.persistent import (
    ArrayWorkload,
    BTreeWorkload,
    HashWorkload,
    PLogWorkload,
    QueueWorkload,
    RBTreeWorkload,
)
from repro.workloads.spec import SPEC_PROFILES, SpecWorkload
from repro.workloads.synthetic import (
    StreamWorkload,
    UniformRandomWorkload,
    ZipfWorkload,
)

from repro.errors import ConfigError

#: The paper's canonical evaluation set (Figs 9/10 run exactly these).
PERSISTENT_WORKLOADS = ("array", "btree", "hash", "queue", "rbtree")
SPEC_WORKLOADS = tuple(sorted(SPEC_PROFILES))
ALL_WORKLOADS = PERSISTENT_WORKLOADS + SPEC_WORKLOADS
#: Additional workloads available beyond the paper's set.
EXTRA_WORKLOADS = ("plog",)

_PERSISTENT_CLASSES = {
    "array": ArrayWorkload,
    "btree": BTreeWorkload,
    "hash": HashWorkload,
    "plog": PLogWorkload,
    "queue": QueueWorkload,
    "rbtree": RBTreeWorkload,
}


def make_workload(name: str, data_capacity: int, operations: int,
                  seed: int = 42) -> Workload:
    """Build a canonical workload by name, sized to ``data_capacity``.

    Structure workloads (btree/hash/rbtree) are pre-populated with
    ``4 x operations`` off-trace inserts so the measured region runs
    against a representative structure rather than a cold one (the
    paper's fast-forward methodology)."""
    if name in _PERSISTENT_CLASSES:
        kwargs = dict(data_capacity=data_capacity, operations=operations,
                      seed=seed)
        if name in ("btree", "hash", "rbtree"):
            kwargs["prepopulate"] = operations * 4
        return _PERSISTENT_CLASSES[name](**kwargs)
    if name in SPEC_PROFILES:
        return SpecWorkload(name, data_capacity=data_capacity,
                            operations=operations, seed=seed)
    raise ConfigError(
        f"unknown workload {name!r}; choose from "
        f"{sorted(ALL_WORKLOADS + EXTRA_WORKLOADS)}")


__all__ = [
    "PersistentHeap",
    "TraceRecorder",
    "Workload",
    "ArrayWorkload",
    "BTreeWorkload",
    "HashWorkload",
    "QueueWorkload",
    "RBTreeWorkload",
    "SpecWorkload",
    "SPEC_PROFILES",
    "StreamWorkload",
    "UniformRandomWorkload",
    "ZipfWorkload",
    "PERSISTENT_WORKLOADS",
    "SPEC_WORKLOADS",
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
    "make_workload",
]
