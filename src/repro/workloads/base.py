"""Workload infrastructure: the persistent heap and the trace recorder.

Persistent-memory programs interleave loads, stores, and *persist
barriers* (store + ``clwb`` + ``sfence``).  The data-structure workloads
in :mod:`repro.workloads.persistent` are real implementations written
against :class:`TraceRecorder`: they allocate from a :class:`PersistentHeap`,
touch memory through ``read``/``write``/``persist``, and sprinkle
``compute`` for the ALU work between accesses.  The recorder turns that
into the :class:`~repro.mem.trace.MemoryAccess` stream the simulator
consumes — so the traces have the genuine dependence structure (pointer
chases, split cascades, probe sequences) of the paper's microbenchmarks.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from typing import Protocol

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.mem.trace import AccessType, MemoryAccess


class Workload(Protocol):
    """Anything the driver can run: a name plus a trace factory.

    ``trace()`` must be *restartable*: each call returns a fresh,
    identical iterator (the Fig 9/10 comparisons run the same trace
    through every scheme)."""

    name: str

    def trace(self) -> Iterator[MemoryAccess]: ...


class PersistentHeap:
    """A free-list bump allocator over the simulated data region.

    Allocations are size-class rounded (16 B granularity) and served from
    per-class free lists before the bump frontier — enough realism that
    delete-heavy workloads (queue, rbtree) reuse lines like a real
    persistent allocator would, without modelling a full nvalloc.

    ``scatter`` mode places line-aligned allocations at pseudo-random
    slots across the arena instead of bumping densely: a mature persistent
    heap is fragmented, and node-structure workloads (btree/rbtree) would
    otherwise enjoy unrealistically perfect counter-block locality.
    Scattering is deterministic per seed.
    """

    GRANULE = 16

    def __init__(self, capacity: int, base: int = 0,
                 scatter: bool = False, seed: int = 42) -> None:
        if capacity <= base:
            raise ConfigError("heap capacity must exceed its base")
        self.base = base
        self.capacity = capacity
        self._frontier = base
        self._free: dict[int, list[int]] = {}
        self._scatter = scatter
        self._rng = random.Random(seed)
        self._scatter_used: set[int] = set()

    def _round(self, nbytes: int) -> int:
        if nbytes <= 0:
            raise ConfigError("allocation size must be positive")
        return -(-nbytes // self.GRANULE) * self.GRANULE

    def alloc(self, nbytes: int, line_aligned: bool = False) -> int:
        """Allocate ``nbytes``; ``line_aligned`` forces 64 B alignment
        (node-per-line layouts)."""
        size = self._round(nbytes)
        if line_aligned:
            size = max(size, CACHE_LINE_SIZE)
        bucket = self._free.get(size)
        if bucket:
            return bucket.pop()
        if self._scatter and line_aligned:
            return self._scatter_alloc(size)
        if line_aligned and self._frontier % CACHE_LINE_SIZE:
            self._frontier += CACHE_LINE_SIZE \
                - self._frontier % CACHE_LINE_SIZE
        addr = self._frontier
        self._frontier += size
        if self._frontier > self.capacity:
            raise ConfigError(
                f"persistent heap exhausted at {self._frontier:#x} "
                f"(capacity {self.capacity:#x})")
        return addr

    def _scatter_alloc(self, size: int) -> int:
        """Pick a random free line-aligned placement across the arena
        (tracks used lines, so mixed allocation sizes never overlap)."""
        lines = -(-size // CACHE_LINE_SIZE)
        total_lines = (self.capacity - self.base) // CACHE_LINE_SIZE
        if total_lines < lines:
            raise ConfigError("arena too small to scatter-allocate")
        for _ in range(64):
            start = self._rng.randrange(total_lines - lines + 1)
            span = range(start, start + lines)
            if all(line not in self._scatter_used for line in span):
                self._scatter_used.update(span)
                return self.base + start * CACHE_LINE_SIZE
        raise ConfigError(
            "persistent heap too fragmented to scatter-allocate "
            f"({len(self._scatter_used)}/{total_lines} lines used)")

    def free(self, addr: int, nbytes: int) -> None:
        size = self._round(max(nbytes, CACHE_LINE_SIZE)
                           if nbytes >= CACHE_LINE_SIZE else nbytes)
        self._free.setdefault(size, []).append(addr)

    @property
    def used_bytes(self) -> int:
        return self._frontier - self.base


class TraceRecorder:
    """Collects memory accesses as a workload executes.

    ``compute(n)`` accumulates non-memory instructions; they attach as the
    ``gap`` of the next emitted access.  Multi-line accesses emit one
    record per touched cache line, like real hardware would see.
    """

    def __init__(self) -> None:
        self.records: list[MemoryAccess] = []
        self._gap = 0

    # ------------------------------------------------------------------
    def compute(self, instructions: int) -> None:
        """ALU/branch work between memory accesses."""
        if instructions < 0:
            raise ConfigError("compute() takes a non-negative count")
        self._gap += instructions

    def _emit(self, kind: AccessType, addr: int, size: int) -> None:
        first = addr & ~(CACHE_LINE_SIZE - 1)
        last = (addr + max(size, 1) - 1) & ~(CACHE_LINE_SIZE - 1)
        line = first
        while line <= last:
            self.records.append(MemoryAccess(kind, line, gap=self._gap))
            self._gap = 0
            line += CACHE_LINE_SIZE

    def read(self, addr: int, size: int = 8) -> None:
        self._emit(AccessType.READ, addr, size)

    def write(self, addr: int, size: int = 8) -> None:
        self._emit(AccessType.WRITE, addr, size)

    def persist(self, addr: int, size: int = 8) -> None:
        """Store + clwb + sfence: the line reaches the NVM controller
        before the program continues."""
        self._emit(AccessType.PERSIST, addr, size)

    # ------------------------------------------------------------------
    def take(self) -> list[MemoryAccess]:
        """Return and clear the recorded trace."""
        records, self.records = self.records, []
        return records

    def __len__(self) -> int:
        return len(self.records)


class NullRecorder(TraceRecorder):
    """A recorder that discards everything — used to pre-populate
    data-structure workloads (grow the structure to a realistic size)
    without recording the setup phase, mirroring the paper's
    fast-forward-to-representative-region methodology."""

    def _emit(self, kind: AccessType, addr: int, size: int) -> None:
        self._gap = 0

    def compute(self, instructions: int) -> None:
        pass


class RecordedWorkload:
    """Base class for data-structure workloads: subclasses implement
    :meth:`_generate` against a fresh recorder; ``trace()`` replays the
    (cached) recording, making runs identical across schemes."""

    name = "recorded"

    def __init__(self) -> None:
        self._recorded: list[MemoryAccess] | None = None

    def _generate(self, recorder: TraceRecorder) -> None:
        raise NotImplementedError

    def record(self) -> list[MemoryAccess]:
        if self._recorded is None:
            recorder = TraceRecorder()
            self._generate(recorder)
            self._recorded = recorder.take()
        return self._recorded

    def trace(self) -> Iterator[MemoryAccess]:
        return iter(self.record())

    def __len__(self) -> int:
        return len(self.record())
