"""SPEC CPU2006-like synthetic workloads (paper §V-A).

The paper evaluates 8 SPEC2006 applications ("integer and floating-point
fields ... about 50% memory instructions"), fast-forwarded to
representative regions.  Running SPEC binaries is impossible here
(DESIGN.md §2), so each application is replaced by a seeded synthetic
generator tuned to its published memory character: footprint, read/write
mix, and the blend of streaming, strided, and (Zipf-skewed or uniform)
random traffic.  The controller under test only sees addresses and
read/write kinds, so matching those statistics exercises the identical
code paths the real applications would.

Profiles (character per SPEC documentation / common characterisation
studies):

=========== ==== ===================================================
app         mem% behaviour
=========== ==== ===================================================
bwaves      ~55  FP, large sequential block streams, read-mostly
gcc         ~45  INT, pointer-heavy, skewed working set
lbm         ~50  FP stencil, stream with ~50% writes
leslie3d    ~55  FP stencil, multi-array strided streams
libquantum  ~45  INT, repeated full-array sweeps, read-dominated
mcf         ~55  INT, huge footprint, uniform random pointer chasing
milc        ~50  FP, strided lattice sweeps, moderate writes
soplex      ~50  FP, sparse algebra: random reads + streaming writes
=========== ==== ===================================================
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.mem.trace import AccessType, MemoryAccess
from repro.workloads.synthetic import ZipfSampler


@dataclass(frozen=True)
class SpecProfile:
    """Statistical shape of one application's memory behaviour."""

    name: str
    #: Fraction of the data region the app touches.
    footprint_fraction: float
    #: P(store | memory access).
    write_fraction: float
    #: Probability the next access continues a sequential stream.
    stream_fraction: float
    #: Stride (lines) used by the strided component.
    stride_lines: int
    #: Probability of a strided access (vs random) when not streaming.
    strided_fraction: float
    #: Zipf alpha for the random component; 0 = uniform.
    zipf_alpha: float
    #: Mean non-memory instructions between accesses (~50% memory share
    #: means gap ~= 1).
    mean_gap: int


SPEC_PROFILES: dict[str, SpecProfile] = {
    "bwaves": SpecProfile("bwaves", 0.80, 0.20, 0.85, 1, 0.00, 0.0, 1),
    "gcc": SpecProfile("gcc", 0.30, 0.35, 0.30, 2, 0.20, 1.0, 2),
    "lbm": SpecProfile("lbm", 0.85, 0.50, 0.90, 1, 0.00, 0.0, 1),
    "leslie3d": SpecProfile("leslie3d", 0.70, 0.35, 0.60, 4, 0.30, 0.0, 1),
    "libquantum": SpecProfile("libquantum", 0.60, 0.15, 0.95, 1, 0.00,
                              0.0, 2),
    "mcf": SpecProfile("mcf", 0.95, 0.30, 0.10, 1, 0.00, 0.0, 1),
    "milc": SpecProfile("milc", 0.75, 0.40, 0.40, 8, 0.45, 0.0, 1),
    "soplex": SpecProfile("soplex", 0.60, 0.35, 0.45, 1, 0.15, 0.8, 2),
}


class SpecWorkload:
    """Seeded synthetic trace for one SPEC-like profile."""

    def __init__(self, app: str, data_capacity: int, operations: int,
                 seed: int = 42) -> None:
        if app not in SPEC_PROFILES:
            raise ConfigError(
                f"unknown SPEC profile {app!r}; "
                f"choose from {sorted(SPEC_PROFILES)}")
        self.profile = SPEC_PROFILES[app]
        self.name = app
        self.operations = operations
        self.seed = seed
        self.footprint_lines = max(
            64, int(data_capacity * self.profile.footprint_fraction)
            // CACHE_LINE_SIZE)

    def trace(self) -> Iterator[MemoryAccess]:
        profile = self.profile
        rng = random.Random(
            (self.seed << 8) ^ zlib.crc32(profile.name.encode()))
        sampler = ZipfSampler(self.footprint_lines, profile.zipf_alpha,
                              rng) if profile.zipf_alpha > 0 else None
        cursor = rng.randrange(self.footprint_lines)
        strided_cursor = rng.randrange(self.footprint_lines)
        for _ in range(self.operations):
            roll = rng.random()
            if roll < profile.stream_fraction:
                cursor = (cursor + 1) % self.footprint_lines
                line = cursor
            elif roll < profile.stream_fraction + profile.strided_fraction:
                strided_cursor = (strided_cursor + profile.stride_lines) \
                    % self.footprint_lines
                line = strided_cursor
            elif sampler is not None:
                line = sampler.sample()
            else:
                line = rng.randrange(self.footprint_lines)
                # Occasionally rebase the stream (a new array/loop nest).
                if rng.random() < 0.02:
                    cursor = line
            kind = AccessType.WRITE if rng.random() < profile.write_fraction \
                else AccessType.READ
            gap = max(0, int(rng.expovariate(1 / profile.mean_gap))) \
                if profile.mean_gap else 0
            yield MemoryAccess(kind, line * CACHE_LINE_SIZE, gap=gap)
