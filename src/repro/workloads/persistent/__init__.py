"""The five persistent-memory microbenchmarks of the paper's evaluation
(§V-A): array, btree, hash, queue, rbtree — real data-structure
implementations that emit persist-ordered memory traces."""

from repro.workloads.persistent.array import ArrayWorkload
from repro.workloads.persistent.btree import BTreeWorkload
from repro.workloads.persistent.hashmap import HashWorkload
from repro.workloads.persistent.plog import PLogWorkload
from repro.workloads.persistent.queue import QueueWorkload
from repro.workloads.persistent.rbtree import RBTreeWorkload

__all__ = [
    "ArrayWorkload",
    "BTreeWorkload",
    "HashWorkload",
    "PLogWorkload",
    "QueueWorkload",
    "RBTreeWorkload",
]
