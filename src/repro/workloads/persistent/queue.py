"""Persistent FIFO queue microbenchmark (paper §V-A).

A ring of 64 B entries plus a metadata line holding head/tail.  An
enqueue persists the entry and then the tail pointer (the standard
two-step crash-consistent publication order); a dequeue reads the entry
and persists the new head.  Mostly-sequential address pattern with a hot
metadata line — the locality-friendly end of the persistent workloads.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.workloads.base import PersistentHeap, RecordedWorkload, TraceRecorder


class QueueWorkload(RecordedWorkload):
    """Enqueue/dequeue mix on a crash-consistent persistent ring."""

    name = "queue"

    def __init__(self, data_capacity: int, operations: int, seed: int = 42,
                 entry_bytes: int = CACHE_LINE_SIZE,
                 ring_fraction: float = 0.5,
                 enqueue_bias: float = 0.6,
                 compute_per_op: int = 20) -> None:
        super().__init__()
        if not 0 < enqueue_bias < 1:
            raise ConfigError("enqueue_bias must be in (0, 1)")
        self.operations = operations
        self.entry_bytes = entry_bytes
        self.seed = seed
        self.enqueue_bias = enqueue_bias
        self.compute_per_op = compute_per_op
        ring_bytes = int(data_capacity * ring_fraction)
        self.slots = max(4, ring_bytes // entry_bytes)
        heap = PersistentHeap(data_capacity)
        self._meta = heap.alloc(CACHE_LINE_SIZE, line_aligned=True)
        self._ring = heap.alloc(self.slots * entry_bytes, line_aligned=True)

    def slot_addr(self, slot: int) -> int:
        return self._ring + (slot % self.slots) * self.entry_bytes

    def _generate(self, recorder: TraceRecorder) -> None:
        rng = random.Random(self.seed)
        head = tail = 0
        for _ in range(self.operations):
            recorder.compute(self.compute_per_op)
            occupancy = tail - head
            do_enqueue = (occupancy == 0 or
                          (occupancy < self.slots
                           and rng.random() < self.enqueue_bias))
            if do_enqueue:
                # Publish order: entry first, then the tail pointer.
                recorder.read(self._meta, 16)
                recorder.persist(self.slot_addr(tail), self.entry_bytes)
                recorder.persist(self._meta, 8)
                tail += 1
            else:
                recorder.read(self._meta, 16)
                recorder.read(self.slot_addr(head), self.entry_bytes)
                recorder.persist(self._meta, 8)
                head += 1
