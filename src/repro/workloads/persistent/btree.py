"""Persistent B-tree microbenchmark (paper §V-A).

A genuine B-tree (order 8: up to 7 keys per node, the node filling a
256 B / four-cache-line record like typical persistent B-trees).  Inserts
descend from the root (reads, one per node), insert into the leaf
(persist), and split full nodes on the way up (multiple persists — the
bursty write behaviour that distinguishes btree from the array workload).
Lookups are pure read chains.

The tree is functional: keys live in the nodes, splits really happen, and
the traversal addresses come from the node layout, so trace dependence
mirrors a real implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workloads.base import PersistentHeap, RecordedWorkload, TraceRecorder

ORDER = 8                      # children per node
MAX_KEYS = ORDER - 1
NODE_BYTES = 256               # 7 keys + 8 child pointers + header


@dataclass
class _Node:
    addr: int
    leaf: bool
    keys: list[int] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)


class BTreeWorkload(RecordedWorkload):
    """Insert/lookup mix on a persistent B-tree."""

    name = "btree"

    def __init__(self, data_capacity: int, operations: int, seed: int = 42,
                 insert_bias: float = 0.7,
                 compute_per_op: int = 40,
                 prepopulate: int = 0) -> None:
        super().__init__()
        self.operations = operations
        self.seed = seed
        self.insert_bias = insert_bias
        self.compute_per_op = compute_per_op
        self.prepopulate = prepopulate
        # Scatter nodes across the arena: a mature persistent heap is
        # fragmented, so node locality should not be artificially dense.
        self._heap = PersistentHeap(data_capacity, scatter=True, seed=seed)
        self._root = self._new_node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    def _new_node(self, leaf: bool) -> _Node:
        return _Node(self._heap.alloc(NODE_BYTES, line_aligned=True), leaf)

    @property
    def size(self) -> int:
        """Number of keys currently stored (functional checks)."""
        return self._size

    def contains(self, key: int) -> bool:
        node = self._root
        while True:
            if key in node.keys:
                return True
            if node.leaf:
                return False
            node = node.children[self._child_slot(node, key)]

    @staticmethod
    def _child_slot(node: _Node, key: int) -> int:
        slot = 0
        while slot < len(node.keys) and key > node.keys[slot]:
            slot += 1
        return slot

    # ------------------------------------------------------------------
    def _split_child(self, recorder: TraceRecorder, parent: _Node,
                     slot: int) -> None:
        """Split parent.children[slot] (full) — three node persists, the
        crash-consistent publication order of persistent B-trees."""
        full = parent.children[slot]
        sibling = self._new_node(full.leaf)
        mid = MAX_KEYS // 2
        median = full.keys[mid]
        sibling.keys = full.keys[mid + 1:]
        full.keys = full.keys[:mid]
        if not full.leaf:
            sibling.children = full.children[mid + 1:]
            full.children = full.children[:mid + 1]
        parent.keys.insert(slot, median)
        parent.children.insert(slot + 1, sibling)
        recorder.compute(30)
        recorder.persist(sibling.addr, NODE_BYTES)   # new node first
        recorder.persist(full.addr, NODE_BYTES)      # shrink the old one
        recorder.persist(parent.addr, NODE_BYTES)    # publish in parent

    def _insert(self, recorder: TraceRecorder, key: int) -> None:
        root = self._root
        recorder.read(root.addr, NODE_BYTES)
        if key in root.keys:
            # In-place value update: no structural change.
            recorder.persist(root.addr, NODE_BYTES)
            return
        if len(root.keys) == MAX_KEYS:
            new_root = self._new_node(leaf=False)
            new_root.children.append(root)
            self._root = new_root
            self._split_child(recorder, new_root, 0)
            root = new_root
        node = root
        while not node.leaf:
            if key in node.keys:
                # The key lives in an internal node: update in place
                # rather than inserting a duplicate below it.
                recorder.persist(node.addr, NODE_BYTES)
                return
            slot = self._child_slot(node, key)
            child = node.children[slot]
            recorder.read(child.addr, NODE_BYTES)
            if len(child.keys) == MAX_KEYS:
                self._split_child(recorder, node, slot)
                if key == node.keys[slot]:
                    # The median that just moved up is our key.
                    recorder.persist(node.addr, NODE_BYTES)
                    return
                if key > node.keys[slot]:
                    child = node.children[slot + 1]
                    recorder.read(child.addr, NODE_BYTES)
            node = child
        if key not in node.keys:
            node.keys.append(key)
            node.keys.sort()
            self._size += 1
        recorder.compute(12)
        recorder.persist(node.addr, NODE_BYTES)

    def _lookup(self, recorder: TraceRecorder, key: int) -> bool:
        node = self._root
        while True:
            recorder.read(node.addr, NODE_BYTES)
            if key in node.keys:
                return True
            if node.leaf:
                return False
            node = node.children[self._child_slot(node, key)]

    # ------------------------------------------------------------------
    def _generate(self, recorder: TraceRecorder) -> None:
        from repro.workloads.base import NullRecorder
        rng = random.Random(self.seed)
        inserted: list[int] = []
        if self.prepopulate:
            # Grow to a representative size off-trace (fast-forward).
            setup = NullRecorder()
            for _ in range(self.prepopulate):
                key = rng.randrange(1, 1 << 48)
                self._insert(setup, key)
                inserted.append(key)
        for _ in range(self.operations):
            recorder.compute(self.compute_per_op)
            if not inserted or rng.random() < self.insert_bias:
                key = rng.randrange(1, 1 << 48)
                self._insert(recorder, key)
                inserted.append(key)
            elif rng.random() < 0.5:
                self._lookup(recorder, rng.choice(inserted))
            else:
                self._lookup(recorder, rng.randrange(1, 1 << 48))
