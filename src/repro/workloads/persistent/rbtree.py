"""Persistent red-black tree microbenchmark (paper §V-A).

A full red-black tree with the textbook insert fixup (recolouring and
rotations).  Every node is one 64 B line (key, value, colour, three
pointers — 40 B payload).  Descents emit a read per node; structural
changes persist every touched node.  Compared with the B-tree this has
deeper pointer chases and smaller, more scattered persists — the pattern
that makes rbtree the classic adversarial persistent workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import MetadataTypeError
from repro.mem.address import CACHE_LINE_SIZE
from repro.workloads.base import PersistentHeap, RecordedWorkload, TraceRecorder

RED = True
BLACK = False


@dataclass
class _Node:
    addr: int
    key: int
    color: bool = RED
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    parent: Optional["_Node"] = None


class RBTreeWorkload(RecordedWorkload):
    """Insert/lookup mix on a persistent red-black tree."""

    name = "rbtree"

    def __init__(self, data_capacity: int, operations: int, seed: int = 42,
                 insert_bias: float = 0.7,
                 compute_per_op: int = 36,
                 prepopulate: int = 0) -> None:
        super().__init__()
        self.operations = operations
        self.seed = seed
        self.insert_bias = insert_bias
        self.compute_per_op = compute_per_op
        self.prepopulate = prepopulate
        # Scattered node placement: see BTreeWorkload — fragmentation is
        # the realistic steady state for a long-lived persistent heap.
        self._heap = PersistentHeap(data_capacity, scatter=True, seed=seed)
        self._root: _Node | None = None
        self._size = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def contains(self, key: int) -> bool:
        node = self._root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def black_height_valid(self) -> bool:
        """Red-black invariant check (used by property tests): every
        root-to-leaf path has the same black count and no red node has a
        red child."""
        def walk(node: _Node | None) -> int:
            if node is None:
                return 1
            if node.color is RED:
                for child in (node.left, node.right):
                    if child is not None and child.color is RED:
                        raise ValueError("red-red violation")
            left = walk(node.left)
            right = walk(node.right)
            if left != right:
                raise ValueError("black-height mismatch")
            return left + (0 if node.color is RED else 1)

        try:
            walk(self._root)
        except ValueError:
            return False
        return self._root is None or self._root.color is BLACK

    # ------------------------------------------------------------------
    def _persist_node(self, recorder: TraceRecorder, node: _Node) -> None:
        recorder.persist(node.addr, CACHE_LINE_SIZE)

    def _rotate_left(self, recorder: TraceRecorder, x: _Node) -> None:
        y = x.right
        if y is None:
            raise MetadataTypeError("left-rotation pivot has no right child")
        recorder.read(y.addr, CACHE_LINE_SIZE)
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
            self._persist_node(recorder, y.left)
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
            self._persist_node(recorder, x.parent)
        else:
            x.parent.right = y
            self._persist_node(recorder, x.parent)
        y.left = x
        x.parent = y
        self._persist_node(recorder, x)
        self._persist_node(recorder, y)

    def _rotate_right(self, recorder: TraceRecorder, x: _Node) -> None:
        y = x.left
        if y is None:
            raise MetadataTypeError("right-rotation pivot has no left child")
        recorder.read(y.addr, CACHE_LINE_SIZE)
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
            self._persist_node(recorder, y.right)
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
            self._persist_node(recorder, x.parent)
        else:
            x.parent.left = y
            self._persist_node(recorder, x.parent)
        y.right = x
        x.parent = y
        self._persist_node(recorder, x)
        self._persist_node(recorder, y)

    def _fixup(self, recorder: TraceRecorder, z: _Node) -> None:
        while z.parent is not None and z.parent.color is RED:
            grand = z.parent.parent
            if grand is None:
                raise MetadataTypeError(
                    "red parent without grandparent in insert fixup")
            recorder.read(grand.addr, CACHE_LINE_SIZE)
            if z.parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    self._persist_node(recorder, z.parent)
                    self._persist_node(recorder, uncle)
                    self._persist_node(recorder, grand)
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(recorder, z)
                    if z.parent is None or z.parent.parent is None:
                        raise MetadataTypeError(
                            "rotation detached the fixup path")
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._persist_node(recorder, z.parent)
                    self._rotate_right(recorder, z.parent.parent)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    self._persist_node(recorder, z.parent)
                    self._persist_node(recorder, uncle)
                    self._persist_node(recorder, grand)
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(recorder, z)
                    if z.parent is None or z.parent.parent is None:
                        raise MetadataTypeError(
                            "rotation detached the fixup path")
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._persist_node(recorder, z.parent)
                    self._rotate_left(recorder, z.parent.parent)
        if self._root is None:
            raise MetadataTypeError("fixup reached an empty tree")
        if self._root.color is RED:
            self._root.color = BLACK
            self._persist_node(recorder, self._root)

    def _insert(self, recorder: TraceRecorder, key: int) -> None:
        parent: _Node | None = None
        node = self._root
        while node is not None:
            recorder.read(node.addr, CACHE_LINE_SIZE)
            if key == node.key:
                self._persist_node(recorder, node)  # value update in place
                return
            parent = node
            node = node.left if key < node.key else node.right
        fresh = _Node(self._heap.alloc(CACHE_LINE_SIZE, line_aligned=True),
                      key, RED, parent=parent)
        self._size += 1
        if parent is None:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        recorder.compute(10)
        self._persist_node(recorder, fresh)          # node before link
        if parent is not None:
            self._persist_node(recorder, parent)
        self._fixup(recorder, fresh)

    def _lookup(self, recorder: TraceRecorder, key: int) -> bool:
        node = self._root
        while node is not None:
            recorder.read(node.addr, CACHE_LINE_SIZE)
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    # ------------------------------------------------------------------
    def _generate(self, recorder: TraceRecorder) -> None:
        from repro.workloads.base import NullRecorder
        rng = random.Random(self.seed)
        inserted: list[int] = []
        if self.prepopulate:
            setup = NullRecorder()
            for _ in range(self.prepopulate):
                key = rng.randrange(1, 1 << 48)
                self._insert(setup, key)
                inserted.append(key)
        for _ in range(self.operations):
            recorder.compute(self.compute_per_op)
            if not inserted or rng.random() < self.insert_bias:
                key = rng.randrange(1, 1 << 48)
                self._insert(recorder, key)
                inserted.append(key)
            elif rng.random() < 0.5:
                self._lookup(recorder, rng.choice(inserted))
            else:
                self._lookup(recorder, rng.randrange(1, 1 << 48))
