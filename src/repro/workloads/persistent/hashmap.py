"""Persistent hash table microbenchmark (paper §V-A).

Open-addressing table with linear probing over 16 B slots (8 B key,
8 B value).  Inserts probe (reads) until a free slot, then persist the
slot; lookups probe and stop at the key or an empty slot.  The table is
functional — keys genuinely collide, probe chains genuinely grow — so the
trace has the data-dependent read bursts real hash tables produce.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.workloads.base import PersistentHeap, RecordedWorkload, TraceRecorder

SLOT_BYTES = 16
EMPTY = None


class HashWorkload(RecordedWorkload):
    """Insert/lookup mix on a linear-probing persistent hash table."""

    name = "hash"

    def __init__(self, data_capacity: int, operations: int, seed: int = 42,
                 table_fraction: float = 0.5,
                 insert_bias: float = 0.5,
                 max_load_factor: float = 0.7,
                 compute_per_op: int = 30,
                 prepopulate: int = 0) -> None:
        super().__init__()
        if not 0 < max_load_factor < 1:
            raise ConfigError("max_load_factor must be in (0, 1)")
        self.operations = operations
        self.seed = seed
        self.insert_bias = insert_bias
        self.max_load_factor = max_load_factor
        self.compute_per_op = compute_per_op
        self.prepopulate = prepopulate
        table_bytes = int(data_capacity * table_fraction)
        # Cap the slot count so the functional shadow list stays cheap on
        # huge simulated capacities; the address span still covers the
        # requested fraction because slots map to SLOT_BYTES strides.
        self.slots = max(16, min(table_bytes // SLOT_BYTES, 1 << 20))
        heap = PersistentHeap(data_capacity)
        self._table = heap.alloc(self.slots * SLOT_BYTES, line_aligned=True)
        # The functional table: slot -> key (layout decides addresses).
        self._keys: list[int | None] = [EMPTY] * self.slots

    def slot_addr(self, slot: int) -> int:
        return self._table + slot * SLOT_BYTES

    def _hash(self, key: int) -> int:
        # Fibonacci hashing: good spread without crypto cost.
        return (key * 11400714819323198485) % self.slots

    # ------------------------------------------------------------------
    def _probe_insert(self, recorder: TraceRecorder, key: int) -> bool:
        """Insert ``key``; returns True when a fresh slot was consumed."""
        slot = self._hash(key)
        while True:
            recorder.read(self.slot_addr(slot), SLOT_BYTES)
            if self._keys[slot] is EMPTY or self._keys[slot] == key:
                fresh = self._keys[slot] is EMPTY
                self._keys[slot] = key
                recorder.compute(6)
                recorder.persist(self.slot_addr(slot), SLOT_BYTES)
                return fresh
            slot = (slot + 1) % self.slots

    def _probe_lookup(self, recorder: TraceRecorder, key: int) -> bool:
        slot = self._hash(key)
        while True:
            recorder.read(self.slot_addr(slot), SLOT_BYTES)
            if self._keys[slot] is EMPTY:
                return False
            if self._keys[slot] == key:
                return True
            slot = (slot + 1) % self.slots

    def _generate(self, recorder: TraceRecorder) -> None:
        from repro.workloads.base import NullRecorder
        rng = random.Random(self.seed)
        live = 0
        key_space = max(64, (self.operations + self.prepopulate) * 4)
        inserted: list[int] = []
        cap = int(self.slots * self.max_load_factor)
        if self.prepopulate:
            setup = NullRecorder()
            for _ in range(min(self.prepopulate, cap)):
                key = rng.randrange(1, key_space)
                if self._probe_insert(setup, key):
                    live += 1
                inserted.append(key)
        for _ in range(self.operations):
            recorder.compute(self.compute_per_op)
            insert = live < cap and (not inserted
                                     or rng.random() < self.insert_bias)
            if insert:
                key = rng.randrange(1, key_space)
                if self._probe_insert(recorder, key):
                    live += 1
                inserted.append(key)
            else:
                # 50/50 hit vs miss lookups: misses walk whole chains.
                if rng.random() < 0.5 and inserted:
                    key = rng.choice(inserted)
                else:
                    key = rng.randrange(key_space, key_space * 2)
                self._probe_lookup(recorder, key)
