"""Persistent array microbenchmark (paper §V-A).

The classic persistent-memory "array" workload: a large array of 64 B
records updated at random indices, each update persisted with a clwb +
sfence pair (swizzle-style in-place update).  Write-dominated with a large
uniform footprint — the worst case for metadata-cache locality and
therefore the workload where update-scheme overheads show most.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.workloads.base import PersistentHeap, RecordedWorkload, TraceRecorder


class ArrayWorkload(RecordedWorkload):
    """Random read-modify-persist updates over a persistent array."""

    name = "array"

    def __init__(self, data_capacity: int, operations: int, seed: int = 42,
                 entry_bytes: int = CACHE_LINE_SIZE,
                 working_set_fraction: float = 0.5,
                 read_fraction: float = 0.2,
                 compute_per_op: int = 24) -> None:
        super().__init__()
        if not 0 < working_set_fraction <= 1:
            raise ConfigError("working_set_fraction must be in (0, 1]")
        if not 0 <= read_fraction < 1:
            raise ConfigError("read_fraction must be in [0, 1)")
        self.operations = operations
        self.entry_bytes = entry_bytes
        self.seed = seed
        self.read_fraction = read_fraction
        self.compute_per_op = compute_per_op
        working_set = int(data_capacity * working_set_fraction)
        self.entries = max(1, working_set // entry_bytes)
        self._heap = PersistentHeap(data_capacity)
        self._base = self._heap.alloc(self.entries * entry_bytes,
                                      line_aligned=True)

    def entry_addr(self, index: int) -> int:
        if not 0 <= index < self.entries:
            raise ConfigError(f"array index {index} out of range")
        return self._base + index * self.entry_bytes

    def _generate(self, recorder: TraceRecorder) -> None:
        rng = random.Random(self.seed)
        for _ in range(self.operations):
            index = rng.randrange(self.entries)
            addr = self.entry_addr(index)
            recorder.compute(self.compute_per_op)
            if rng.random() < self.read_fraction:
                recorder.read(addr, self.entry_bytes)
                continue
            # Read-modify-persist: load the record, update it in place,
            # force it to NVM before the next operation.
            recorder.read(addr, self.entry_bytes)
            recorder.compute(4)
            recorder.persist(addr, self.entry_bytes)
