"""Persistent append-log workload (beyond the paper's five).

The most common persistent-memory idiom that the paper's microbenchmark
set does not include: an append-only log with a persisted head pointer
and periodic checkpoint + truncation.  Appends are perfectly sequential
(best-case counter-block locality: 64 consecutive entries share one
block), which makes the log the *opposite* pole from the random-update
array — useful for bracketing scheme behaviour.  Not part of the Fig 9/10
canonical set (which mirrors the paper); available through
:func:`repro.workloads.make_workload` as ``"plog"``.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.workloads.base import PersistentHeap, RecordedWorkload, TraceRecorder


class PLogWorkload(RecordedWorkload):
    """Append + periodic checkpoint on a persistent log."""

    name = "plog"

    def __init__(self, data_capacity: int, operations: int, seed: int = 42,
                 entry_bytes: int = CACHE_LINE_SIZE,
                 log_fraction: float = 0.6,
                 checkpoint_every: int = 64,
                 compute_per_op: int = 18) -> None:
        super().__init__()
        if checkpoint_every <= 0:
            raise ConfigError("checkpoint_every must be positive")
        self.operations = operations
        self.entry_bytes = entry_bytes
        self.seed = seed
        self.checkpoint_every = checkpoint_every
        self.compute_per_op = compute_per_op
        heap = PersistentHeap(data_capacity)
        self._head = heap.alloc(CACHE_LINE_SIZE, line_aligned=True)
        log_bytes = int(data_capacity * log_fraction)
        self.slots = max(8, log_bytes // entry_bytes)
        self._log = heap.alloc(self.slots * entry_bytes, line_aligned=True)
        # Checkpoint area: a compact snapshot region.
        self._checkpoint = heap.alloc(
            max(CACHE_LINE_SIZE, self.slots // 8 * 8), line_aligned=True)

    def entry_addr(self, sequence: int) -> int:
        return self._log + (sequence % self.slots) * self.entry_bytes

    def _generate(self, recorder: TraceRecorder) -> None:
        rng = random.Random(self.seed)
        sequence = 0
        since_checkpoint = 0
        for _ in range(self.operations):
            recorder.compute(self.compute_per_op)
            # Append: entry first, then publish the head pointer.
            recorder.persist(self.entry_addr(sequence), self.entry_bytes)
            recorder.persist(self._head, 8)
            sequence += 1
            since_checkpoint += 1
            if since_checkpoint >= self.checkpoint_every:
                # Checkpoint: scan the unflushed tail, write the compact
                # snapshot, then truncate by republishing the head.
                recorder.compute(40)
                start = sequence - since_checkpoint
                for i in range(start, sequence, 4):
                    recorder.read(self.entry_addr(i), self.entry_bytes)
                span = min(since_checkpoint * 8,
                           self.slots // 8 * 8) or 8
                recorder.persist(self._checkpoint, span)
                recorder.persist(self._head, 8)
                since_checkpoint = 0
            elif rng.random() < 0.1:
                # Occasional reader catching up on the tail.
                back = rng.randrange(1, min(sequence, 16) + 1)
                recorder.read(self.entry_addr(sequence - back),
                              self.entry_bytes)
