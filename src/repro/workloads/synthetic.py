"""Synthetic access-pattern primitives.

Building blocks for the SPEC-like profiles (:mod:`repro.workloads.spec`)
and directly usable in tests/benchmarks: sequential streams, uniform
random traffic, and Zipf-skewed traffic.  All generators are seeded and
restartable — every ``trace()`` call yields the identical sequence.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator

from repro.errors import ConfigError
from repro.mem.address import CACHE_LINE_SIZE
from repro.mem.trace import AccessType, MemoryAccess


class ZipfSampler:
    """Zipf-distributed integers in ``[0, n)`` via the cumulative inverse
    method with a precomputed table (fast, deterministic)."""

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        if n <= 0:
            raise ConfigError("Zipf support must be positive")
        if alpha <= 0:
            raise ConfigError("Zipf alpha must be positive")
        self._rng = rng
        # Cap the explicit table; the tail beyond it is near-uniform cold.
        self._table_n = min(n, 1 << 16)
        self._n = n
        weights = [1.0 / math.pow(i + 1, alpha) for i in range(self._table_n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def sample(self) -> int:
        u = self._rng.random()
        lo, hi = 0, self._table_n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        if self._n > self._table_n:
            # Spread table ranks across the full support deterministically.
            return (lo * 2654435761) % self._n
        return lo


class StreamWorkload:
    """Pure sequential streaming over a region (bwaves/lbm-style)."""

    def __init__(self, name: str, footprint: int, accesses: int,
                 write_fraction: float = 0.3, gap: int = 2,
                 base: int = 0) -> None:
        if footprint < CACHE_LINE_SIZE:
            raise ConfigError("footprint must cover at least one line")
        self.name = name
        self.footprint = footprint
        self.accesses = accesses
        self.write_fraction = write_fraction
        self.gap = gap
        self.base = base

    def trace(self) -> Iterator[MemoryAccess]:
        lines = self.footprint // CACHE_LINE_SIZE
        writes_every = max(1, round(1 / self.write_fraction)) \
            if self.write_fraction else 0
        for i in range(self.accesses):
            addr = self.base + (i % lines) * CACHE_LINE_SIZE
            write = writes_every and (i % writes_every == writes_every - 1)
            kind = AccessType.WRITE if write else AccessType.READ
            yield MemoryAccess(kind, addr, gap=self.gap)


class UniformRandomWorkload:
    """Uniform random traffic (mcf-style pointer chasing)."""

    def __init__(self, name: str, footprint: int, accesses: int,
                 write_fraction: float = 0.3, gap: int = 2,
                 seed: int = 42, persist_fraction: float = 0.0,
                 base: int = 0) -> None:
        self.name = name
        self.footprint = footprint
        self.accesses = accesses
        self.write_fraction = write_fraction
        self.persist_fraction = persist_fraction
        self.gap = gap
        self.seed = seed
        self.base = base

    def trace(self) -> Iterator[MemoryAccess]:
        rng = random.Random(self.seed)
        lines = self.footprint // CACHE_LINE_SIZE
        for _ in range(self.accesses):
            addr = self.base + rng.randrange(lines) * CACHE_LINE_SIZE
            roll = rng.random()
            if roll < self.persist_fraction:
                kind = AccessType.PERSIST
            elif roll < self.persist_fraction + self.write_fraction:
                kind = AccessType.WRITE
            else:
                kind = AccessType.READ
            yield MemoryAccess(kind, addr, gap=self.gap)


class ZipfWorkload:
    """Zipf-skewed traffic: hot lines dominate (gcc/omnetpp-style)."""

    def __init__(self, name: str, footprint: int, accesses: int,
                 alpha: float = 0.9, write_fraction: float = 0.3,
                 gap: int = 2, seed: int = 42, base: int = 0) -> None:
        self.name = name
        self.footprint = footprint
        self.accesses = accesses
        self.alpha = alpha
        self.write_fraction = write_fraction
        self.gap = gap
        self.seed = seed
        self.base = base

    def trace(self) -> Iterator[MemoryAccess]:
        rng = random.Random(self.seed)
        lines = self.footprint // CACHE_LINE_SIZE
        sampler = ZipfSampler(lines, self.alpha, rng)
        for _ in range(self.accesses):
            addr = self.base + sampler.sample() * CACHE_LINE_SIZE
            kind = AccessType.WRITE if rng.random() < self.write_fraction \
                else AccessType.READ
            yield MemoryAccess(kind, addr, gap=self.gap)
