"""Binary trace files: record workloads once, replay them anywhere.

Format (little-endian, per record)::

    u8  kind     0=READ 1=WRITE 2=PERSIST, bit 7 set when data follows
    u48 addr
    u32 gap
    [64 bytes data]          only when bit 7 of kind is set

with an 8-byte magic header carrying a format version.  Files are
optionally gzip-compressed (detected on load by the magic).  This lets
expensive generated traces (big SPEC-like sweeps, pre-populated
structures) be produced once and replayed across schemes/configs, and
lets externally produced traces (e.g. converted PIN/valgrind logs) drive
the simulator.
"""

from __future__ import annotations

import gzip
import io
import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import ConfigError
from repro.mem.trace import AccessType, MemoryAccess

MAGIC = b"RPTRC\x01\x00\x00"
_KINDS = {AccessType.READ: 0, AccessType.WRITE: 1, AccessType.PERSIST: 2}
_KINDS_BACK = {v: k for k, v in _KINDS.items()}
_DATA_FLAG = 0x80
#: Fixed record header: kind u8, gap u32, addr u64.
_HEADER = struct.Struct("<BIQ")


def save_trace(path: str | Path, trace: Iterable[MemoryAccess],
               compress: bool = False) -> int:
    """Write a trace to ``path``; returns the record count."""
    raw = io.BytesIO()
    raw.write(MAGIC)
    count = 0
    for access in trace:
        kind = _KINDS[access.kind]
        if access.data is not None:
            kind |= _DATA_FLAG
        raw.write(_HEADER.pack(kind, access.gap, access.addr))
        if access.data is not None:
            payload = (access.data + bytes(64))[:64]
            raw.write(payload)
        count += 1
    blob = raw.getvalue()
    if compress:
        blob = gzip.compress(blob)
    Path(path).write_bytes(blob)
    return count


def load_trace(path: str | Path) -> Iterator[MemoryAccess]:
    """Stream records back from a file written by :func:`save_trace`."""
    blob = Path(path).read_bytes()
    if blob[:2] == b"\x1f\x8b":      # gzip magic
        blob = gzip.decompress(blob)
    if blob[:len(MAGIC)] != MAGIC:
        raise ConfigError(f"{path}: not a repro trace file")
    offset = len(MAGIC)
    size = len(blob)
    while offset < size:
        if offset + _HEADER.size > size:
            raise ConfigError(f"{path}: truncated record header")
        kind, gap, addr = _HEADER.unpack_from(blob, offset)
        offset += _HEADER.size
        data = None
        if kind & _DATA_FLAG:
            if offset + 64 > size:
                raise ConfigError(f"{path}: truncated record payload")
            data = blob[offset:offset + 64]
            offset += 64
        try:
            access_kind = _KINDS_BACK[kind & ~_DATA_FLAG]
        except KeyError:
            raise ConfigError(
                f"{path}: unknown record kind {kind:#x}") from None
        yield MemoryAccess(access_kind, addr, gap=gap, data=data)
