"""Command-line interface: drive the simulator without writing Python.

::

    repro-sim info                                    # schemes & workloads
    repro-sim run --scheme scue --workload btree      # one simulation
    repro-sim compare --workload hash                 # all schemes, one table
    repro-sim crash --scheme lazy --workload array    # crash + recovery
    repro-sim record --workload rbtree -o rbtree.trc  # trace to file
    repro-sim replay rbtree.trc --scheme scue         # file-driven run

Installed as ``repro-sim`` via the package's console script; also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bench.reporting import format_simple_table, human_bytes
from repro.crash.injection import CrashPlan, run_with_crash
from repro.secure import SCHEMES
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import ALL_WORKLOADS, make_workload
from repro.workloads.traceio import load_trace, save_trace

DEFAULT_CAPACITY = 16 * 1024 * 1024
DEFAULT_OPERATIONS = 500


def _add_system_args(parser: argparse.ArgumentParser,
                     with_scheme: bool = True) -> None:
    if with_scheme:
        parser.add_argument("--scheme", default="scue",
                            choices=sorted(SCHEMES))
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY,
                        help="simulated data bytes "
                             f"(default {DEFAULT_CAPACITY})")
    parser.add_argument("--tree-levels", type=int, default=None)
    parser.add_argument("--tree-arity", type=int, default=8,
                        choices=(8, 16, 32))
    parser.add_argument("--hash-latency", type=int, default=40)
    parser.add_argument("--metadata-cache", type=int, default=256 * 1024)
    parser.add_argument("--eadr", action="store_true")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="array",
                        choices=sorted(ALL_WORKLOADS))
    parser.add_argument("--operations", type=int,
                        default=DEFAULT_OPERATIONS)
    parser.add_argument("--seed", type=int, default=42)


def _config(args: argparse.Namespace, scheme: str | None = None
            ) -> SystemConfig:
    return SystemConfig(
        scheme=scheme or args.scheme,
        data_capacity=args.capacity,
        tree_levels=args.tree_levels,
        tree_arity=args.tree_arity,
        hash_latency=args.hash_latency,
        metadata_cache_size=args.metadata_cache,
        eadr=args.eadr)


def _print_result(result) -> None:
    print(f"workload          : {result.workload}")
    print(f"scheme            : {result.scheme}")
    print(f"cycles            : {result.cycles:,}")
    print(f"instructions      : {result.instructions:,}  "
          f"(IPC {result.ipc:.2f})")
    print(f"loads/stores/psts : {result.loads}/{result.stores}/"
          f"{result.persists}")
    print(f"avg write latency : {result.avg_write_latency:.0f} cycles")
    print(f"avg read latency  : {result.avg_read_latency:.0f} cycles")
    print(f"NVM accesses      : data {result.nvm_data_reads}r/"
          f"{result.nvm_data_writes}w, metadata {result.nvm_meta_reads}r/"
          f"{result.nvm_meta_writes}w")
    print(f"hashes computed   : {result.hashes:,}")


# ======================================================================
# Subcommands
# ======================================================================
def cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(SCHEMES):
        cls = SCHEMES[name]
        rows.append([name, "yes" if cls.crash_consistent_root else "no",
                     (cls.__doc__ or "").strip().splitlines()[0]])
    print(format_simple_table("schemes",
                              ["name", "root consistent", "summary"], rows))
    print()
    print("workloads:", ", ".join(sorted(ALL_WORKLOADS)))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    system = System(_config(args))
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    system.run(workload.trace())
    _print_result(system.result(args.workload))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    trace = list(workload.trace())
    rows = []
    baseline = None
    for scheme in sorted(SCHEMES):
        system = System(_config(args, scheme))
        system.run(iter(trace))
        result = system.result(args.workload)
        if scheme == "baseline":
            baseline = result
        rows.append((scheme, result, system))
    table = []
    for scheme, result, system in rows:
        table.append([
            scheme,
            f"{result.write_latency_vs(baseline):.2f}x" if baseline else "-",
            f"{result.execution_time_vs(baseline):.2f}x" if baseline else "-",
            f"{result.metadata_accesses:,}",
            human_bytes(system.controller.onchip_overhead_bytes()),
        ])
    print(format_simple_table(
        f"all schemes on '{args.workload}' ({len(trace)} accesses)",
        ["scheme", "write lat", "exec time", "meta accesses", "on-chip"],
        table))
    return 0


def cmd_crash(args: argparse.Namespace) -> int:
    system = System(_config(args))
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    executed = run_with_crash(system, workload.trace(),
                              CrashPlan(args.crash_after))
    print(f"crashed after {executed} accesses; recovering...")
    report = system.recover()
    print(f"recovery : {'SUCCESS' if report.success else 'FAILED'}")
    print(f"detail   : {report.detail}")
    print(f"reads    : {report.metadata_reads:,} "
          f"(~{report.recovery_seconds * 1000:.2f} ms at 100ns/fetch)")
    return 0 if report.success else 1


def cmd_record(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    count = save_trace(args.output, workload.trace(),
                       compress=args.compress)
    print(f"wrote {count} records to {args.output}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    system = System(_config(args))
    system.run(load_trace(args.trace))
    _print_result(system.result(f"replay:{args.trace}"))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchScale,
        fig5_crash_window,
        fig9_write_latency,
        fig10_execution_time,
        fig11_hash_sweep_write_latency,
        fig12_hash_sweep_execution_time,
        fig13_recovery_time,
        format_ratio_table,
        format_simple_table,
        sec5e_memory_accesses,
        sec5f_space_overheads,
        table1_attack_detection,
    )
    from repro.bench.export import save_json
    from repro.bench.reporting import human_bytes

    scale = {"quick": BenchScale.quick, "default": BenchScale.default,
             "paper": BenchScale.paper}[args.scale]()
    name = args.figure
    if name in ("fig9", "fig10", "sec5e"):
        matrix_fig = fig9_write_latency(scale)
        if name == "fig9":
            result = matrix_fig
            print(format_ratio_table("Fig 9: write latency", result.table,
                                     result.paper_average))
        elif name == "fig10":
            result = fig10_execution_time(matrix=matrix_fig.matrix)
            print(format_ratio_table("Fig 10: execution time",
                                     result.table, result.paper_average))
        else:
            result = sec5e_memory_accesses(matrix=matrix_fig.matrix)
            print(format_ratio_table("Sec V-E: metadata accesses",
                                     result.table, result.paper_average,
                                     baseline_note="normalized to Lazy"))
    elif name in ("fig11", "fig12"):
        fn = fig11_hash_sweep_write_latency if name == "fig11" \
            else fig12_hash_sweep_execution_time
        result = fn(scale)
        for latency, row in result.table.items():
            print(f"{latency:>4} cycles: geomean "
                  f"{result.average(latency):.3f}")
    elif name == "fig13":
        result = fig13_recovery_time()
        for tracker, row in result.table.items():
            for size, seconds in row.items():
                print(f"{tracker:5s} {size >> 10:5d}KB "
                      f"{seconds * 1000:8.2f} ms")
    elif name == "fig5":
        result = fig5_crash_window()
        for scheme, rate in result.success_rate.items():
            print(f"{scheme:10s} {rate:.0%}")
    elif name == "table1":
        result = table1_attack_detection()
        for attack, outcome in result.outcomes.items():
            print(f"{attack:20s} detected={outcome['detected']} "
                  f"by={outcome['by']}")
    elif name == "sec5f":
        result = sec5f_space_overheads()
        print(format_simple_table(
            "Sec V-F", ["scheme", "measured", "paper"],
            [[r.scheme, human_bytes(r.measured_bytes),
              human_bytes(r.paper_bytes)] for r in result]))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown figure {name}")
    if args.json:
        save_json(result, args.json)
        print(f"\nwrote {args.json}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as analysis_main
    return analysis_main(args.lint_args)


# ======================================================================
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="SCUE secure-NVM simulator (HPCA'23 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list schemes and workloads") \
        .set_defaults(func=cmd_info)

    p = sub.add_parser("run", help="run one workload on one scheme")
    _add_system_args(p)
    _add_workload_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="run every scheme on one workload")
    _add_system_args(p, with_scheme=False)
    _add_workload_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("crash", help="crash mid-run and attempt recovery")
    _add_system_args(p)
    _add_workload_args(p)
    p.add_argument("--crash-after", type=int, default=200,
                   help="accesses before the power failure")
    p.set_defaults(func=cmd_crash)

    p = sub.add_parser("record", help="record a workload trace to a file")
    _add_workload_args(p)
    p.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--compress", action="store_true")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="run a recorded trace file")
    p.add_argument("trace")
    _add_system_args(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("figures",
                       help="regenerate one of the paper's figures")
    p.add_argument("figure", choices=("fig5", "fig9", "fig10", "fig11",
                                      "fig12", "fig13", "table1",
                                      "sec5e", "sec5f"))
    p.add_argument("--scale", default="quick",
                   choices=("quick", "default", "paper"))
    p.add_argument("--json", help="also write the result as JSON")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "analyze",
        help="run reprolint + the crash-consistency analysis gate")
    p.add_argument("lint_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to python -m repro.analysis "
                        "(e.g. --strict, --format json, --list-rules)")
    p.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["analyze"]:
        # Forward verbatim: argparse REMAINDER refuses leading options
        # (e.g. ``analyze --strict``), so bypass the subparser.
        from repro.analysis.cli import main as analysis_main
        return analysis_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
