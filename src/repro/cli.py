"""Command-line interface: drive the simulator without writing Python.

::

    repro-sim info                                    # schemes & workloads
    repro-sim run --scheme scue --workload btree      # one simulation
    repro-sim compare --workload hash                 # all schemes, one table
    repro-sim crash --scheme lazy --workload array    # crash + recovery
    repro-sim record --workload rbtree -o rbtree.trc  # trace to file
    repro-sim replay rbtree.trc --scheme scue         # file-driven run
    repro-sim figures fig10 --jobs 4                  # parallel figure
    repro-sim campaign run --grid matrix --jobs 8     # resumable sweep
    repro-sim campaign status .repro-campaign/matrix-quick
    repro-sim serve --dir .repro-serve --port 8023    # campaign service
    repro-sim submit --grid matrix --dir .repro-serve # client: submit+wait
    repro-sim fetch job-000001 --dir .repro-serve     # client: results
    repro-sim trace --workload btree --scheme scue --out trace.json
    repro-sim stats diff scue.json eager.json         # compare two runs

Installed as ``repro-sim`` via the package's console script; also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bench.reporting import format_simple_table, human_bytes
from repro.crash.injection import CrashPlan, run_with_crash
from repro.secure import SCHEMES
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import ALL_WORKLOADS, make_workload
from repro.workloads.traceio import load_trace, save_trace

DEFAULT_CAPACITY = 16 * 1024 * 1024
DEFAULT_OPERATIONS = 500


def _add_system_args(parser: argparse.ArgumentParser,
                     with_scheme: bool = True) -> None:
    if with_scheme:
        parser.add_argument("--scheme", default="scue",
                            choices=sorted(SCHEMES))
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY,
                        help="simulated data bytes "
                             f"(default {DEFAULT_CAPACITY})")
    parser.add_argument("--tree-levels", type=int, default=None)
    parser.add_argument("--tree-arity", type=int, default=8,
                        choices=(8, 16, 32))
    parser.add_argument("--hash-latency", type=int, default=40)
    parser.add_argument("--metadata-cache", type=int, default=256 * 1024)
    parser.add_argument("--eadr", action="store_true")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="array",
                        choices=sorted(ALL_WORKLOADS))
    parser.add_argument("--operations", type=int,
                        default=DEFAULT_OPERATIONS)
    parser.add_argument("--seed", type=int, default=42)


def _config(args: argparse.Namespace, scheme: str | None = None
            ) -> SystemConfig:
    return SystemConfig(
        scheme=scheme or args.scheme,
        data_capacity=args.capacity,
        tree_levels=args.tree_levels,
        tree_arity=args.tree_arity,
        hash_latency=args.hash_latency,
        metadata_cache_size=args.metadata_cache,
        eadr=args.eadr)


def _print_result(result) -> None:
    print(f"workload          : {result.workload}")
    print(f"scheme            : {result.scheme}")
    print(f"cycles            : {result.cycles:,}")
    print(f"instructions      : {result.instructions:,}  "
          f"(IPC {result.ipc:.2f})")
    print(f"loads/stores/psts : {result.loads}/{result.stores}/"
          f"{result.persists}")
    print(f"avg write latency : {result.avg_write_latency:.0f} cycles")
    print(f"avg read latency  : {result.avg_read_latency:.0f} cycles")
    print(f"NVM accesses      : data {result.nvm_data_reads}r/"
          f"{result.nvm_data_writes}w, metadata {result.nvm_meta_reads}r/"
          f"{result.nvm_meta_writes}w")
    print(f"hashes computed   : {result.hashes:,}")


# ======================================================================
# Subcommands
# ======================================================================
def cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(SCHEMES):
        cls = SCHEMES[name]
        rows.append([name, "yes" if cls.crash_consistent_root else "no",
                     (cls.__doc__ or "").strip().splitlines()[0]])
    print(format_simple_table("schemes",
                              ["name", "root consistent", "summary"], rows))
    print()
    print("workloads:", ", ".join(sorted(ALL_WORKLOADS)))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    system = System(_config(args))
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    system.run(workload.trace())
    result = system.result(args.workload)
    _print_result(result)
    if args.json:
        import json
        from pathlib import Path
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=1, sort_keys=True))
        print(f"wrote {args.json}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import TraceRecorder
    from repro.obs.export import (
        attribution_report,
        histogram_report,
        save_chrome_trace,
    )

    recorder = TraceRecorder(capacity=args.ring)
    system = System(_config(args), recorder=recorder)
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    system.run(workload.trace())
    result = system.result(args.workload)
    save_chrome_trace(recorder, args.out, scheme=result.scheme,
                      workload=result.workload,
                      attribution=result.attribution,
                      total_cycles=result.cycles)
    print(f"wrote {len(recorder)} events to {args.out} "
          "(load in https://ui.perfetto.dev)")
    meta = system.controller.meta_cache.stats.to_dict()
    print(f"metadata cache    : {meta['hits']:.0f} hits / "
          f"{meta['misses']:.0f} misses ({meta['hit_rate']:.1%})")
    print()
    print(attribution_report(result.attribution, result.cycles,
                             title=f"{result.scheme}/{result.workload}"))
    histograms = {name: data for name, data in result.histograms.items()
                  if data.get("count")}
    if histograms:
        print()
        print(histogram_report(histograms))
    if args.result_json:
        Path(args.result_json).write_text(
            json.dumps(result.to_dict(), indent=1, sort_keys=True))
        print(f"\nwrote {args.result_json}")
    return 0


def cmd_stats_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_results, load_result

    print(diff_results(load_result(args.a), load_result(args.b)))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    trace = list(workload.trace())
    rows = []
    baseline = None
    for scheme in sorted(SCHEMES):
        system = System(_config(args, scheme))
        system.run(iter(trace))
        result = system.result(args.workload)
        if scheme == "baseline":
            baseline = result
        rows.append((scheme, result, system))
    table = []
    for scheme, result, system in rows:
        table.append([
            scheme,
            f"{result.write_latency_vs(baseline):.2f}x" if baseline else "-",
            f"{result.execution_time_vs(baseline):.2f}x" if baseline else "-",
            f"{result.metadata_accesses:,}",
            human_bytes(system.controller.onchip_overhead_bytes()),
        ])
    print(format_simple_table(
        f"all schemes on '{args.workload}' ({len(trace)} accesses)",
        ["scheme", "write lat", "exec time", "meta accesses", "on-chip"],
        table))
    return 0


def cmd_crash(args: argparse.Namespace) -> int:
    system = System(_config(args))
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    executed = run_with_crash(system, workload.trace(),
                              CrashPlan(args.crash_after))
    print(f"crashed after {executed} accesses; recovering...")
    report = system.recover()
    print(f"recovery : {'SUCCESS' if report.success else 'FAILED'}")
    print(f"detail   : {report.detail}")
    print(f"reads    : {report.metadata_reads:,} "
          f"(~{report.recovery_seconds * 1000:.2f} ms at 100ns/fetch)")
    return 0 if report.success else 1


def cmd_record(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload, args.capacity,
                             args.operations, seed=args.seed)
    count = save_trace(args.output, workload.trace(),
                       compress=args.compress)
    print(f"wrote {count} records to {args.output}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    system = System(_config(args))
    system.run(load_trace(args.trace))
    _print_result(system.result(f"replay:{args.trace}"))
    return 0


def _campaign_opts(args: argparse.Namespace) -> dict:
    """Campaign keywords shared by ``figures`` and ``campaign run``."""
    from pathlib import Path

    from repro.campaign import ProgressReporter
    from repro.serve.storage import CampaignStore

    opts: dict = {"jobs": args.jobs}
    if args.jobs > 1 or getattr(args, "campaign_dir", None):
        opts["progress"] = ProgressReporter()
    if getattr(args, "campaign_dir", None):
        # The storage layer: same on-disk objects as the old bare
        # ResultCache, plus the sqlite index the service queries — a
        # figure run against a server's --dir warms the shared store.
        store = CampaignStore(Path(args.campaign_dir))
        opts["cache"] = store
        opts["manifest_path"] = store.manifest_path
    return opts


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchScale,
        fig5_crash_window,
        fig9_write_latency,
        fig10_execution_time,
        fig11_hash_sweep_write_latency,
        fig12_hash_sweep_execution_time,
        fig13_recovery_time,
        format_ratio_table,
        format_simple_table,
        sec5e_memory_accesses,
        sec5f_space_overheads,
        table1_attack_detection,
    )
    from repro.bench.export import save_json
    from repro.bench.reporting import human_bytes

    scale = {"quick": BenchScale.quick, "default": BenchScale.default,
             "paper": BenchScale.paper}[args.scale]()
    campaign_opts = _campaign_opts(args)
    name = args.figure
    if name in ("fig9", "fig10", "sec5e"):
        matrix_fig = fig9_write_latency(scale, **campaign_opts)
        if name == "fig9":
            result = matrix_fig
            print(format_ratio_table("Fig 9: write latency", result.table,
                                     result.paper_average))
        elif name == "fig10":
            result = fig10_execution_time(matrix=matrix_fig.matrix)
            print(format_ratio_table("Fig 10: execution time",
                                     result.table, result.paper_average))
        else:
            result = sec5e_memory_accesses(matrix=matrix_fig.matrix)
            print(format_ratio_table("Sec V-E: metadata accesses",
                                     result.table, result.paper_average,
                                     baseline_note="normalized to Lazy"))
    elif name in ("fig11", "fig12"):
        fn = fig11_hash_sweep_write_latency if name == "fig11" \
            else fig12_hash_sweep_execution_time
        result = fn(scale, **campaign_opts)
        for latency, row in result.table.items():
            print(f"{latency:>4} cycles: geomean "
                  f"{result.average(latency):.3f}")
    elif name == "fig13":
        result = fig13_recovery_time()
        for tracker, row in result.table.items():
            for size, seconds in row.items():
                print(f"{tracker:5s} {size >> 10:5d}KB "
                      f"{seconds * 1000:8.2f} ms")
    elif name == "fig5":
        result = fig5_crash_window()
        for scheme, rate in result.success_rate.items():
            print(f"{scheme:10s} {rate:.0%}")
    elif name == "table1":
        result = table1_attack_detection()
        for attack, outcome in result.outcomes.items():
            print(f"{attack:20s} detected={outcome['detected']} "
                  f"by={outcome['by']}")
    elif name == "sec5f":
        result = sec5f_space_overheads()
        print(format_simple_table(
            "Sec V-F", ["scheme", "measured", "paper"],
            [[r.scheme, human_bytes(r.measured_bytes),
              human_bytes(r.paper_bytes)] for r in result]))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown figure {name}")
    if args.json:
        save_json(result, args.json)
        print(f"\nwrote {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.viz.bundle import write_bundle

    recovery = None
    if args.recovery:
        from repro.bench.figures import fig13_recovery_time
        sizes = tuple(int(s) for s in args.recovery_sizes.split(","))
        print(f"running Fig 13 recovery sweep ({len(sizes)} cache "
              "sizes x 2 trackers)...")
        recovery = fig13_recovery_time(cache_sizes=sizes,
                                       seed=args.seed)
    crash_window = None
    if args.crash_window:
        from repro.bench.figures import fig5_crash_window
        print("running Fig 5 crash-window trials...")
        crash_window = fig5_crash_window(seed=args.seed)
    perf_snapshots = []
    if args.perf:
        from repro.perf import load_report
        for path in args.perf:
            perf_snapshots.append((Path(path).stem, load_report(path)))

    out_dir = Path(args.out) if args.out \
        else Path(args.dir) / "report"
    manifest = write_bundle(
        args.dir, out_dir, resamples=args.resamples, seed=args.seed,
        overheads=not args.no_overheads, recovery=recovery,
        crash_window=crash_window, perf_snapshots=perf_snapshots)
    print(f"report bundle: {manifest.out_dir}")
    for artifact in sorted(manifest.artifacts, key=lambda a: a.name):
        print(f"  {artifact.spec_file()} + {artifact.data_file()} "
              f"({len(artifact.rows)} rows)")
    for stats_file in manifest.stats_files:
        print(f"  {stats_file}")
    print(f"wrote {len(manifest.files)} files: "
          f"{len(manifest.artifacts)} figures, "
          f"{len(manifest.stats_files)} stats tables, STATUS.md")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as analysis_main
    return analysis_main(args.lint_args)


# ======================================================================
# Performance regression harness (docs/performance.md)
# ======================================================================
def cmd_perf_run(args: argparse.Namespace) -> int:
    from repro.perf import run_benchmarks, save_report

    names = tuple(args.only.split(",")) if args.only else None
    print(f"perf benchmarks ({'quick' if args.quick else 'full'} repeats)")
    report = run_benchmarks(quick=args.quick, names=names, echo=print)
    save_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.perf import compare_reports, load_report

    code, lines = compare_reports(
        load_report(args.baseline), load_report(args.candidate),
        threshold=args.threshold, advisory=args.advisory)
    for line in lines:
        print(line)
    print(f"perf compare: {'FAIL' if code else 'OK'} "
          f"(threshold {args.threshold:.0%}"
          + (", advisory" if args.advisory else "") + ")")
    return code


# ======================================================================
# Campaigns (docs/benchmarks.md)
# ======================================================================
def _campaign_spec(args: argparse.Namespace):
    from repro.bench import BenchScale
    from repro.bench.harness import EVAL_SCHEMES
    from repro.campaign import CampaignSpec

    scale = {"quick": BenchScale.quick, "default": BenchScale.default,
             "paper": BenchScale.paper}[args.scale]()
    workloads = args.workloads.split(",") if args.workloads \
        else list(ALL_WORKLOADS)
    name = f"{args.grid}-{args.scale}"
    if args.grid == "matrix":
        schemes = tuple(args.schemes.split(",")) if args.schemes \
            else ("baseline",) + EVAL_SCHEMES
        return CampaignSpec.matrix(scale, workloads, schemes,
                                   seed=args.seed, name=name)
    return CampaignSpec.hash_sweep(scale, workloads, seed=args.seed,
                                   name=name)


def _campaign_dir(args: argparse.Namespace) -> "Path":
    from pathlib import Path
    if args.dir:
        return Path(args.dir)
    return Path(".repro-campaign") / f"{args.grid}-{args.scale}"


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import ProgressReporter, run_campaign
    from repro.serve.storage import CampaignStore

    spec = _campaign_spec(args)
    base = _campaign_dir(args)
    cache = CampaignStore(base)
    manifest_path = cache.manifest_path
    print(f"campaign directory: {base}")
    outcome = run_campaign(
        spec, jobs=args.jobs, cache=cache, manifest_path=manifest_path,
        timeout=args.timeout, retries=args.retries,
        progress=ProgressReporter())
    counts = outcome.manifest.counts()
    print(f"cells     : {len(spec)}")
    print(f"cache hits: {counts['cached']}/{len(spec)}")
    print(f"computed  : {counts['done']}")
    print(f"failed    : {counts['failed']}")
    print(f"wall time : {outcome.manifest.wall_time:.2f}s "
          f"(jobs={args.jobs})")
    print(f"manifest  : {manifest_path}")
    for record in outcome.manifest.failures():
        print(f"  FAILED {record.cell_id}: "
              f"{record.error.strip().splitlines()[-1]}")
    return 0 if outcome.ok else 1


def cmd_campaign_status(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.campaign import RunManifest

    path = Path(args.dir) / "manifest.json"
    try:
        manifest = RunManifest.load(path)
    except FileNotFoundError:
        if getattr(args, "json", False):
            print(json.dumps({"error": "no_manifest",
                              "detail": str(path)}))
        else:
            print(f"no manifest at {path}")
        return 1
    counts = manifest.counts()
    if getattr(args, "json", False):
        # Machine-readable summary: what the server and CI consume
        # instead of scraping the text output.
        payload = {
            "campaign": manifest.campaign,
            "finished": manifest.finished,
            "complete": manifest.complete,
            "jobs": manifest.jobs,
            "wall_time": manifest.wall_time,
            "total": len(manifest.cells),
            "counts": counts,
        }
        if args.cells:
            payload["cells"] = [record.to_dict()
                                for record in manifest.cells]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0 if manifest.complete else 1
    state = "finished" if manifest.finished else "in progress"
    print(f"campaign  : {manifest.campaign} ({state}, "
          f"jobs={manifest.jobs})")
    print(f"cells     : {len(manifest.cells)}  "
          + "  ".join(f"{status}={n}" for status, n in counts.items()
                      if n))
    print(f"wall time : {manifest.wall_time:.2f}s")
    if args.cells:
        for record in manifest.cells:
            line = (f"  {record.status:8s} {record.cell_id:<28s} "
                    f"{record.wall_time:7.2f}s")
            if record.retries:
                line += f" retries={record.retries}"
            print(line)
    return 0 if manifest.complete else 1


def cmd_campaign_clean(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import ResultCache

    base = Path(args.dir)
    removed = ResultCache(base / "cache").clear()
    manifest = base / "manifest.json"
    had_manifest = manifest.is_file()
    if had_manifest:
        manifest.unlink()
    print(f"removed {removed} cached result(s)"
          + (" and the manifest" if had_manifest else ""))
    return 0


# ======================================================================
# Simulation-as-a-service (docs/serving.md)
# ======================================================================
def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.app import ServeConfig, run_server

    config = ServeConfig(
        root=args.dir, host=args.host, port=args.port, slots=args.jobs,
        timeout=args.timeout, retries=args.retries,
        max_queued_cells=args.max_queued,
        max_running_cells=args.max_running,
        max_active_jobs=args.max_jobs)
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def _serve_url(args: argparse.Namespace) -> str:
    from repro.serve.client import discover_url

    if args.url:
        return args.url
    return discover_url(args.dir)


def cmd_submit(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.serve.client import ServeClient

    spec = _campaign_spec(args)
    client = ServeClient(_serve_url(args))
    accepted = client.submit(spec.to_dict(), tenant=args.tenant)
    job_id = accepted["job_id"]
    print(f"job       : {job_id} ({accepted['state']})")
    if args.no_wait:
        print(f"fetch with: repro-sim fetch {job_id}")
        return 0
    if args.events:
        # Following the event stream doubles as waiting: the server
        # closes it at job_finished.
        with Path(args.events).open("w") as sink:
            for event in client.events(job_id):
                sink.write(json.dumps(event, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        print(f"events    : {args.events}")
    view = client.wait(job_id, timeout=args.wait_timeout)
    counts = view["counts"]
    total = counts["total"]
    print(f"cells     : {total}")
    print(f"cache hits: {counts['cached']}/{total}")
    print(f"computed  : {counts['done']}")
    print(f"failed    : {counts['failed']}")
    print(f"wall time : {view['wall_time']:.2f}s (server)")
    for cell in view.get("cells", []):
        if cell["state"] == "failed":
            error = cell["error"].strip().splitlines()
            print(f"  FAILED {cell['cell_id']}: "
                  f"{error[-1] if error else ''}")
    return 0 if view["state"] == "done" else 1


def cmd_fetch(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.serve.client import ServeClient

    client = ServeClient(_serve_url(args))
    if args.cell:
        payload = client.fetch_cell(args.target)
    else:
        payload = client.results(args.target)
    text = json.dumps(payload, indent=1, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _explore_config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(
        scheme="scue", data_capacity=args.capacity,
        tree_levels=args.tree_levels, tree_arity=args.tree_arity,
        metadata_cache_size=args.metadata_cache, check_data=True)


def _explore_print(result, base, sarif_path) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis.explorer import exploration_sarif, text_matrix

    counts = result.campaign.manifest.counts()
    total = len(result.campaign.manifest.cells)
    print(f"explore directory: {base}")
    print(f"shards    : {total}")
    print(f"cache hits: {counts['cached']}/{total}")
    print(f"computed  : {counts['done']}")
    print(f"failed    : {counts['failed']}")
    print(text_matrix(result))
    if sarif_path:
        Path(sarif_path).write_text(
            _json.dumps(exploration_sarif(result), indent=2) + "\n")
        print(f"sarif     : {sarif_path}")
    for record in result.campaign.manifest.failures():
        print(f"  FAILED {record.cell_id}: "
              f"{record.error.strip().splitlines()[-1]}")
    return 0 if result.ok else 1


def cmd_explore_run(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis.explorer import exploration_cache, run_exploration
    from repro.campaign import ProgressReporter

    base = Path(args.dir or Path(".repro-explore") / args.workload)
    base.mkdir(parents=True, exist_ok=True)
    config = _explore_config(args)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    params = {
        "workload": args.workload, "operations": args.operations,
        "seed": args.seed, "schemes": schemes,
        "shard_units": args.shard_units, "max_lag": args.max_lag,
        "config": config.to_dict(),
    }
    (base / "exploration.json").write_text(
        _json.dumps(params, indent=2, sort_keys=True) + "\n")
    result = run_exploration(
        config, args.workload, args.operations, seed=args.seed,
        schemes=schemes, shard_units=args.shard_units,
        max_lag=args.max_lag, jobs=args.jobs,
        cache=exploration_cache(base / "cache"),
        manifest_path=base / "manifest.json",
        progress=ProgressReporter())
    return _explore_print(result, base, args.sarif)


def cmd_explore_report(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis.explorer import exploration_cache, run_exploration

    base = Path(args.dir)
    try:
        params = _json.loads((base / "exploration.json").read_text())
    except FileNotFoundError:
        print(f"no exploration.json in {base}; run "
              f"'repro-sim explore run --dir {base}' first")
        return 1
    config = SystemConfig.from_dict(params["config"])
    result = run_exploration(
        config, params["workload"], params["operations"],
        seed=params["seed"], schemes=params["schemes"],
        shard_units=params["shard_units"], max_lag=params["max_lag"],
        jobs=1, cache=exploration_cache(base / "cache"),
        manifest_path=base / "manifest.json")
    return _explore_print(result, base, args.sarif)


# ======================================================================
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="SCUE secure-NVM simulator (HPCA'23 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list schemes and workloads") \
        .set_defaults(func=cmd_info)

    p = sub.add_parser("run", help="run one workload on one scheme")
    _add_system_args(p)
    _add_workload_args(p)
    p.add_argument("--json", help="also write the RunResult as JSON "
                                  "(feeds 'stats diff')")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "trace",
        help="run one workload with event tracing; write a Chrome-trace/"
             "Perfetto JSON (docs/observability.md)")
    _add_system_args(p)
    _add_workload_args(p)
    p.add_argument("--out", default="trace.json",
                   help="Chrome-trace output path (default trace.json)")
    p.add_argument("--ring", type=int, default=None,
                   help="keep only the most recent N events "
                        "(default: unbounded)")
    p.add_argument("--result-json",
                   help="also write the RunResult as JSON")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("stats",
                       help="work with saved RunResult JSON files")
    ssub = p.add_subparsers(dest="stats_command", required=True)
    pd = ssub.add_parser(
        "diff", help="compare two RunResult JSONs (from 'run --json' or "
                     "'trace --result-json')")
    pd.add_argument("a", help="baseline result JSON")
    pd.add_argument("b", help="candidate result JSON")
    pd.set_defaults(func=cmd_stats_diff)

    p = sub.add_parser("compare", help="run every scheme on one workload")
    _add_system_args(p, with_scheme=False)
    _add_workload_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("crash", help="crash mid-run and attempt recovery")
    _add_system_args(p)
    _add_workload_args(p)
    p.add_argument("--crash-after", type=int, default=200,
                   help="accesses before the power failure")
    p.set_defaults(func=cmd_crash)

    p = sub.add_parser("record", help="record a workload trace to a file")
    _add_workload_args(p)
    p.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--compress", action="store_true")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="run a recorded trace file")
    p.add_argument("trace")
    _add_system_args(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("figures",
                       help="regenerate one of the paper's figures")
    p.add_argument("figure", choices=("fig5", "fig9", "fig10", "fig11",
                                      "fig12", "fig13", "table1",
                                      "sec5e", "sec5f"))
    p.add_argument("--scale", default="quick",
                   choices=("quick", "default", "paper"))
    p.add_argument("--json", help="also write the result as JSON")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes for the matrix/sweep figures "
                        "(fig9-12, sec5e); others always run serially")
    p.add_argument("--campaign-dir",
                   help="cache + manifest directory: completed cells "
                        "are reused across invocations")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "campaign",
        help="parallel, resumable experiment campaigns (docs/benchmarks.md)")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    pr = csub.add_parser("run", help="run (or resume) a cell grid")
    pr.add_argument("--grid", default="matrix",
                    choices=("matrix", "hash-sweep"),
                    help="matrix = workloads x schemes (Figs 9/10); "
                         "hash-sweep = SCUE x hash latencies (Figs 11/12)")
    pr.add_argument("--scale", default="quick",
                    choices=("quick", "default", "paper"))
    pr.add_argument("--workloads",
                    help="comma-separated subset (default: paper set)")
    pr.add_argument("--schemes",
                    help="comma-separated subset (matrix grid only)")
    pr.add_argument("--seed", type=int, default=42)
    pr.add_argument("-j", "--jobs", type=int, default=1)
    pr.add_argument("--timeout", type=float, default=None,
                    help="per-cell seconds before a worker is killed")
    pr.add_argument("--retries", type=int, default=None,
                    help="attempts after a failure (default: 0 serial, "
                         "2 parallel)")
    pr.add_argument("--dir", default=None,
                    help="campaign directory (cache + manifest); "
                         "default .repro-campaign/<grid>-<scale>")
    pr.set_defaults(func=cmd_campaign_run)

    ps = csub.add_parser("status", help="inspect a campaign manifest")
    ps.add_argument("dir", help="campaign directory")
    ps.add_argument("--cells", action="store_true",
                    help="list every cell, not just the summary")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable summary (total/done/cached/"
                         "failed cells) instead of the text table")
    ps.set_defaults(func=cmd_campaign_status)

    pc = csub.add_parser("clean",
                         help="drop a campaign's cache and manifest")
    pc.add_argument("dir", help="campaign directory")
    pc.set_defaults(func=cmd_campaign_clean)

    p = sub.add_parser(
        "report",
        help="write a deterministic figure/stats bundle from a "
             "campaign directory (docs/figures.md)")
    p.add_argument("dir", help="campaign directory (cache + manifest)")
    p.add_argument("--out", default=None,
                   help="bundle output directory (default <dir>/report)")
    p.add_argument("--seed", type=int, default=42,
                   help="stats RNG seed (bootstrap + permutation)")
    p.add_argument("--resamples", type=int, default=2000,
                   help="bootstrap/permutation resamples (default 2000)")
    p.add_argument("--perf", action="append", default=[],
                   metavar="BENCH_perf.json",
                   help="perf baseline report(s) to fold into the "
                        "trajectory dashboard (repeatable, plotted in "
                        "the order given)")
    p.add_argument("--recovery", action="store_true",
                   help="also run the Fig 13 recovery sweep "
                        "(direct simulation, not cached)")
    p.add_argument("--recovery-sizes",
                   default="262144,524288,1048576",
                   help="comma-separated metadata cache sizes in bytes "
                        "for --recovery")
    p.add_argument("--crash-window", action="store_true",
                   help="also run the Fig 5 crash-window trials "
                        "(direct simulation, not cached)")
    p.add_argument("--no-overheads", action="store_true",
                   help="skip the static Sec V-F space-overheads figure")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the campaign service: an async HTTP API over the "
             "shared result store (docs/serving.md)")
    p.add_argument("--dir", default=".repro-serve",
                   help="store directory (shared with batch campaigns; "
                        "default .repro-serve)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023,
                   help="listen port (0 picks a free one; the bound "
                        "port is written to <dir>/server.json)")
    p.add_argument("-j", "--jobs", type=int, default=2,
                   help="concurrent worker slots (default 2)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell seconds before a worker is killed")
    p.add_argument("--retries", type=int, default=None,
                   help="attempts after a failure (default 2, the "
                        "parallel-campaign default)")
    p.add_argument("--max-queued", type=int, default=1024,
                   help="per-tenant queued-cell quota (0 = unlimited)")
    p.add_argument("--max-running", type=int, default=4,
                   help="per-tenant running-cell quota (0 = unlimited)")
    p.add_argument("--max-jobs", type=int, default=16,
                   help="per-tenant active-job quota (0 = unlimited)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a campaign grid to a running server and wait")
    p.add_argument("--grid", default="matrix",
                   choices=("matrix", "hash-sweep"))
    p.add_argument("--scale", default="quick",
                   choices=("quick", "default", "paper"))
    p.add_argument("--workloads",
                   help="comma-separated subset (default: paper set)")
    p.add_argument("--schemes",
                   help="comma-separated subset (matrix grid only)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--url", default=None,
                   help="server base URL (default: discover from "
                        "<dir>/server.json)")
    p.add_argument("--dir", default=".repro-serve",
                   help="server store directory, for URL discovery")
    p.add_argument("--tenant", default="default")
    p.add_argument("--no-wait", action="store_true",
                   help="return after submission (poll with 'fetch')")
    p.add_argument("--wait-timeout", type=float, default=600.0)
    p.add_argument("--events", default=None,
                   help="also stream the job's NDJSON events to FILE")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "fetch",
        help="fetch a job's results (or one cached cell) from a server")
    p.add_argument("target", help="job id (default) or cache key "
                                  "(--cell)")
    p.add_argument("--cell", action="store_true",
                   help="treat target as a cell cache key")
    p.add_argument("--url", default=None)
    p.add_argument("--dir", default=".repro-serve",
                   help="server store directory, for URL discovery")
    p.add_argument("--out", default=None,
                   help="write JSON here instead of stdout")
    p.set_defaults(func=cmd_fetch)

    p = sub.add_parser(
        "explore",
        help="exhaustive crash-state model checking "
             "(docs/crash-exploration.md)")
    esub = p.add_subparsers(dest="explore_command", required=True)

    pe = esub.add_parser("run", help="run (or resume) an exploration")
    pe.add_argument("--workload", default="array",
                    choices=sorted(ALL_WORKLOADS))
    pe.add_argument("--operations", type=int, default=6,
                    help="trace length; the state space is exponential "
                         "in persist units, keep this small")
    pe.add_argument("--seed", type=int, default=42)
    pe.add_argument("--schemes", default="scue,eager",
                    help="comma-separated rows: scue, eager, scue+asit, "
                         "or any scheme name")
    pe.add_argument("--capacity", type=int, default=64 * 1024,
                    help="data region bytes (default 64 KB: a 16-leaf, "
                         "two-branch tree)")
    pe.add_argument("--tree-levels", type=int, default=2)
    pe.add_argument("--tree-arity", type=int, default=8,
                    choices=(8, 16, 32))
    pe.add_argument("--metadata-cache", type=int, default=64 * 1024)
    pe.add_argument("--shard-units", type=int, default=8,
                    help="boundary-range width per campaign cell")
    pe.add_argument("--max-lag", type=int, default=None,
                    help="cap on in-flight older persists per cut "
                         "(depth bound; default unbounded)")
    pe.add_argument("-j", "--jobs", type=int, default=1)
    pe.add_argument("--dir", default=None,
                    help="exploration directory (cache + manifest); "
                         "default .repro-explore/<workload>")
    pe.add_argument("--sarif", default=None,
                    help="also write violations as a SARIF 2.1.0 log")
    pe.set_defaults(func=cmd_explore_run)

    ps = esub.add_parser("status",
                         help="inspect an exploration's shard manifest")
    ps.add_argument("dir", help="exploration directory")
    ps.add_argument("--cells", action="store_true",
                    help="list every shard, not just the summary")
    ps.set_defaults(func=cmd_campaign_status)

    pp = esub.add_parser(
        "report",
        help="rebuild the matrix + SARIF from cached shards")
    pp.add_argument("dir", help="exploration directory")
    pp.add_argument("--sarif", default=None,
                    help="also write violations as a SARIF 2.1.0 log")
    pp.set_defaults(func=cmd_explore_report)

    p = sub.add_parser(
        "perf",
        help="hot-path microbenchmarks + regression gate "
             "(docs/performance.md)")
    p.add_argument("--quick", action="store_true",
                   help="fewer timed repeats (CI smoke); workload sizes "
                        "and result digests are unchanged")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="report path (default BENCH_perf.json)")
    p.add_argument("--only",
                   help="comma-separated benchmark subset "
                        "(e.g. access_loop,epoch_loop,scheme:scue,"
                        "epoch:scue)")
    p.set_defaults(func=cmd_perf_run)
    perf_sub = p.add_subparsers(dest="perf_command")
    pp = perf_sub.add_parser(
        "compare",
        help="gate a fresh report against a committed baseline")
    pp.add_argument("baseline", help="committed baseline BENCH_perf.json")
    pp.add_argument("candidate", nargs="?", default="BENCH_perf.json",
                    help="fresh report (default BENCH_perf.json)")
    pp.add_argument("--threshold", type=float, default=0.10,
                    help="allowed throughput regression (default 0.10)")
    pp.add_argument("--advisory", action="store_true",
                    help="warn instead of failing on throughput "
                         "regressions; digest mismatches still fail")
    pp.set_defaults(func=cmd_perf_compare)

    p = sub.add_parser(
        "analyze",
        help="run reprolint + the crash-consistency analysis gate")
    p.add_argument("lint_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to python -m repro.analysis "
                        "(e.g. --strict, --format json, --list-rules)")
    p.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["analyze"]:
        # Forward verbatim: argparse REMAINDER refuses leading options
        # (e.g. ``analyze --strict``), so bypass the subparser.
        from repro.analysis.cli import main as analysis_main
        return analysis_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. ``repro-sim stats diff ... | head``
        return 0


if __name__ == "__main__":
    sys.exit(main())
