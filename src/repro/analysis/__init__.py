"""Correctness tooling for the simulator itself: ``reprolint`` + the
runtime crash-consistency sanitizer.

The paper's whole argument is that the *ordering* of security-metadata
persists decides whether the root survives a crash (§III-B) — so this
package mechanically enforces that our own simulator code respects the
persist domain it models, instead of relying on eyeballs:

* :mod:`repro.analysis.lint` — an AST-based static lint ("reprolint")
  that walks the package and enforces simulator-domain invariants as
  named, suppressible rules (every persist attributable to ADR
  semantics, no dropped verification results, integer-only cycle
  arithmetic, no ``assert``-based runtime validation, statistics
  counters registered before increment);
* :mod:`repro.analysis.sanitizer` — a WITCHER-style runtime monitor
  that hooks the WPQ, the NVM device and the root registers, records a
  persist-order trace, and checks at every simulated crash point that
  metadata persists obey the scheme's declared ordering rules.

Run the lint from the command line::

    python -m repro.analysis --strict

and attach the sanitizer inside tests with::

    from repro.analysis import attach_sanitizer
    sanitizer = attach_sanitizer(controller)
"""

from repro.analysis.baseline import Baseline
from repro.analysis.lint import Linter, ParsedModule
from repro.analysis.rules import ALL_RULES, Violation, get_rule
from repro.analysis.sanitizer import PersistOrderSanitizer, attach_sanitizer

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Linter",
    "ParsedModule",
    "PersistOrderSanitizer",
    "Violation",
    "attach_sanitizer",
    "get_rule",
]
