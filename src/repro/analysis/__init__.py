"""Correctness tooling for the simulator itself: ``reprolint`` + the
runtime crash-consistency sanitizer.

The paper's whole argument is that the *ordering* of security-metadata
persists decides whether the root survives a crash (§III-B) — so this
package mechanically enforces that our own simulator code respects the
persist domain it models, instead of relying on eyeballs:

* :mod:`repro.analysis.lint` — "reprolint", a static lint built on a
  real analysis framework: a per-function CFG builder
  (:mod:`repro.analysis.cfg`), a worklist dataflow engine
  (:mod:`repro.analysis.dataflow`) and a project-wide call graph
  (:mod:`repro.analysis.callgraph`).  Flat single-module rules coexist
  with interprocedural ones (a caller's ``wpq.enqueue`` credits a
  callee's store; a verify result dropped across a call boundary is
  found), plus declarative persist-protocol conformance
  (:mod:`repro.analysis.protocol`) proving the runtime sanitizer's
  ordering rules on *all static paths*;
* :mod:`repro.analysis.sanitizer` — a WITCHER-style runtime monitor
  that hooks the WPQ, the NVM device and the root registers, records a
  persist-order trace, and checks at every simulated crash point that
  metadata persists obey the scheme's declared ordering rules.

Runs are incremental (content-hash cache, optional process-pool
front-end) and export SARIF 2.1.0 for code scanning
(:mod:`repro.analysis.sarif`).

Run the lint from the command line::

    python -m repro.analysis --strict --sarif out.sarif --jobs 4

and attach the sanitizer inside tests with::

    from repro.analysis import attach_sanitizer
    sanitizer = attach_sanitizer(controller)
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import ForwardAnalysis
from repro.analysis.lint import Linter, ParsedModule
from repro.analysis.rules import ALL_RULES, Violation, get_rule
from repro.analysis.sanitizer import PersistOrderSanitizer, attach_sanitizer

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "Baseline",
    "CFG",
    "ForwardAnalysis",
    "Linter",
    "ParsedModule",
    "PersistOrderSanitizer",
    "ProjectIndex",
    "Violation",
    "attach_sanitizer",
    "build_cfg",
    "get_rule",
]
