"""``python -m repro.analysis`` — run reprolint with exit-code gating.

::

    python -m repro.analysis                   # lint src/repro, text out
    python -m repro.analysis --strict          # also fail on stale
                                               # baseline entries
    python -m repro.analysis --format json     # machine-readable
    python -m repro.analysis --sarif out.sarif # SARIF 2.1.0 log for
                                               # code scanning
    python -m repro.analysis --jobs 4          # parallel flat phase
    python -m repro.analysis --changed-only    # report only findings in
                                               # files changed vs --base
    python -m repro.analysis --write-baseline  # accept current findings
    python -m repro.analysis --update-baseline # regenerate + report diff
    python -m repro.analysis --list-rules      # what is enforced & why

``--changed-only`` keeps the *analysis* whole-tree (the project phase —
call graphs, protocol obligations, atomicity — is only sound over the
full package, and the warm incremental cache makes that cheap) and
filters the *report* to files that differ from ``--base`` (default
``HEAD``): committed, staged, unstaged and untracked changes all
count.  That is the pre-commit shape — sub-second warm, and a finding
in an unchanged file never blocks an unrelated commit.

Exit code 0 means every finding is either absent or explicitly
baselined; 1 means new violations (or, under ``--strict``, a stale
baseline).  Designed to run in CI next to the test suite.

Repeat runs are incremental: per-file results are cached by content
hash in ``.repro-analysis-cache.json`` at the repo root (disable with
``--no-cache``; automatically off while ``--select`` or multiple scan
roots are active).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.lint import Linter
from repro.analysis.report import LintReport, rules_text
from repro.errors import ConfigError

BASELINE_NAME = "analysis-baseline.txt"
CACHE_NAME = ".repro-analysis-cache.json"


def default_scan_root() -> Path:
    """The installed ``repro`` package directory — lint ourselves."""
    return Path(__file__).resolve().parents[1]


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor carrying a ``pyproject.toml`` (the checkout
    root, where the baseline file lives)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: persist-ordering and simulator-domain "
                    "invariants as named, suppressible lint rules")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when the baseline has stale "
                             "entries")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--sarif", type=Path, default=None,
                        metavar="PATH",
                        help="also write a SARIF 2.1.0 log to PATH")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files with N worker processes "
                             "(default: 1)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {BASELINE_NAME} "
                             "next to pyproject.toml)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="regenerate the baseline file and report "
                             "what changed (idempotent: an unchanged "
                             "tree rewrites it byte-identically)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental result cache")
    parser.add_argument("--changed-only", action="store_true",
                        help="report only findings in files that "
                             "differ from --base (git diff + "
                             "untracked); the analysis itself stays "
                             "whole-tree so project rules remain sound")
    parser.add_argument("--base", default="HEAD", metavar="REF",
                        help="git ref --changed-only diffs against "
                             "(default: HEAD)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE",
                        help="run only this rule (repeatable; name or "
                             "RPLnnn id)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    return parser


def resolve_baseline_path(args: argparse.Namespace,
                          scan_root: Path) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    repo_root = find_repo_root(scan_root)
    if repo_root is None:
        return None
    return repo_root / BASELINE_NAME


def _resolve_cache(args: argparse.Namespace,
                   scan_root: Path) -> AnalysisCache | None:
    """The cache is keyed to the default whole-package scan: explicit
    scan roots or an active rule selection would cross-contaminate it
    (saving a run over a different tree prunes everyone else's
    entries), so those runs go cold."""
    if args.no_cache or args.select is not None or args.paths:
        return None
    repo_root = find_repo_root(scan_root)
    if repo_root is None:
        return None
    return AnalysisCache(repo_root / CACHE_NAME)


def changed_files(repo_root: Path, base: str) -> set[str] | None:
    """Repo-root-relative posix paths that differ from ``base``:
    committed/staged/unstaged changes (``git diff base``) plus
    untracked files.  ``None`` when git is unavailable or ``base``
    does not resolve."""
    import subprocess

    changed: set[str] = set()
    for cmd in (["git", "diff", "--name-only", base, "--"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            proc = subprocess.run(
                cmd, cwd=repo_root, capture_output=True, text=True,
                check=True, timeout=30)
        except (OSError, subprocess.SubprocessError):
            return None
        changed.update(line.strip() for line in
                       proc.stdout.splitlines() if line.strip())
    return changed


def _filter_changed(violations, scan_root: Path,
                    changed: set[str]) -> list:
    """Keep violations whose file differs from the base ref.  Violation
    paths are scan-root-relative; the changed set is repo-root-relative
    — rebase via the scan root's position in the checkout."""
    prefix = _sarif_uri_prefix(scan_root)
    keep = []
    for violation in violations:
        full = f"{prefix}/{violation.path}" if prefix else violation.path
        if full in changed:
            keep.append(violation)
    return keep


def _sarif_uri_prefix(scan_root: Path) -> str:
    """Scan root relative to the repo root, so SARIF URIs resolve from
    the checkout root as code scanning expects."""
    resolved = Path(scan_root).resolve()
    repo_root = find_repo_root(resolved)
    if repo_root is None or resolved == repo_root:
        return ""
    try:
        return resolved.relative_to(repo_root).as_posix()
    except ValueError:
        return ""


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rules_text())
        return 0

    for path in args.paths:
        if not path.exists():
            print(f"no such file or directory: {path}", file=sys.stderr)
            return 2

    scan_root = args.paths[0] if args.paths else default_scan_root()
    cache = _resolve_cache(args, Path(scan_root))
    try:
        linter = Linter(scan_root, select=args.select, cache=cache,
                        jobs=args.jobs)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    files: list[Path] = []
    try:
        if args.paths and len(args.paths) > 1:
            # Multiple roots: lint each, relpaths computed per root.
            violations = []
            for root in args.paths:
                sub = Linter(root, select=args.select, jobs=args.jobs)
                sub_files = list(sub.iter_files())
                files.extend(sub_files)
                violations.extend(sub.run(sub_files))
        else:
            files = list(linter.iter_files())
            violations = linter.run(files)
    except SyntaxError as exc:
        print(f"cannot lint {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = resolve_baseline_path(args, Path(scan_root))
    if args.write_baseline or args.update_baseline:
        if baseline_path is None:
            print("no baseline location found (need pyproject.toml or "
                  "--baseline)", file=sys.stderr)
            return 2
        fresh = Baseline.from_violations(violations)
        if args.update_baseline:
            old = Baseline.load(baseline_path) \
                if baseline_path.is_file() else Baseline()
            old_keys = {(e.rule, e.path, e.fingerprint)
                        for e in old.entries}
            new_keys = {(e.rule, e.path, e.fingerprint)
                        for e in fresh.entries}
            added = len(new_keys - old_keys)
            removed = len(old_keys - new_keys)
            fresh.save(baseline_path)
            print(f"baseline updated: {len(fresh.entries)} entr(ies) "
                  f"(+{added} added, -{removed} removed) at "
                  f"{baseline_path}")
        else:
            fresh.save(baseline_path)
            print(f"wrote {len(violations)} entr(ies) to "
                  f"{baseline_path}")
        return 0

    report = LintReport(files_checked=len(files))
    if linter.cache_stats is not None:
        report.cache_note = linter.cache_stats.describe()
    if baseline_path is not None and baseline_path.is_file():
        new, baselined, stale = \
            Baseline.load(baseline_path).split(violations)
        report.violations = new
        report.baselined = baselined
        report.stale_baseline = stale
    else:
        report.violations = violations

    if args.changed_only:
        repo_root = find_repo_root(Path(scan_root).resolve())
        if repo_root is None:
            print("--changed-only: no repo root (pyproject.toml) "
                  "found", file=sys.stderr)
            return 2
        changed = changed_files(repo_root, args.base)
        if changed is None:
            print(f"--changed-only: git diff against {args.base!r} "
                  "failed (not a checkout, or unknown ref)",
                  file=sys.stderr)
            return 2
        report.violations = _filter_changed(
            report.violations, Path(scan_root), changed)

    if args.sarif is not None:
        from repro.analysis.sarif import to_sarif
        log = to_sarif(report, uri_prefix=_sarif_uri_prefix(scan_root))
        args.sarif.write_text(json.dumps(log, indent=2) + "\n")

    if args.format == "json":
        print(report.as_json())
    else:
        print(report.as_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
