"""``python -m repro.analysis`` — run reprolint with exit-code gating.

::

    python -m repro.analysis                   # lint src/repro, text out
    python -m repro.analysis --strict          # also fail on stale
                                               # baseline entries
    python -m repro.analysis --format json     # machine-readable
    python -m repro.analysis --write-baseline  # accept current findings
    python -m repro.analysis --list-rules      # what is enforced & why

Exit code 0 means every finding is either absent or explicitly
baselined; 1 means new violations (or, under ``--strict``, a stale
baseline).  Designed to run in CI next to the test suite.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.lint import Linter
from repro.analysis.report import LintReport, rules_text
from repro.errors import ConfigError

BASELINE_NAME = "analysis-baseline.txt"


def default_scan_root() -> Path:
    """The installed ``repro`` package directory — lint ourselves."""
    return Path(__file__).resolve().parents[1]


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor carrying a ``pyproject.toml`` (the checkout
    root, where the baseline file lives)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: persist-ordering and simulator-domain "
                    "invariants as named, suppressible lint rules")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when the baseline has stale "
                             "entries")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {BASELINE_NAME} "
                             "next to pyproject.toml)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE",
                        help="run only this rule (repeatable; name or "
                             "RPLnnn id)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    return parser


def resolve_baseline_path(args: argparse.Namespace,
                          scan_root: Path) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    repo_root = find_repo_root(scan_root)
    if repo_root is None:
        return None
    return repo_root / BASELINE_NAME


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rules_text())
        return 0

    for path in args.paths:
        if not path.exists():
            print(f"no such file or directory: {path}", file=sys.stderr)
            return 2

    scan_root = args.paths[0] if args.paths else default_scan_root()
    try:
        linter = Linter(scan_root, select=args.select)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    files: list[Path] = []
    try:
        if args.paths:
            # Multiple roots: lint each, relpaths computed per root.
            violations = []
            for root in args.paths:
                sub = Linter(root, select=args.select)
                sub_files = list(sub.iter_files())
                files.extend(sub_files)
                violations.extend(sub.run(sub_files))
        else:
            files = list(linter.iter_files())
            violations = linter.run(files)
    except SyntaxError as exc:
        print(f"cannot lint {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = resolve_baseline_path(args, Path(scan_root))
    if args.write_baseline:
        if baseline_path is None:
            print("no baseline location found (need pyproject.toml or "
                  "--baseline)", file=sys.stderr)
            return 2
        Baseline.from_violations(violations).save(baseline_path)
        print(f"wrote {len(violations)} entr(ies) to {baseline_path}")
        return 0

    report = LintReport(files_checked=len(files))
    if baseline_path is not None and baseline_path.is_file():
        new, baselined, stale = \
            Baseline.load(baseline_path).split(violations)
        report.violations = new
        report.baselined = baselined
        report.stale_baseline = stale
    else:
        report.violations = violations

    if args.format == "json":
        print(report.as_json())
    else:
        print(report.as_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
