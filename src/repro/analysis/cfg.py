"""Per-function control-flow graphs over Python ASTs.

:func:`build_cfg` turns one ``ast.FunctionDef`` into a graph of
:class:`Block`\\ s whose statements are *leaf* AST nodes only — compound
statements contribute their guard expressions (an ``if``/``while`` test,
a ``for`` target, a ``with`` context expression, a ``match`` subject) to
the blocks and their bodies become further blocks.  That property is what
makes the dataflow engine sound: walking a stored node with ``ast.walk``
never reaches statements that belong to a different block.

Handled control flow: ``if``/``elif``/``else``, ``while``/``else`` (with
constant-test pruning so ``while True:`` has no false edge), ``for``/
``else``, ``break``/``continue``, ``try``/``except``/``else``/``finally``
(including ``return`` inside ``try`` routing through the ``finally``
chain), ``with``, ``match`` (wildcard detection), ``return``, ``raise``
and generator functions (``yield`` is an ordinary expression).

Async functions build the same graph shape (``async for`` iterates like
``for``, ``async with`` flattens like ``with``) but additionally record
*interference points*: leaf statements at which the coroutine may
suspend and other event-loop tasks may run.  A statement interferes when
it contains an ``ast.Await``, when it is the acquisition of an ``async
with`` context (the implicit ``__aenter__`` await), or when it is an
``async for`` loop header (the per-iteration ``__anext__`` await).
Leaving an ``async with`` body awaits ``__aexit__``; that is recorded as
interference *after* the body's last leaf statement.  Query with
:meth:`CFG.interferes` / :meth:`CFG.interferes_after`; the atomicity
pass (:mod:`repro.analysis.atomicity`) is built on these marks.

Deliberate approximations, chosen to be conservative for the must-
analyses built on top (extra paths can only *remove* facts, never invent
them):

* a ``finally`` body is built once and acts as a join point — all exits
  that route through it (fall-through, ``return``, ``raise``, ``break``)
  share its blocks and its outgoing continuation edges;
* exception edges into ``except`` handlers leave from the block *before*
  the ``try`` (the handler therefore sees the facts held at try entry,
  never facts established inside the body);
* ``assert`` and arbitrary raising expressions do not get their own
  exceptional edges — rules that care about exception escape (RPL008)
  query try-nesting on the AST instead.

Every function exit is one of two distinguished blocks: ``exit`` (normal
return) and ``raise_exit`` (an explicit uncaught ``raise``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Edge kinds, for tests and debugging.  "fall" is plain sequencing.
EDGE_KINDS = ("fall", "true", "false", "iter", "exhausted", "loop",
              "except", "return", "raise", "break", "continue", "case",
              "no-match", "finally")


class Block:
    """One basic block: straight-line leaf statements / guard exprs."""

    __slots__ = ("bid", "stmts", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.stmts: list[ast.AST] = []
        self.succs: list[tuple[Block, str]] = []
        self.preds: list[tuple[Block, str]] = []

    def link(self, other: "Block", kind: str = "fall") -> None:
        if any(b is other and k == kind for b, k in self.succs):
            return
        self.succs.append((other, kind))
        other.preds.append((self, kind))

    def unlink(self, other: "Block", kind: str) -> None:
        self.succs = [(b, k) for b, k in self.succs
                      if not (b is other and k == kind)]
        other.preds = [(b, k) for b, k in other.preds
                       if not (b is self and k == kind)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Block#{self.bid}({len(self.stmts)} stmts)"


class CFG:
    """The finished graph plus a node -> (block, index) locator."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 blocks: list[Block], entry: Block, exit_block: Block,
                 raise_exit: Block,
                 interference: set[int] | None = None,
                 post_interference: set[int] | None = None) -> None:
        self.func = func
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_block
        self.raise_exit = raise_exit
        self._loc: dict[int, tuple[Block, int]] = {}
        self._interference: set[int] = set(interference or ())
        self._post_interference: set[int] = set(post_interference or ())
        for block in blocks:
            for idx, node in enumerate(block.stmts):
                self._loc[id(node)] = (block, idx)
                # The leaf property guarantees ast.walk stays inside
                # this block, so an Await found here belongs here.
                if any(isinstance(sub, ast.Await) for sub in ast.walk(node)):
                    self._interference.add(id(node))

    @property
    def is_async(self) -> bool:
        return isinstance(self.func, ast.AsyncFunctionDef)

    def interferes(self, node: ast.AST) -> bool:
        """True when executing ``node`` may suspend the coroutine (an
        await happens within the statement)."""
        return id(node) in self._interference

    def interferes_after(self, node: ast.AST) -> bool:
        """True when control *leaving* ``node`` awaits first (the node
        is the last leaf of an ``async with`` body, whose ``__aexit__``
        is awaited)."""
        return id(node) in self._post_interference

    def interference_points(self) -> list[ast.AST]:
        """Every stored leaf node that is (or is followed by) an
        interference point, in block order."""
        return [node for _, _, node in self.nodes()
                if id(node) in self._interference
                or id(node) in self._post_interference]

    def location(self, node: ast.AST) -> tuple[Block, int] | None:
        return self._loc.get(id(node))

    def nodes(self) -> Iterator[tuple[Block, int, ast.AST]]:
        for block in self.blocks:
            for idx, node in enumerate(block.stmts):
                yield block, idx, node

    def edges(self) -> Iterator[tuple[Block, Block, str]]:
        for block in self.blocks:
            for succ, kind in block.succs:
                yield block, succ, kind

    # ------------------------------------------------------------------
    def label(self, block: Block,
              source_lines: list[str] | None = None) -> str:
        """Human-stable block label for hand-written test edge lists:
        the stripped source text of the block's first statement."""
        if block is self.entry and not block.stmts:
            return "<entry>"
        if block is self.exit:
            return "<exit>"
        if block is self.raise_exit:
            return "<raise>"
        if not block.stmts:
            return f"<empty#{block.bid}>"
        anchor = block.stmts[0]
        lineno = getattr(anchor, "lineno", 0)
        if source_lines and 1 <= lineno <= len(source_lines):
            return source_lines[lineno - 1].strip()
        return f"<block@{lineno}>"

    def edge_list(self, source_lines: list[str] | None = None
                  ) -> list[tuple[str, str, str]]:
        """Sorted, labelled edges — what the CFG tests assert against."""
        return sorted((self.label(src, source_lines),
                       self.label(dst, source_lines), kind)
                      for src, dst, kind in self.edges())

    def can_reach(self, src: Block, want) -> bool:
        """True when some path from ``src`` reaches a block for which
        ``want(block)`` holds (``src`` itself included)."""
        seen: set[int] = set()
        stack = [src]
        while stack:
            block = stack.pop()
            if block.bid in seen:
                continue
            seen.add(block.bid)
            if want(block):
                return True
            stack.extend(succ for succ, _ in block.succs)
        return False


class _FinallyCtx:
    __slots__ = ("entry", "end")

    def __init__(self, entry: Block, end: Block | None) -> None:
        self.entry = entry
        self.end = end


def _const_truth(expr: ast.expr) -> bool | None:
    """Literal truthiness of a loop test, or None when not a constant."""
    if isinstance(expr, ast.Constant):
        return bool(expr.value)
    return None


def _is_wildcard_case(case: "ast.match_case") -> bool:
    return (case.guard is None
            and isinstance(case.pattern, ast.MatchAs)
            and case.pattern.pattern is None)


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._new()
        self.exit = self._new()
        self.raise_exit = self._new()
        #: (continue_target, break_target, finally_depth_at_loop_entry)
        self.loops: list[tuple[Block, Block, int]] = []
        self.finallies: list[_FinallyCtx] = []
        #: Implicit awaits the AST does not spell out: ``async with``
        #: acquisition / ``async for`` headers (interference at the
        #: node) and ``async with`` body exits (interference after).
        self.interference: set[int] = set()
        self.post_interference: set[int] = set()

    def _new(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        end = self._body(self.func.body, self.entry)
        if end is not None:
            end.link(self.exit, "fall")
        self._compress()
        return CFG(self.func, self.blocks, self.entry, self.exit,
                   self.raise_exit, interference=self.interference,
                   post_interference=self.post_interference)

    def _compress(self) -> None:
        """Splice out empty non-special blocks so edge lists stay
        readable; drop unreachable empties."""
        special = {self.entry.bid, self.exit.bid, self.raise_exit.bid}
        changed = True
        while changed:
            changed = False
            for block in list(self.blocks):
                if block.bid in special or block.stmts:
                    continue
                if not block.preds:
                    if not block.succs:
                        self.blocks.remove(block)
                        changed = True
                    continue
                if not block.succs:
                    continue
                for pred, pkind in list(block.preds):
                    for succ, skind in list(block.succs):
                        pred.link(succ, pkind if pkind != "fall" else skind)
                for pred, pkind in list(block.preds):
                    pred.unlink(block, pkind)
                for succ, skind in list(block.succs):
                    block.unlink(succ, skind)
                self.blocks.remove(block)
                changed = True

    # ------------------------------------------------------------------
    def _body(self, stmts: list[ast.stmt],
              current: Block | None) -> Block | None:
        for stmt in stmts:
            if current is None:
                # Dead code after a terminator: still build its blocks
                # (they stay unreachable, which the dataflow engine
                # treats as "no facts to check").
                current = self._new()
            current = self._stmt(stmt, current)
        return current

    def _exit_through_finallies(self, current: Block, target: Block,
                                kind: str, stop_depth: int = 0) -> None:
        hop, hop_kind = current, kind
        for ctx in reversed(self.finallies[stop_depth:]):
            hop.link(ctx.entry, hop_kind)
            if ctx.end is None:
                return  # the finally itself diverges
            hop, hop_kind = ctx.end, "finally"
        hop.link(target, hop_kind)

    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, current: Block) -> Block | None:
        if isinstance(stmt, ast.Return):
            current.stmts.append(stmt)
            self._exit_through_finallies(current, self.exit, "return")
            return None
        if isinstance(stmt, ast.Raise):
            current.stmts.append(stmt)
            self._exit_through_finallies(current, self.raise_exit, "raise")
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                _, brk, depth = self.loops[-1]
                self._exit_through_finallies(current, brk, "break", depth)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cont, _, depth = self.loops[-1]
                self._exit_through_finallies(current, cont, "continue",
                                             depth)
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                current.stmts.append(item.context_expr)
                if isinstance(stmt, ast.AsyncWith):
                    # ``__aenter__`` awaits before the body runs.
                    self.interference.add(id(item.context_expr))
                if item.optional_vars is not None:
                    current.stmts.append(item.optional_vars)
            end = self._body(stmt.body, current)
            if isinstance(stmt, ast.AsyncWith):
                # ``__aexit__`` awaits when the body falls off its end.
                # (Exceptional exits share the try/finally approximation
                # documented in the module docstring.)
                anchor = end if end is not None else None
                if anchor is not None and anchor.stmts:
                    self.post_interference.add(id(anchor.stmts[-1]))
                elif stmt.items:
                    self.post_interference.add(
                        id(stmt.items[-1].context_expr))
            return end
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested definition executes as a binding, but its body
            # belongs to a different CFG — store nothing, so ast.walk
            # over this function's blocks never leaks into it.
            return current
        current.stmts.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Block:
        current.stmts.append(stmt.test)
        after = self._new()
        then_block = self._new()
        current.link(then_block, "true")
        then_end = self._body(stmt.body, then_block)
        if then_end is not None:
            then_end.link(after, "fall")
        if stmt.orelse:
            else_block = self._new()
            current.link(else_block, "false")
            else_end = self._body(stmt.orelse, else_block)
            if else_end is not None:
                else_end.link(after, "fall")
        else:
            current.link(after, "false")
        return after

    def _while(self, stmt: ast.While, current: Block) -> Block:
        header = self._new()
        current.link(header, "fall")
        header.stmts.append(stmt.test)
        truth = _const_truth(stmt.test)
        after = self._new()
        body_block = self._new()
        if truth is not False:
            header.link(body_block, "true")
        self.loops.append((header, after, len(self.finallies)))
        body_end = self._body(stmt.body, body_block)
        self.loops.pop()
        if body_end is not None:
            body_end.link(header, "loop")
        if truth is not True:
            if stmt.orelse:
                else_block = self._new()
                header.link(else_block, "false")
                else_end = self._body(stmt.orelse, else_block)
                if else_end is not None:
                    else_end.link(after, "fall")
            else:
                header.link(after, "false")
        return after

    def _for(self, stmt: ast.For | ast.AsyncFor, current: Block) -> Block:
        current.stmts.append(stmt.iter)
        header = self._new()
        current.link(header, "fall")
        header.stmts.append(stmt.target)
        if isinstance(stmt, ast.AsyncFor):
            # Every iteration awaits ``__anext__`` at the header.
            self.interference.add(id(stmt.target))
        after = self._new()
        body_block = self._new()
        header.link(body_block, "iter")
        self.loops.append((header, after, len(self.finallies)))
        body_end = self._body(stmt.body, body_block)
        self.loops.pop()
        if body_end is not None:
            body_end.link(header, "loop")
        if stmt.orelse:
            else_block = self._new()
            header.link(else_block, "exhausted")
            else_end = self._body(stmt.orelse, else_block)
            if else_end is not None:
                else_end.link(after, "fall")
        else:
            header.link(after, "exhausted")
        return after

    def _try(self, stmt: ast.Try, current: Block) -> Block:
        pre = current
        fin_entry: Block | None = None
        fin_end: Block | None = None
        if stmt.finalbody:
            fin_entry = self._new()
            fin_end = self._body(stmt.finalbody, fin_entry)
            self.finallies.append(_FinallyCtx(fin_entry, fin_end))
        body_block = self._new()
        pre.link(body_block, "fall")
        body_end = self._body(stmt.body, body_block)
        if stmt.orelse and body_end is not None:
            body_end = self._body(stmt.orelse, body_end)
        handler_ends: list[Block | None] = []
        for handler in stmt.handlers:
            handler_block = self._new()
            pre.link(handler_block, "except")
            handler_ends.append(self._body(handler.body, handler_block))
        if stmt.finalbody:
            self.finallies.pop()
        after = self._new()
        ends = [end for end in [body_end, *handler_ends] if end is not None]
        if fin_entry is not None:
            for end in ends:
                end.link(fin_entry, "fall")
            # An exception no handler catches still runs the finally.
            pre.link(fin_entry, "except")
            if fin_end is not None:
                fin_end.link(after, "finally")
                fin_end.link(self.raise_exit, "raise")
        else:
            for end in ends:
                end.link(after, "fall")
        return after

    def _match(self, stmt: ast.Match, current: Block) -> Block:
        current.stmts.append(stmt.subject)
        after = self._new()
        saw_wildcard = False
        for case in stmt.cases:
            case_block = self._new()
            current.link(case_block, "case")
            if case.guard is not None:
                case_block.stmts.append(case.guard)
            end = self._body(case.body, case_block)
            if end is not None:
                end.link(after, "fall")
            if _is_wildcard_case(case):
                saw_wildcard = True
        if not saw_wildcard:
            current.link(after, "no-match")
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()
