"""Baseline suppression file for reprolint.

A baseline records *known, accepted* violations so the lint can gate CI
on regressions without requiring a flag-day cleanup.  Entries match on
``(rule, path, fingerprint)`` — the fingerprint hashes the offending
source line, so unrelated edits that shift line numbers do not churn
the file, while editing the flagged line itself invalidates the entry
(the violation resurfaces, as it should).

Format, one entry per line::

    <rule-name>  <path>:<line>  <fingerprint>

Lines starting with ``#`` are comments.  Regenerate with
``python -m repro.analysis --write-baseline``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.rules import Violation

_HEADER = """\
# reprolint baseline — known, accepted violations.
# Regenerate with: python -m repro.analysis --write-baseline
# Entries match on (rule, path, line-content fingerprint); the line
# number is informational only.
"""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    line: int
    fingerprint: str

    def format(self) -> str:
        return f"{self.rule}  {self.path}:{self.line}  {self.fingerprint}"


class Baseline:
    """Parsed baseline with matching and regeneration."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = entries or []

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: list[BaselineEntry] = []
        for raw in path.read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or ":" not in parts[1]:
                continue  # tolerate hand-edited junk rather than crash
            location, _, lineno = parts[1].rpartition(":")
            entries.append(BaselineEntry(
                rule=parts[0], path=location,
                line=int(lineno) if lineno.isdigit() else 0,
                fingerprint=parts[2]))
        return cls(entries)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        return cls([
            BaselineEntry(rule=v.rule.name, path=v.path, line=v.line,
                          fingerprint=v.fingerprint)
            for v in violations])

    def save(self, path: Path) -> None:
        body = "\n".join(entry.format() for entry in sorted(
            self.entries, key=lambda e: (e.path, e.line, e.rule)))
        path.write_text(_HEADER + body + ("\n" if body else ""))

    # ------------------------------------------------------------------
    def split(self, violations: list[Violation]
              ) -> tuple[list[Violation], list[Violation],
                         list[BaselineEntry]]:
        """Partition ``violations`` into (new, baselined) and report the
        stale baseline entries that matched nothing."""
        keys = {(e.rule, e.path, e.fingerprint): e for e in self.entries}
        new: list[Violation] = []
        baselined: list[Violation] = []
        matched: set[tuple[str, str, str]] = set()
        for violation in violations:
            key = (violation.rule.name, violation.path,
                   violation.fingerprint)
            if key in keys:
                baselined.append(violation)
                matched.add(key)
            else:
                new.append(violation)
        stale = [entry for key, entry in keys.items()
                 if key not in matched]
        return new, baselined, stale
