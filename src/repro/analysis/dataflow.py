"""Worklist dataflow engine over :mod:`repro.analysis.cfg` graphs.

The engine runs a *forward* analysis propagating sets of opaque string
facts (e.g. ``"enqueued"``, ``"recovery-root-updated"``) through a CFG.
Two join disciplines are supported:

``must`` (the default)
    A fact holds at a point only when it holds on *every* path reaching
    it — joins intersect.  Unreached blocks carry the TOP element
    (``None``), which is the identity for intersection, so facts are
    never weakened by dead paths.  Use this to prove obligations
    ("on all paths, the enqueue precedes the store").

``may``
    A fact holds when it holds on *some* path — joins union, and the
    initial value is the empty set.  Use this to find possibilities
    ("some path reaches exit with the verify result still unconsumed").

The transfer function is a plain callable ``flow(facts, node) -> facts``
applied to each leaf statement in block order; :meth:`ForwardAnalysis.
facts_before` replays a block's prefix so rules can query the state
immediately before any individual statement.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable

from repro.analysis.cfg import CFG, Block

Facts = frozenset[str]
FlowFn = Callable[[Facts, ast.AST], Facts]

#: TOP for must-analyses: "unreached, so vacuously every fact holds".
TOP = None


class ForwardAnalysis:
    """Run a forward must/may analysis to fixpoint on construction."""

    def __init__(self, cfg: CFG, flow: FlowFn, *, must: bool = True,
                 entry_facts: Facts = frozenset()) -> None:
        self.cfg = cfg
        self.flow = flow
        self.must = must
        self.entry_facts = frozenset(entry_facts)
        self._in: dict[int, Facts | None] = {}
        self._out: dict[int, Facts | None] = {}
        self._blocks = {block.bid: block for block in cfg.blocks}
        self._run()

    # ------------------------------------------------------------------
    def _initial(self, block: Block) -> Facts | None:
        if block is self.cfg.entry:
            return self.entry_facts
        return TOP if self.must else frozenset()

    def _join(self, values: list[Facts | None]) -> Facts | None:
        if self.must:
            real = [v for v in values if v is not None]
            if not real:
                return TOP
            out = real[0]
            for other in real[1:]:
                out = out & other
            return out
        out: Facts = frozenset()
        for value in values:
            if value:
                out = out | value
        return out

    def _transfer(self, block: Block, facts: Facts | None) -> Facts | None:
        if facts is None:
            return None
        for node in block.stmts:
            facts = self.flow(facts, node)
        return facts

    def _run(self) -> None:
        for block in self.cfg.blocks:
            self._in[block.bid] = self._initial(block)
            self._out[block.bid] = self._transfer(
                block, self._in[block.bid])
        worklist: deque[Block] = deque(self.cfg.blocks)
        queued = {block.bid for block in self.cfg.blocks}
        while worklist:
            block = worklist.popleft()
            queued.discard(block.bid)
            if block.preds:
                merged = self._join(
                    [self._out[pred.bid] for pred, _ in block.preds])
                if block is self.cfg.entry:
                    # entry with back-edges still seeds entry_facts
                    merged = self._join([merged, self.entry_facts])
                self._in[block.bid] = merged
            out = self._transfer(block, self._in[block.bid])
            if out != self._out[block.bid]:
                self._out[block.bid] = out
                for succ, _ in block.succs:
                    if succ.bid not in queued:
                        worklist.append(succ)
                        queued.add(succ.bid)

    # ------------------------------------------------------------------
    def facts_in(self, block: Block) -> Facts | None:
        return self._in[block.bid]

    def facts_out(self, block: Block) -> Facts | None:
        return self._out[block.bid]

    def facts_before(self, node: ast.AST) -> Facts | None:
        """State immediately before ``node`` (a leaf statement stored in
        some block), or None when the node is unreachable / unlocated."""
        loc = self.cfg.location(node)
        if loc is None:
            return None
        block, idx = loc
        facts = self._in[block.bid]
        if facts is None:
            return None
        for prev in block.stmts[:idx]:
            facts = self.flow(facts, prev)
        return facts

    def facts_at_exit(self) -> Facts | None:
        return self._in[self.cfg.exit.bid]

    def facts_at_raise(self) -> Facts | None:
        return self._in[self.cfg.raise_exit.bid]


def gen_kill_flow(gen: Callable[[ast.AST], Facts],
                  kill: Callable[[ast.AST], Facts] | None = None) -> FlowFn:
    """Build a flow function from per-node gen/kill callbacks."""
    def flow(facts: Facts, node: ast.AST) -> Facts:
        if kill is not None:
            killed = kill(node)
            if killed:
                facts = facts - killed
        added = gen(node)
        if added:
            facts = facts | added
        return facts
    return flow
