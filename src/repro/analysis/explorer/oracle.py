"""The two-sided crash oracle.

For every surviving crash state the explorer materializes the NVM
image into a fresh controller, runs the scheme's own recovery path, and
cross-examines the outcome from both sides:

**Missed detection** — recovery reported success on a state the model
knows is inconsistent, or on a state where a subsequent integrity
attack (counter roll-forward, stale-image replay, via
:mod:`repro.crash.attacks`) goes unreported.  The independent
consistency check is a *stream-order audit*: a durable level-1 tree
node must agree with the dummy counter of every child leaf whose last
durable write precedes it in the recorded stream (newer leaves make the
parent stale, which counter-summing recovery legitimately ignores).

**False abort** — recovery failed on a state the protocol spec proves
consistent.  Only schemes whose design claims root crash consistency
at every cut (``crash_consistent_root``) are held to this; the eager
family's recovery window (paper Fig. 5b) makes mid-window failures
expected rather than violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.explorer.model import CrashState, CrashStateModel
from repro.analysis.explorer.record import KIND_LINE, PersistEvent
from repro.cme.counters import CounterBlock
from repro.crash.attacks import roll_forward_leaf
from repro.errors import ReproError
from repro.mem.address import Region
from repro.tree.node import SITNode


@dataclass
class CrashVerdict:
    """Oracle outcome for one canonical crash state."""

    boundary: int                 # newest persist-unit index + 1 (0 = none)
    state_hash: str
    recovered: bool
    missed_detection: bool = False
    false_abort: bool = False
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"boundary": self.boundary, "state_hash": self.state_hash,
                "recovered": self.recovered,
                "missed_detection": self.missed_detection,
                "false_abort": self.false_abort, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CrashVerdict":
        return cls(**data)

    @property
    def violating(self) -> bool:
        return self.missed_detection or self.false_abort


def materialize(model: CrashStateModel, state: CrashState) -> Any:
    """Build a fresh controller whose NVM, root registers and data-MAC
    shadows hold exactly the crash state's image."""
    controller = model.recording.factory()
    for addr, payload in state.lines.items():
        controller.nvm.poke_line(addr, payload)
    controller.running_root.restore(state.roots["running_root"])
    recovery = getattr(controller, "recovery_root", None)
    if recovery is not None and "recovery_root" in state.roots:
        recovery.restore(state.roots["recovery_root"])
    controller.data_macs.update(state.data_macs)
    controller._plaintexts.update(state.plaintexts)
    return controller


def evaluate_state(model: CrashStateModel, state: CrashState) -> CrashVerdict:
    """Run recovery plus the attack suite on one crash state and return
    the oracle verdict."""
    boundary = (max(state.cut) + 1) if state.cut else 0
    verdict = CrashVerdict(boundary=boundary, state_hash=state.canonical,
                           recovered=False)
    controller = materialize(model, state)
    try:
        report = controller.recover()
        recovered, detail = report.success, report.detail
    except ReproError as exc:
        recovered, detail = False, f"{type(exc).__name__}: {exc}"
    verdict.recovered = recovered
    if recovered:
        audit_ok, audit_detail = _audit_counter_sums(model, state)
        if not audit_ok:
            verdict.missed_detection = True
            verdict.detail = ("recovery succeeded on an inconsistent "
                              f"image: {audit_detail}")
            return verdict
        attack_detail = _attack_probes(model, state)
        if attack_detail is not None:
            verdict.missed_detection = True
            verdict.detail = attack_detail
        return verdict
    if getattr(controller, "crash_consistent_root", False):
        verdict.false_abort = True
        verdict.detail = ("recovery failed on a spec-consistent state "
                          f"of a root-crash-consistent scheme: {detail}")
    else:
        verdict.detail = detail
    return verdict


# ----------------------------------------------------------------------
def _durable_writes(model: CrashStateModel,
                    cut: frozenset[int]) -> dict[int, PersistEvent]:
    """addr -> newest durable line-write event within the cut."""
    last: dict[int, PersistEvent] = {}
    for index in cut:
        for event in model.units[index].events:
            if event.kind != KIND_LINE:
                continue
            prev = last.get(event.addr)
            if prev is None or event.seq > prev.seq:
                last[event.addr] = event
    return last


def _audit_counter_sums(model: CrashStateModel,
                        state: CrashState) -> tuple[bool, str]:
    """Stream-order audit of durable level-1 nodes against their leaves
    (see module docstring).  Purely structural — never runs the scheme's
    own code, so a broken scheme cannot vouch for itself."""
    amap = model.amap
    if amap.tree_levels < 2:
        return True, ""
    last = _durable_writes(model, state.cut)
    bits = amap.counter_bits
    for addr, event in last.items():
        if amap.region_of(addr) is not Region.TREE:
            continue
        level, index = amap.tree_node_coords(addr)
        if level != 1:
            continue
        node = SITNode.from_bytes(1, index, event.payload, arity=amap.arity)
        for slot in range(amap.arity):
            leaf_index = index * amap.arity + slot
            if leaf_index >= amap.num_counter_blocks:
                break
            leaf_addr = amap.counter_block_addr(leaf_index)
            leaf_event = last.get(leaf_addr)
            if leaf_event is not None and leaf_event.seq > event.seq:
                continue        # leaf newer than parent: parent is stale
            if leaf_event is not None:
                payload = leaf_event.payload
            else:
                payload = model.recording.baseline_lines.get(leaf_addr)
            expected = 0
            if payload is not None:
                expected = CounterBlock.from_bytes(
                    leaf_index, payload).dummy_counter(bits)
            if node.counter(slot) != expected:
                return False, (
                    f"durable tree node (1,{index}) slot {slot} holds "
                    f"{node.counter(slot)} but its durable leaf "
                    f"{leaf_index} sums to {expected}")
    return True, ""


def _attack_probes(model: CrashStateModel, state: CrashState) -> str | None:
    """Re-materialize the state, tamper, and demand recovery notices.

    Returns a missed-detection description, or None when every probe
    was detected (or no durable leaf exists to tamper with).
    """
    amap = model.amap
    last = _durable_writes(model, state.cut)
    target = None
    for addr, event in sorted(last.items()):
        if amap.region_of(addr) is not Region.COUNTER:
            continue
        leaf_index = amap.counter_block_index(addr)
        if not CounterBlock.from_bytes(leaf_index, event.payload).is_blank:
            target = (addr, leaf_index, event)
            break
    if target is None:
        return None
    addr, leaf_index, event = target

    # Probe 1: counter roll-forward on the durable leaf.
    controller = materialize(model, state)
    roll_forward_leaf(controller.store, leaf_index)
    if _recovers(controller):
        return (f"roll-forward of durable leaf {leaf_index} survived "
                "recovery undetected")

    # Probe 2: replay an earlier sealed image of the same leaf, when the
    # cut persisted it more than once.
    earlier = None
    for index in sorted(state.cut):
        for ev in model.units[index].events:
            if ev.kind == KIND_LINE and ev.addr == addr \
                    and ev.seq < event.seq and ev.payload != event.payload:
                earlier = ev.payload
    if earlier is not None:
        controller = materialize(model, state)
        controller.nvm.poke_line(addr, earlier)
        if _recovers(controller):
            return (f"replay of a stale sealed image of leaf "
                    f"{leaf_index} survived recovery undetected")
    return None


def _recovers(controller: Any) -> bool:
    try:
        return bool(controller.recover().success)
    except ReproError:
        return False
