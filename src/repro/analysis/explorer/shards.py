"""Sharded, resumable execution of a crash-state exploration.

Each shard is one :class:`repro.campaign.spec.CellSpec` whose ``group``
encodes the boundary range and lag bound (``explore[lo:hi)/lag=N``), so
the whole campaign machinery comes for free: parallel workers, kill -9
resume from the manifest, and per-(scheme, trace, boundary-range)
result caching keyed on the cell's canonical JSON.  Workers re-record
the (deterministic) persist stream locally — a recording is cheap, the
cut enumeration is the expensive part — and return a picklable
:class:`ShardResult`.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.explorer.model import CrashStateModel
from repro.analysis.explorer.oracle import evaluate_state
from repro.analysis.explorer.record import (
    Recording, record_system_run,
)
from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.errors import ConfigError
from repro.obs import events as ev
from repro.obs.recorder import NULL_RECORDER
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads import make_workload

_GROUP_RE = re.compile(r"explore\[(\d+):(\d+)\)(?:/lag=(\d+))?$")

#: Scheme rows of the exploration matrix: label -> config overrides.
#: ``scue+asit`` is the shadow-table (Anubis-style) variant — same
#: persist stream as SCUE (the tracker is an in-memory observer), but a
#: distinct row so its cache shards and report line stand on their own.
SCHEME_VARIANTS: dict[str, dict[str, Any]] = {
    "scue": {"scheme": "scue"},
    "eager": {"scheme": "eager"},
    "scue+asit": {"scheme": "scue", "recovery_tracker": "asit"},
}


@dataclass
class ShardResult:
    """Picklable outcome of exploring one boundary range."""

    scheme: str
    workload: str
    lo: int
    hi: int
    units: int = 0
    cuts: int = 0
    unique_states: int = 0
    pruned_duplicates: int = 0
    recovered: int = 0
    recovery_failures: int = 0
    violations: list[dict] = field(default_factory=list)
    state_hashes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scheme": self.scheme, "workload": self.workload,
            "lo": self.lo, "hi": self.hi, "units": self.units,
            "cuts": self.cuts, "unique_states": self.unique_states,
            "pruned_duplicates": self.pruned_duplicates,
            "recovered": self.recovered,
            "recovery_failures": self.recovery_failures,
            "violations": list(self.violations),
            "state_hashes": list(self.state_hashes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardResult":
        return cls(**data)


def explore_range(model: CrashStateModel, lo: int, hi: int,
                  *, workload: str = "", obs: Any = NULL_RECORDER,
                  now: int = 0) -> ShardResult:
    """Enumerate and verify every crash cut in boundary range [lo, hi)."""
    n = len(model.units)
    hi = min(hi, n)
    result = ShardResult(scheme=model.recording.scheme, workload=workload,
                         lo=lo, hi=hi, units=n)
    seen: set[str] = set()
    for cut in model.iter_cuts(lo, hi):
        result.cuts += 1
        state = model.state_of(cut)
        if state.canonical in seen:
            result.pruned_duplicates += 1
            if obs.enabled:
                obs.instant(ev.EV_EXPLORE_PRUNED, ev.TRACK_EXPLORE,
                            scheme=result.scheme, reason="state-hash")
            continue
        seen.add(state.canonical)
        verdict = evaluate_state(model, state)
        result.unique_states += 1
        if verdict.recovered:
            result.recovered += 1
        else:
            result.recovery_failures += 1
        if verdict.violating:
            result.violations.append(verdict.to_dict())
        if obs.enabled:
            obs.instant(ev.EV_EXPLORE_STATE, ev.TRACK_EXPLORE,
                        scheme=result.scheme, boundary=verdict.boundary,
                        recovered=verdict.recovered,
                        violating=verdict.violating)
    result.state_hashes = sorted(seen)
    if obs.enabled:
        obs.span(ev.EV_EXPLORE, ev.TRACK_EXPLORE, now, 1,
                 scheme=result.scheme, lo=lo, hi=hi,
                 states=result.unique_states,
                 pruned=result.pruned_duplicates)
    return result


# ----------------------------------------------------------------------
def record_cell(cell: CellSpec) -> Recording:
    """Deterministically (re)record the cell's persist stream: same
    workload construction as :func:`repro.campaign.executor.execute_cell`
    so a shard recorded in a worker matches the driver's recording."""
    workload = make_workload(cell.workload, cell.config.data_capacity,
                             cell.operations, seed=cell.seed)
    trace = workload.record() if hasattr(workload, "record") \
        else list(workload.trace())
    system = System(cell.config)
    return record_system_run(system, iter(trace))


def parse_group(group: str) -> tuple[int, int, int | None]:
    """``explore[lo:hi)/lag=N`` -> (lo, hi, max_lag)."""
    match = _GROUP_RE.search(group)
    if match is None:
        raise ConfigError(f"not an explore shard group: {group!r}")
    lag = match.group(3)
    return (int(match.group(1)), int(match.group(2)),
            int(lag) if lag is not None else None)


def explore_cell_fn(cell: CellSpec) -> ShardResult:
    """Campaign cell function: re-record, model, explore one shard."""
    lo, hi, max_lag = parse_group(cell.group)
    recording = record_cell(cell)
    model = CrashStateModel(recording, max_lag=max_lag)
    return explore_range(model, lo, hi, workload=cell.workload)


def shard_group(label: str, lo: int, hi: int, max_lag: int | None) -> str:
    """The label prefix keeps cell ids unique when two rows share a
    scheme (scue vs. scue+asit) and names the row in status output."""
    suffix = "" if max_lag is None else f"/lag={max_lag}"
    return f"{label}:explore[{lo}:{hi}){suffix}"


@dataclass
class ExplorationResult:
    """Merged view over every scheme row's shards."""

    workload: str
    shards: dict[str, list[ShardResult]]
    campaign: Any = None

    def merged(self, label: str) -> ShardResult:
        parts = self.shards[label]
        total = ShardResult(scheme=parts[0].scheme if parts else label,
                            workload=self.workload, lo=0,
                            hi=max((p.hi for p in parts), default=0),
                            units=max((p.units for p in parts), default=0))
        hashes: set[str] = set()
        for part in parts:
            total.cuts += part.cuts
            total.pruned_duplicates += part.pruned_duplicates
            total.recovered += part.recovered
            total.recovery_failures += part.recovery_failures
            total.violations.extend(part.violations)
            hashes.update(part.state_hashes)
        total.unique_states = len(hashes)
        total.state_hashes = sorted(hashes)
        return total

    @property
    def violation_count(self) -> int:
        return sum(len(part.violations)
                   for parts in self.shards.values() for part in parts)

    @property
    def ok(self) -> bool:
        campaign_ok = self.campaign.ok if self.campaign else True
        return campaign_ok and self.violation_count == 0


def build_exploration_cells(
        base_config: SystemConfig, workload: str, operations: int,
        *, seed: int = 42, schemes: Iterable[str] = ("scue", "eager"),
        shard_units: int = 8,
        max_lag: int | None = None) -> tuple[list[CellSpec], list[str]]:
    """One recording per scheme row to size the unit stream, then split
    [0, n) into boundary-range shards.  Returns (cells, row labels)."""
    cells: list[CellSpec] = []
    labels: list[str] = []
    for label in schemes:
        overrides = SCHEME_VARIANTS.get(label)
        if overrides is None:
            overrides = {"scheme": label}
        config = base_config.with_(**overrides)
        sizing = CellSpec(workload=workload, config=config,
                          operations=operations, seed=seed)
        recording = record_cell(sizing)
        units = len(CrashStateModel(recording, max_lag=max_lag).units)
        for lo in range(0, max(units, 1), shard_units):
            hi = min(lo + shard_units, units)
            cells.append(CellSpec(
                workload=workload, config=config, operations=operations,
                seed=seed, group=shard_group(label, lo, hi, max_lag)))
            labels.append(label)
    return cells, labels


def run_exploration(base_config: SystemConfig, workload: str,
                    operations: int, *, seed: int = 42,
                    schemes: Iterable[str] = ("scue", "eager"),
                    shard_units: int = 8, max_lag: int | None = None,
                    jobs: int = 1, cache: ResultCache | None = None,
                    manifest_path: Any = None,
                    progress: Any = None) -> ExplorationResult:
    """Drive the full exploration as a campaign and merge the shards."""
    schemes = list(schemes)
    cells, labels = build_exploration_cells(
        base_config, workload, operations, seed=seed, schemes=schemes,
        shard_units=shard_units, max_lag=max_lag)
    spec = CampaignSpec(name=f"explore-{workload}", cells=cells)
    campaign = run_campaign(spec, jobs=jobs, cache=cache,
                            manifest_path=manifest_path,
                            cell_fn=explore_cell_fn, progress=progress)
    shards: dict[str, list[ShardResult]] = {label: [] for label in schemes}
    for index, label in enumerate(labels):
        shard = campaign.results.get(index)
        if shard is not None:
            shards[label].append(shard)
    return ExplorationResult(workload=workload, shards=shards,
                             campaign=campaign)


def exploration_cache(root: Any) -> ResultCache:
    """A ResultCache that decodes :class:`ShardResult` payloads."""
    return ResultCache(root, decode=ShardResult.from_dict)
