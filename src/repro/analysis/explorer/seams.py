"""Registered explorer event seams.

The crash-state explorer (:mod:`repro.analysis.explorer`) can only model
persists it observes.  This module is the single source of truth for
*which* controller surfaces are instrumented, shared between the dynamic
recorder (:mod:`repro.analysis.explorer.record`) and the static
reprolint rule RPL010 ``unexplored-persist-boundary`` that refuses to
let a new scheme persist metadata behind the recorder's back.

Kept deliberately import-light (stdlib only): reprolint imports these
constants at startup and must not drag the simulator in with them.
"""

from __future__ import annotations

#: Root registers the recorder wraps (``add``/``set``).  A scheme that
#: constructs a ``RootRegister`` under any other name holds persistent
#: state the explorer cannot replay — RPL010 flags the constructor call.
EXPLORED_ROOT_REGISTERS = frozenset({"running_root", "recovery_root"})

#: Controller surfaces wrapped by :class:`ExplorationRecorder.attach`.
#: ``write_data`` brackets one store-side operation, ``_flush_node``
#: brackets one cache eviction, and the remaining two are the raw
#: persist events themselves.  ``poke_line`` is deliberately absent: it
#: is the *uncounted* path (recovery, tests) and any runtime metadata
#: persist routed through it is invisible to the explorer — which is
#: exactly what RPL010 exists to catch.
SEAM_METHODS = (
    "write_data",
    "_flush_node",
    "wpq.enqueue",
    "nvm.write_line",
)
