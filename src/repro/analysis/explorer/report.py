"""Violation reporting for the crash-state explorer.

Oracle verdicts become :class:`~repro.analysis.rules.Violation` records
under two explorer-owned rules (REX001 ``missed-detection``, REX002
``false-abort``) and flow through the existing SARIF exporter — the
exporter's rule table extends itself with any non-reprolint rules it
meets, so explorer findings and lint findings share one output format.
The synthetic path ``explore://<row>/<workload>`` names the scheme row,
the line number is the crash boundary (newest persist-unit index + 1),
and the snippet column carries the canonical state hash so a finding
can be replayed against the exact crash image.
"""

from __future__ import annotations

from repro.analysis.explorer.shards import ExplorationResult, ShardResult
from repro.analysis.report import LintReport
from repro.analysis.rules import RuleInfo, Violation
from repro.analysis.sarif import to_sarif

REX_MISSED_DETECTION = RuleInfo(
    id="REX001",
    name="missed-detection",
    summary="recovery succeeded on a crash state that fails verification",
    rationale=(
        "The two-sided crash oracle found a reachable persist-order cut "
        "where the scheme's recovery path reports success although the "
        "durable image is inconsistent or a subsequent integrity attack "
        "goes undetected — the exact failure class the paper's root "
        "crash-consistency argument (§IV) must exclude."),
)

REX_FALSE_ABORT = RuleInfo(
    id="REX002",
    name="false-abort",
    summary="recovery failed on a spec-consistent crash state",
    rationale=(
        "A scheme that claims root crash consistency at every persist "
        "boundary (crash_consistent_root) refused to recover a state "
        "its own protocol spec permits — availability loss the paper's "
        "design explicitly avoids (§IV-A)."),
)

EXPLORER_RULES = (REX_MISSED_DETECTION, REX_FALSE_ABORT)


def _verdict_violation(label: str, workload: str,
                       verdict: dict) -> Violation:
    rule = REX_MISSED_DETECTION if verdict.get("missed_detection") \
        else REX_FALSE_ABORT
    return Violation(
        rule=rule,
        path=f"explore://{label}/{workload}",
        line=int(verdict.get("boundary", 0)) + 1,
        column=1,
        message=verdict.get("detail", ""),
        snippet=verdict.get("state_hash", ""),
    )


def violations_report(result: ExplorationResult) -> LintReport:
    """All oracle violations as a :class:`LintReport` (SARIF-ready)."""
    violations = []
    for label, parts in sorted(result.shards.items()):
        for part in parts:
            for verdict in part.violations:
                violations.append(
                    _verdict_violation(label, result.workload, verdict))
    violations.sort(key=lambda v: (v.path, v.line, v.rule.name))
    return LintReport(violations=violations,
                      files_checked=len(result.shards))


def exploration_sarif(result: ExplorationResult) -> dict:
    """SARIF 2.1.0 log of the exploration's violations."""
    return to_sarif(violations_report(result))


def text_matrix(result: ExplorationResult) -> str:
    """The per-scheme summary matrix printed by ``explore run/report``."""
    header = (f"{'scheme':<12} {'units':>5} {'cuts':>7} {'states':>7} "
              f"{'pruned':>7} {'recovered':>9} {'failed':>7} "
              f"{'missed':>7} {'false-abort':>11}")
    rows = [header, "-" * len(header)]
    for label in sorted(result.shards):
        merged = result.merged(label)
        missed = sum(1 for v in merged.violations
                     if v.get("missed_detection"))
        aborts = sum(1 for v in merged.violations if v.get("false_abort"))
        rows.append(
            f"{label:<12} {merged.units:>5} {merged.cuts:>7} "
            f"{merged.unique_states:>7} {merged.pruned_duplicates:>7} "
            f"{merged.recovered:>9} {merged.recovery_failures:>7} "
            f"{missed:>7} {aborts:>11}")
    verdict = "OK: no oracle violations" if result.violation_count == 0 \
        else f"FAIL: {result.violation_count} oracle violation(s)"
    rows.append(verdict)
    return "\n".join(rows)


def single_row_result(label: str, workload: str,
                      shard: ShardResult) -> ExplorationResult:
    """Wrap one shard as a result (test and ad-hoc reporting helper)."""
    return ExplorationResult(workload=workload, shards={label: [shard]})
