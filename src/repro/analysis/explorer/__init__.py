"""Exhaustive crash-state model checking (docs/crash-exploration.md).

The package records a run's persist-event stream, enumerates every
legal persist-order crash cut (pruned by protocol-spec ordering,
canonical state hashing, and branch commutativity), and verifies each
reachable crash state with a two-sided recovery oracle.

Import surface: the seam constants load eagerly (reprolint's RPL010
needs them without dragging in the simulator); everything else resolves
lazily on first attribute access.
"""

from __future__ import annotations

from importlib import import_module

from repro.analysis.explorer.seams import (   # noqa: F401
    EXPLORED_ROOT_REGISTERS, SEAM_METHODS,
)

_LAZY = {
    "ExplorationRecorder": "record",
    "PersistEvent": "record",
    "Recording": "record",
    "materialization_factory": "record",
    "record_system_run": "record",
    "record_writes": "record",
    "CrashState": "model",
    "CrashStateModel": "model",
    "PersistUnit": "model",
    "brute_force_cuts": "model",
    "CrashVerdict": "oracle",
    "evaluate_state": "oracle",
    "materialize": "oracle",
    "ExplorationResult": "shards",
    "SCHEME_VARIANTS": "shards",
    "ShardResult": "shards",
    "build_exploration_cells": "shards",
    "exploration_cache": "shards",
    "explore_cell_fn": "shards",
    "explore_range": "shards",
    "parse_group": "shards",
    "record_cell": "shards",
    "run_exploration": "shards",
    "shard_group": "shards",
    "EXPLORER_RULES": "report",
    "REX_FALSE_ABORT": "report",
    "REX_MISSED_DETECTION": "report",
    "exploration_sarif": "report",
    "single_row_result": "report",
    "text_matrix": "report",
    "violations_report": "report",
}

__all__ = ["EXPLORED_ROOT_REGISTERS", "SEAM_METHODS", *sorted(_LAZY)]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    module = import_module(f"{__name__}.{module_name}")
    return getattr(module, name)
